//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of proptest the test suites use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`ProptestConfig`](test_runner::ProptestConfig) and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros.
//!
//! Differences from the real crate, chosen deliberately for CI determinism:
//! - Cases are generated from a fixed per-test seed (FNV hash of the test
//!   name), so every run explores the same inputs — no flakes, no
//!   `proptest-regressions` files.
//! - There is no shrinking; a failing case panics with the case number so it
//!   can be replayed exactly by rerunning the test.

#![deny(unsafe_code)]

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::StdRng;
    use rand::Rng as _;

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy is
    /// just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Boxes the strategy (API parity helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            let intermediate = self.base.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    trait ErasedStrategy<T> {
        fn generate_erased(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn generate_erased(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_erased(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng as _;

    /// Number of elements for a collection strategy: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Exclusive upper bound.
        pub max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range {r:?}");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range {r:?}");
            SizeRange {
                min: *r.start(),
                max_exclusive: r
                    .end()
                    .checked_add(1)
                    .expect("collection size range end must be below usize::MAX"),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    ///
    /// Only the fields the workspace uses are vendored.  `max_shrink_iters` is
    /// accepted but ignored (this shim does not shrink).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Ignored: the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Ignored: the shim never forks.  Present (like `max_shrink_iters`)
        /// so config literals using `..ProptestConfig::default()` keep the
        /// same shape as with the real crate.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
                fork: false,
            }
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name.
#[doc(hidden)]
pub fn seed_for_test_name(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Defines property tests.  See the crate docs for shim semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                    $crate::seed_for_test_name(concat!(module_path!(), "::", stringify!($name))),
                );
                // A case rejected by `prop_assume!` is regenerated rather than
                // counted, so every run tests exactly `cases` accepted inputs;
                // the reject cap keeps a never-satisfiable assumption from
                // passing vacuously (or looping forever).
                let max_rejects = config.cases.saturating_mul(16).max(256);
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::ops::ControlFlow<()> {
                            $body
                            ::std::ops::ControlFlow::Continue(())
                        },
                    ));
                    match outcome {
                        Ok(::std::ops::ControlFlow::Continue(())) => accepted += 1,
                        Ok(::std::ops::ControlFlow::Break(())) => {
                            rejected += 1;
                            assert!(
                                rejected <= max_rejects,
                                "prop_assume! rejected {rejected} inputs of {} (accepted only \
                                 {accepted} of {} wanted) — the property is effectively vacuous",
                                stringify!($name),
                                config.cases,
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest case {accepted} of {} failed (deterministic seed; rerun reproduces it)",
                                stringify!($name),
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

pub mod prelude {
    //! Everything a property-test module typically imports.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seed_is_stable_and_name_dependent() {
        let a = crate::seed_for_test_name("alpha");
        assert_eq!(a, crate::seed_for_test_name("alpha"));
        assert_ne!(a, crate::seed_for_test_name("beta"));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in collection::vec(0u32..10, 2..5), exact in collection::vec(0u32..10, 3usize)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn flat_map_and_map_compose(pair in (1usize..5).prop_flat_map(|n| (collection::vec(0u32..100, n), 0..n))) {
            let (v, idx) = pair;
            prop_assert!(idx < v.len());
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        #[should_panic(expected = "vacuous")]
        fn impossible_assumption_fails_loudly(n in 0u32..10) {
            prop_assume!(n > 100);
            prop_assert!(n > 100);
        }
    }
}
