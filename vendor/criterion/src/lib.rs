//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of Criterion the benches use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `Bencher::iter` and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is a simple mean-of-samples wall-clock timer: each benchmark
//! runs a warm-up, picks an iteration count that roughly fills
//! `measurement_time / sample_size` per sample, then reports the mean and
//! min/max over `sample_size` samples.  There are no plots, no statistical
//! regressions and no saved baselines — enough to compare hot paths locally
//! and to keep `cargo bench --no-run` compiling everything.

#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let config = self.clone();
        run_benchmark(&config, name, f);
        self
    }
}

/// A named set of benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&self.config, &label, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&self.config, &label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Identifier `function_name/parameter` for a parameterised benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an id from just a parameter display value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Anything accepted as a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    mode: BencherMode,
}

enum BencherMode {
    /// Calibration pass: run once, record the duration.
    Calibrate,
    /// Measurement pass: run `iters_per_sample` times per sample.
    Measure,
}

impl Bencher {
    /// Times `routine`, preventing the result from being optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BencherMode::Calibrate => {
                let start = Instant::now();
                black_box(routine());
                // Only the latest calibration sample is ever read; keep O(1).
                self.samples.clear();
                self.samples.push(start.elapsed());
            }
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.samples
                    .push(start.elapsed() / self.iters_per_sample.max(1) as u32);
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, mut f: F) {
    // Calibration / warm-up: single iterations until the warm-up budget is spent.
    let mut calib = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: BencherMode::Calibrate,
    };
    let warm_start = Instant::now();
    let mut one_iter = Duration::from_nanos(1);
    loop {
        f(&mut calib);
        if let Some(last) = calib.samples.last() {
            one_iter = one_iter.max(*last);
        }
        if warm_start.elapsed() >= config.warm_up_time {
            break;
        }
    }

    // Pick an iteration count that fills the per-sample budget.
    let per_sample = config.measurement_time.as_nanos() / config.sample_size.max(1) as u128;
    let iters = (per_sample / one_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut bench = Bencher {
        iters_per_sample: iters,
        samples: Vec::with_capacity(config.sample_size),
        mode: BencherMode::Measure,
    };
    for _ in 0..config.sample_size {
        f(&mut bench);
    }

    let min = bench.samples.iter().min().copied().unwrap_or_default();
    let max = bench.samples.iter().max().copied().unwrap_or_default();
    let mean = bench
        .samples
        .iter()
        .sum::<Duration>()
        .checked_div(bench.samples.len().max(1) as u32)
        .unwrap_or_default();
    println!(
        "{label:<60} time: [{} {} {}]  ({} samples x {} iters)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        bench.samples.len(),
        iters,
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_id_render() {
        let id = BenchmarkId::new("exact", 5);
        assert_eq!(id.to_string(), "exact/5");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0, "the benchmark closure must actually run");
    }
}
