//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` 0.8 it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`].  The generator is SplitMix64 —
//! deterministic for a given seed, which is exactly what the test suites and
//! benchmarks rely on.  Swapping the real `rand` back in later only requires
//! restoring the registry dependency; no call sites need to change.

#![deny(unsafe_code)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the `Standard` distribution in real `rand`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open / inclusive ranges.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.  Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.  Panics if `high < low`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * span.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(hi as $wide)) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = ((high as $wide).wrapping_sub(low as $wide) as u64).wrapping_add(1);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let unit = <$t as StandardSample>::sample(rng);
                let value = low + unit * (high - low);
                // `low + unit * (high - low)` can round up to exactly `high`
                // even though `unit < 1`; keep the half-open contract.
                if value < high {
                    value
                } else {
                    high.next_down().max(low)
                }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let unit = <$t as StandardSample>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        T: SampleUniform,
        Ra: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is vendored).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Not the real `rand::rngs::StdRng` (ChaCha12), but the same seed always
    /// yields the same stream, which is the property the test suites need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence helpers (`choose`, `shuffle`).

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 2000.0 - 0.3).abs() < 0.05);
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());

        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }
}
