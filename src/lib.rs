//! Workspace umbrella crate.
//!
//! Re-exports the public facade (`pgs-core`) so the examples and integration
//! tests at the repository root can simply `use pgs::prelude::*`.  Library
//! users should depend on `pgs-core` (or the individual sub-crates) directly.

#![deny(unsafe_code)]

pub use pgs_core::*;

/// The workspace version (all member crates share it).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
