//! Shared setup code for the benchmark suite and the `experiments` binary.
//!
//! Every benchmark reproduces one figure of the paper's evaluation (Section 6)
//! on a synthetic STRING-like dataset (see `pgs-datagen` and DESIGN.md §3 for
//! the substitution).  The helpers here build datasets, engines and query
//! workloads at a named scale so the criterion benches and the experiments
//! harness share identical configurations.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use pgs_datagen::ppi::{generate_ppi_dataset, CorrelationModel, PpiDataset, PpiDatasetConfig};
use pgs_datagen::queries::{generate_query_workload, QueryWorkloadConfig, WorkloadQuery};
use pgs_datagen::scenarios::{paper_scale, DatasetScale};
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::PmiBuildParams;
use pgs_index::sip_bounds::BoundsConfig;
use pgs_prob::montecarlo::MonteCarloConfig;
use pgs_query::pipeline::{EngineConfig, QueryEngine};
use pgs_query::verify::VerifyOptions;

/// A ready-to-measure benchmark setup.
pub struct BenchSetup {
    /// The generated dataset (graphs + organism labels).
    pub dataset: PpiDataset,
    /// The query engine with a built PMI.
    pub engine: QueryEngine,
    /// The query workload.
    pub queries: Vec<WorkloadQuery>,
}

/// Default feature-selection parameters used across the benches (the paper's
/// defaults scaled to the synthetic data, see Section 6).
pub fn bench_feature_params() -> FeatureSelectionParams {
    FeatureSelectionParams {
        max_l: 4,
        alpha: 0.15,
        beta: 0.15,
        gamma: 0.15,
        max_features: 32,
        max_embeddings: 16,
    }
}

/// Engine configuration shared by all figure benches.
pub fn bench_engine_config(seed: u64) -> EngineConfig {
    EngineConfig {
        pmi: PmiBuildParams {
            features: bench_feature_params(),
            bounds: BoundsConfig::default(),
            threads: 0,
            seed,
        },
        verify: VerifyOptions {
            mc: MonteCarloConfig {
                tau: 0.1,
                xi: 0.05,
                max_samples: 2_000,
            },
            max_embeddings: 128,
            exact_cutoff: 14,
            ..VerifyOptions::default()
        },
        exact: pgs_query::pipeline::ExactScanConfig::default(),
        cross_term: pgs_query::prune::CrossTermRule::SafeMin,
        seed,
        threads: pgs_query::pipeline::default_query_threads(),
        shards: pgs_query::pipeline::default_shards(),
    }
}

/// Dataset configuration for a scale, with an override for the graph count
/// (used by the Figure 13 scalability sweep).
pub fn dataset_config(scale: DatasetScale, graph_count: Option<usize>) -> PpiDatasetConfig {
    let mut config = paper_scale(scale);
    if let Some(n) = graph_count {
        config.graph_count = n;
    }
    config
}

/// Builds a dataset, an indexed engine and a query workload.
pub fn build_setup(scale: DatasetScale, query_size: usize, query_count: usize) -> BenchSetup {
    build_setup_with(
        scale,
        None,
        query_size,
        query_count,
        CorrelationModel::MaxRule,
    )
}

/// Fully parameterised setup builder.
pub fn build_setup_with(
    scale: DatasetScale,
    graph_count: Option<usize>,
    query_size: usize,
    query_count: usize,
    correlation: CorrelationModel,
) -> BenchSetup {
    let config = PpiDatasetConfig {
        correlation,
        ..dataset_config(scale, graph_count)
    };
    let dataset = generate_ppi_dataset(&config);
    let queries = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size,
            count: query_count,
            seed: 0xABCD,
        },
    );
    let engine = QueryEngine::build(dataset.graphs.clone(), bench_engine_config(0xFEED));
    BenchSetup {
        dataset,
        engine,
        queries,
    }
}

/// Formats one experiment series as an aligned text table row.
pub fn format_row(label: &str, xs: &[String]) -> String {
    let mut out = format!("{label:<28}");
    for x in xs {
        out.push_str(&format!(" {x:>12}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_setup_builds_quickly_and_consistently() {
        let setup = build_setup(DatasetScale::Tiny, 4, 3);
        assert_eq!(setup.dataset.graphs.len(), 24);
        assert_eq!(setup.engine.pmi().graph_count(), 24);
        assert!(!setup.queries.is_empty());
        for q in &setup.queries {
            assert_eq!(q.graph.edge_count(), 4);
        }
    }

    #[test]
    fn graph_count_override_applies() {
        let cfg = dataset_config(DatasetScale::Tiny, Some(7));
        assert_eq!(cfg.graph_count, 7);
    }

    #[test]
    fn row_formatting_is_aligned() {
        let row = format_row("Structure", &["12".into(), "3.4".into()]);
        assert!(row.starts_with("Structure"));
        assert!(row.contains("12"));
        assert!(row.contains("3.4"));
    }
}
