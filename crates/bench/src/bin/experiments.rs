//! Experiment harness: regenerates every table/figure series of the paper's
//! evaluation (Section 6, Figures 9–14) on the synthetic dataset.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pgs-bench --bin experiments -- [fig9|fig10|fig11|fig12|fig13|fig14|all] [--scale tiny|small|medium]
//! ```
//!
//! The extra `bench-query` command (not part of `all`) measures end-to-end
//! query throughput of the parallel executor — `threads = 1` vs automatic —
//! on a 64+ graph synthetic PPI database and writes the numbers to
//! `BENCH_query.json` for CI to archive.
//!
//! Absolute numbers differ from the paper (different hardware, synthetic data,
//! laptop-scale sizes); the *shapes* — which method wins, how the curves move
//! with each parameter — are the reproduction target and are recorded in
//! `EXPERIMENTS.md`.

use pgs_bench::{bench_engine_config, bench_feature_params, build_setup_with, format_row};
use pgs_datagen::ppi::{generate_ppi_dataset, CorrelationModel, PpiDatasetConfig};
use pgs_datagen::queries::{generate_query_workload, QueryWorkloadConfig};
use pgs_datagen::scenarios::{
    bulk_path_queries, bulk_skeletons, paper_scale, verification_candidate, DatasetScale,
};
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::{Pmi, PmiBuildParams};
use pgs_index::sindex::StructuralIndex;
use pgs_index::sip_bounds::BoundsConfig;
use pgs_prob::independent::to_independent_model;
use pgs_query::pipeline::{EngineConfig, PruningVariant, QueryEngine, QueryParams, TopkParams};
use pgs_query::structural::{structural_candidates_indexed, structural_candidates_threaded};
use pgs_query::verify::{verify_ssp_exact, verify_ssp_sampled, VerifyOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    let figures: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("fig"))
        .map(|a| a.as_str())
        .collect();
    let bench_query_requested = args.iter().any(|a| a == "bench-query");
    let bench_pool_requested = args.iter().any(|a| a == "bench-pool");
    let bench_index_requested = args.iter().any(|a| a == "bench-index");
    let bench_structural_requested = args.iter().any(|a| a == "bench-structural");
    let bench_verify_requested = args.iter().any(|a| a == "bench-verify");
    let bench_shard_requested = args.iter().any(|a| a == "bench-shard");
    let bench_arena_requested = args.iter().any(|a| a == "bench-arena");
    let bench_topk_requested = args.iter().any(|a| a == "bench-topk");
    let arg_after = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let index_save_path = arg_after("index-save");
    let index_load_path = arg_after("index-load");
    let index_open_path = arg_after("index-open");
    let run_all = (figures.is_empty()
        && !bench_query_requested
        && !bench_pool_requested
        && !bench_index_requested
        && !bench_structural_requested
        && !bench_verify_requested
        && !bench_shard_requested
        && !bench_arena_requested
        && !bench_topk_requested
        && index_save_path.is_none()
        && index_load_path.is_none()
        && index_open_path.is_none())
        || figures.contains(&"all");
    let wants = |f: &str| run_all || figures.contains(&f);

    println!("# Probabilistic subgraph similarity search — experiment harness");
    println!("# scale = {scale:?}\n");

    if wants("fig9") {
        figure_9(scale);
    }
    if wants("fig10") {
        figure_10(scale);
    }
    if wants("fig11") {
        figure_11(scale);
    }
    if wants("fig12") {
        figure_12(scale);
    }
    if wants("fig13") {
        figure_13(scale);
    }
    if wants("fig14") {
        figure_14(scale);
    }
    if bench_query_requested {
        bench_query(scale);
    }
    if bench_pool_requested {
        bench_pool();
    }
    if bench_index_requested {
        bench_index(scale);
    }
    if bench_structural_requested {
        bench_structural();
    }
    if bench_verify_requested {
        bench_verify();
    }
    if bench_shard_requested {
        bench_shard();
    }
    if bench_arena_requested {
        bench_arena();
    }
    if bench_topk_requested {
        bench_topk();
    }
    if let Some(path) = index_save_path {
        index_save(&path);
    }
    if let Some(path) = index_load_path {
        index_load(&path);
    }
    if let Some(path) = index_open_path {
        index_open(&path);
    }
}

/// The deterministic setup shared by `index-save` and `index-load`: a fixed
/// dataset, workload and engine configuration.  Two process invocations must
/// print byte-identical answer lines — CI saves the index in one process,
/// loads it in another and diffs the outputs.
fn index_roundtrip_setup() -> (
    Vec<pgs_prob::model::ProbabilisticGraph>,
    Vec<pgs_graph::model::Graph>,
    EngineConfig,
) {
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 32,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 2,
        seed: 0x51A7,
        ..PpiDatasetConfig::default()
    });
    let queries = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 6,
            seed: 0x1D,
        },
    )
    .into_iter()
    .map(|wq| wq.graph)
    .collect();
    // Three shards so the cross-process diff exercises the sharded v3
    // snapshot layout, not just the single-shard degenerate case.
    let config = EngineConfig {
        shards: 3,
        ..bench_engine_config(0xFEED)
    };
    (dataset.graphs, queries, config)
}

/// Prints the answer set of every `(query, variant)` pair in a stable format.
fn print_answer_lines(engine: &QueryEngine, queries: &[pgs_graph::model::Graph]) {
    let variants = [
        PruningVariant::Structure,
        PruningVariant::SspBound,
        PruningVariant::OptSspBound,
    ];
    for (qi, q) in queries.iter().enumerate() {
        for variant in variants {
            // A low ε and tolerant δ so the printed answer sets are non-empty
            // on this dataset — diffing empty lists would prove nothing.
            let params = QueryParams {
                epsilon: 0.1,
                delta: 2,
                variant,
            };
            let result = engine.query(q, &params).unwrap();
            println!("answers q{qi} {variant:?}: {:?}", result.answers);
        }
    }
}

/// `index-save <path>`: builds the deterministic index, saves it to `path`
/// and prints the query answers.
fn index_save(path: &str) {
    let (graphs, queries, config) = index_roundtrip_setup();
    let engine = QueryEngine::build(graphs, config);
    engine.pmi().save(path).expect("saving the index snapshot");
    print_answer_lines(&engine, &queries);
}

/// `index-load <path>`: loads the index saved by `index-save` into a fresh
/// engine (no rebuild) and prints the query answers — the output must be
/// byte-identical to the `index-save` run.
fn index_load(path: &str) {
    let (graphs, queries, config) = index_roundtrip_setup();
    let engine = QueryEngine::with_index(graphs, path, config)
        .expect("loading the index snapshot against the same database");
    print_answer_lines(&engine, &queries);
}

/// `index-open <path>`: like `index-load`, but through the lazy header-only
/// [`QueryEngine::open_index`] path — shard segments materialize from disk on
/// first touch while the queries run.  The output must be byte-identical to
/// both the `index-save` and the `index-load` runs.
fn index_open(path: &str) {
    let (graphs, queries, config) = index_roundtrip_setup();
    let engine = QueryEngine::open_index(graphs, path, config)
        .expect("opening the index snapshot against the same database");
    assert_eq!(
        engine.pmi().materialized_shards(),
        0,
        "open must defer every segment until the first query touches it"
    );
    print_answer_lines(&engine, &queries);
}

/// Index lifecycle benchmark: full build vs snapshot load vs incremental
/// append, recorded in `BENCH_index.json`.
fn bench_index(scale: DatasetScale) {
    println!("## bench-index — build vs load vs incremental append");
    let graph_count = paper_scale(scale).graph_count.max(48);
    let config = PpiDatasetConfig {
        graph_count,
        ..paper_scale(scale)
    };
    let dataset = generate_ppi_dataset(&config);
    let queries: Vec<pgs_graph::model::Graph> = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 6,
            seed: 0xBEEF,
        },
    )
    .into_iter()
    .map(|wq| wq.graph)
    .collect();
    let engine_config = bench_engine_config(0xFEED);

    // Full build.
    let t0 = Instant::now();
    let full = QueryEngine::build(dataset.graphs.clone(), engine_config);
    let build_seconds = t0.elapsed().as_secs_f64();
    let stats = full.pmi().stats();

    // Save + load.
    let path = std::env::temp_dir().join(format!("pgs-bench-index-{}.pmi", std::process::id()));
    let t1 = Instant::now();
    full.pmi().save(&path).expect("saving the index");
    let save_seconds = t1.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot metadata").len() as usize;
    let t2 = Instant::now();
    let loaded = QueryEngine::with_index(dataset.graphs.clone(), &path, engine_config)
        .expect("loading the index");
    let load_seconds = t2.elapsed().as_secs_f64();
    std::fs::remove_file(&path).ok();

    // Loaded answers must be byte-identical to the built engine's.
    let params = QueryParams {
        epsilon: 0.5,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    let identical = queries.iter().all(|q| {
        full.query(q, &params).unwrap().answers == loaded.query(q, &params).unwrap().answers
    });
    assert!(identical, "loaded index must answer identically");

    // Incremental: index the first n - k graphs, then append the last k.
    let appended = (graph_count / 6).max(4);
    let split = graph_count - appended;
    let mut incremental = QueryEngine::build(dataset.graphs[..split].to_vec(), engine_config);
    let t3 = Instant::now();
    for pg in &dataset.graphs[split..] {
        incremental.insert_graph(pg.clone());
    }
    let append_seconds = t3.elapsed().as_secs_f64();
    let staleness = incremental.pmi().staleness();

    println!(
        "{}",
        format_row(
            &format!("|D| = {graph_count}"),
            &[
                format!("build {build_seconds:.3}s"),
                format!("load {load_seconds:.3}s"),
                format!("{appended} appends {append_seconds:.3}s"),
                format!("{:.1} KiB", snapshot_bytes as f64 / 1024.0),
            ]
        )
    );
    let json = format!(
        "{{\n  \"benchmark\": \"index_lifecycle\",\n  \"scale\": \"{scale:?}\",\n  \
         \"database_graphs\": {graph_count},\n  \"features\": {features},\n  \
         \"occupied_cells\": {cells},\n  \"size_bytes\": {size_bytes},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \"answers_identical\": {identical},\n  \
         \"build_seconds\": {build_seconds:.6},\n  \"save_seconds\": {save_seconds:.6},\n  \
         \"load_seconds\": {load_seconds:.6},\n  \
         \"load_speedup_vs_build\": {speedup:.1},\n  \
         \"incremental\": {{ \"appended_graphs\": {appended}, \"seconds\": {append_seconds:.6}, \
         \"seconds_per_graph\": {per_graph:.6}, \"staleness\": {staleness:.4} }}\n}}\n",
        features = stats.feature_count,
        cells = stats.occupied_cells,
        size_bytes = stats.size_bytes,
        speedup = build_seconds / load_seconds.max(1e-9),
        per_graph = append_seconds / appended.max(1) as f64,
    );
    std::fs::write("BENCH_index.json", json).expect("writing BENCH_index.json");
    println!("wrote BENCH_index.json\n");
}

/// Structural-phase benchmark (ISSUE 4's acceptance bar): brute-force
/// full-database scan vs S-Index posting-list candidate generation, at 1k and
/// 10k skeletons, recorded in `BENCH_structural.json`.  The candidate sets of
/// the two paths are asserted byte-identical before anything is timed.
fn bench_structural() {
    println!("## bench-structural — phase 1: brute-force scan vs S-Index");
    println!(
        "{}",
        format_row(
            "|D|",
            &[
                "scan (ms/q)".into(),
                "S-Index (ms/q)".into(),
                "speedup".into(),
                "build (ms)".into(),
            ]
        )
    );
    let mut entries: Vec<String> = Vec::new();
    for &graph_count in &[1_000usize, 10_000] {
        let dataset = generate_ppi_dataset(&PpiDatasetConfig {
            graph_count,
            vertices_per_graph: 10,
            edges_per_graph: 14,
            vertex_label_count: 18,
            organism_count: 8,
            perturbation: 0.5,
            seed: 0x57A7,
            ..PpiDatasetConfig::default()
        });
        let skeletons: Vec<pgs_graph::model::Graph> = dataset
            .graphs
            .iter()
            .map(|g| g.skeleton().clone())
            .collect();
        let queries: Vec<pgs_graph::model::Graph> = generate_query_workload(
            &dataset,
            &QueryWorkloadConfig {
                query_size: 7,
                count: 6,
                seed: 0x5CA9,
            },
        )
        .into_iter()
        .map(|wq| wq.graph)
        .collect();
        let delta = 1usize;

        let t0 = Instant::now();
        let index = StructuralIndex::build(&skeletons);
        let build_seconds = t0.elapsed().as_secs_f64();

        // Correctness first: the two paths must produce identical candidates.
        for q in &queries {
            let brute = structural_candidates_threaded(&skeletons, q, delta, 1);
            let (indexed, _) = structural_candidates_indexed(&index, &skeletons, q, delta, 1);
            assert_eq!(indexed, brute, "S-Index diverged from the brute scan");
        }

        // Best-of-3 wall time over the whole workload, single-threaded so the
        // comparison measures the algorithms and not the thread pool.
        let mut scan_secs = f64::INFINITY;
        let mut sindex_secs = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for q in &queries {
                std::hint::black_box(structural_candidates_threaded(&skeletons, q, delta, 1));
            }
            scan_secs = scan_secs.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            for q in &queries {
                std::hint::black_box(structural_candidates_indexed(
                    &index, &skeletons, q, delta, 1,
                ));
            }
            sindex_secs = sindex_secs.min(t.elapsed().as_secs_f64());
        }
        let n = queries.len() as f64;
        let speedup = scan_secs / sindex_secs.max(1e-12);
        println!(
            "{}",
            format_row(
                &format!("{graph_count}"),
                &[
                    format!("{:.3}", scan_secs * 1e3 / n),
                    format!("{:.3}", sindex_secs * 1e3 / n),
                    format!("{speedup:.1}x"),
                    format!("{:.1}", build_seconds * 1e3),
                ]
            )
        );
        entries.push(format!(
            "    {{ \"skeletons\": {graph_count}, \"queries\": {q}, \"delta\": {delta}, \
             \"index_build_seconds\": {build_seconds:.6}, \
             \"scan_seconds\": {scan_secs:.6}, \"sindex_seconds\": {sindex_secs:.6}, \
             \"speedup\": {speedup:.3}, \"candidates_identical\": true }}",
            q = queries.len(),
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"structural_phase\",\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_structural.json", json).expect("writing BENCH_structural.json");
    println!("wrote BENCH_structural.json\n");
}

/// Verification benchmark (ISSUE 5's acceptance bar): the pre-PR full-world
/// sample loop vs the projected bitset `UnionSampler`, on a small candidate
/// (every table relevant) and a large one (≥ 4× more tables than the
/// embedding union touches), recorded in `BENCH_verify.json`.  Asserts that
/// both samplers land inside the `(τ, ξ)` band of `verify_ssp_exact` and
/// that query answers stay byte-identical across 1-thread and auto-thread
/// runs before reporting any timing.
fn bench_verify() {
    use pgs_graph::relax::relax_query_clamped;
    use pgs_query::verify::{verify_ssp_sampled_baseline, verify_ssp_with_stats};

    println!("## bench-verify — phase 3: full-world loop vs UnionSampler");
    println!(
        "{}",
        format_row(
            "candidate",
            &[
                "old (ms/q)".into(),
                "new (ms/q)".into(),
                "old (samp/s)".into(),
                "new (samp/s)".into(),
                "speedup".into(),
            ]
        )
    );
    let delta = 1usize;
    let options = VerifyOptions {
        exact_cutoff: 0, // force the sampling path on both sides
        mc: pgs_prob::montecarlo::MonteCarloConfig {
            tau: 0.05,
            xi: 0.01,
            max_samples: 50_000,
        },
        ..VerifyOptions::default()
    };
    let n = options.mc.num_samples();
    let mut entries: Vec<String> = Vec::new();
    let mut large_speedup = 0.0f64;
    for (name, extra) in [("small", 1usize), ("large", 24)] {
        let (pg, q) = verification_candidate(extra);
        let relaxed = relax_query_clamped(&q, delta);
        let union_tables = {
            let embeddings =
                pgs_query::verify::collect_embeddings_of_relaxations(&pg, &relaxed, 256);
            let relevant: Vec<pgs_graph::model::EdgeId> =
                embeddings.iter().flatten().copied().collect();
            pg.tables_touched(&relevant).len()
        };
        let exact = verify_ssp_exact(&pg, &q, delta, 22).expect("small relevant set");

        // Accuracy first: both estimators must sit inside the (τ, ξ) band.
        let band = options.mc.tau * exact + 1e-9;
        let mut rng = StdRng::seed_from_u64(0x0BE7);
        let old_ssp = verify_ssp_sampled_baseline(&pg, &q, delta, &relaxed, &options, &mut rng);
        let mut rng = StdRng::seed_from_u64(0x0BE8);
        let new_ssp = verify_ssp_with_stats(&pg, &q, delta, &relaxed, &options, 1, &mut rng).ssp;
        let within_band = (old_ssp - exact).abs() <= band && (new_ssp - exact).abs() <= band;
        assert!(
            within_band,
            "{name}: old {old_ssp} / new {new_ssp} outside the (τ, ξ) band of exact {exact}"
        );

        // Best-of-3 over `reps` full verification calls per measurement
        // (embedding collection + sampling — the per-candidate cost the
        // pipeline actually pays).
        let reps = 5usize;
        let mut old_secs = f64::INFINITY;
        let mut new_secs = f64::INFINITY;
        for _ in 0..3 {
            let mut rng = StdRng::seed_from_u64(0x5EED);
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(verify_ssp_sampled_baseline(
                    &pg, &q, delta, &relaxed, &options, &mut rng,
                ));
            }
            old_secs = old_secs.min(t.elapsed().as_secs_f64());
            let mut rng = StdRng::seed_from_u64(0x5EED);
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(verify_ssp_with_stats(
                    &pg, &q, delta, &relaxed, &options, 1, &mut rng,
                ));
            }
            new_secs = new_secs.min(t.elapsed().as_secs_f64());
        }
        let old_sps = (reps * n) as f64 / old_secs.max(1e-12);
        let new_sps = (reps * n) as f64 / new_secs.max(1e-12);
        let speedup = new_sps / old_sps.max(1e-12);
        if name == "large" {
            large_speedup = speedup;
        }
        println!(
            "{}",
            format_row(
                &format!("{name} ({} tables)", pg.tables().len()),
                &[
                    format!("{:.3}", old_secs * 1e3 / reps as f64),
                    format!("{:.3}", new_secs * 1e3 / reps as f64),
                    format!("{:.0}", old_sps),
                    format!("{:.0}", new_sps),
                    format!("{speedup:.1}x"),
                ]
            )
        );
        entries.push(format!(
            "    {{ \"candidate\": \"{name}\", \"graph_tables\": {gt}, \"union_tables\": {ut}, \
             \"graph_edges\": {ge}, \"samples_per_call\": {n}, \"delta\": {delta}, \
             \"exact_ssp\": {exact:.6}, \"old_ssp\": {old_ssp:.6}, \"new_ssp\": {new_ssp:.6}, \
             \"within_band\": {within_band}, \
             \"old\": {{ \"seconds_per_query\": {old_q:.6}, \"samples_per_second\": {old_sps:.1} }}, \
             \"new\": {{ \"seconds_per_query\": {new_q:.6}, \"samples_per_second\": {new_sps:.1} }}, \
             \"speedup\": {speedup:.3} }}",
            gt = pg.tables().len(),
            ut = union_tables,
            ge = pg.edge_count(),
            old_q = old_secs / reps as f64,
            new_q = new_secs / reps as f64,
        ));
    }
    assert!(
        large_speedup >= 5.0,
        "acceptance: UnionSampler must deliver ≥ 5× samples/sec on the large candidate \
         (measured {large_speedup:.1}x)"
    );

    // Determinism: a real engine workload with the sampler forced on must
    // answer byte-identically at 1 thread and auto threads.
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 24,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 2,
        seed: 0xD00D,
        ..PpiDatasetConfig::default()
    });
    let queries: Vec<pgs_graph::model::Graph> = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 6,
            seed: 0x11,
        },
    )
    .into_iter()
    .map(|wq| wq.graph)
    .collect();
    let base = EngineConfig {
        verify: VerifyOptions {
            exact_cutoff: 0,
            ..bench_engine_config(0xFEED).verify
        },
        ..bench_engine_config(0xFEED)
    };
    let sequential =
        QueryEngine::build(dataset.graphs.clone(), EngineConfig { threads: 1, ..base });
    let auto = QueryEngine::build(dataset.graphs, EngineConfig { threads: 0, ..base });
    let params = QueryParams {
        epsilon: 0.4,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    let answers_identical = queries.iter().all(|q| {
        sequential.query(q, &params).unwrap().answers == auto.query(q, &params).unwrap().answers
    });
    assert!(
        answers_identical,
        "1-thread and auto-thread answers must be byte-identical"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"verification_sampler\",\n  \
         \"answers_identical_across_threads\": {answers_identical},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_verify.json", json).expect("writing BENCH_verify.json");
    println!("wrote BENCH_verify.json\n");
}

/// Query-throughput benchmark: `threads = 1` vs automatic on a 64+ graph
/// database, recorded in `BENCH_query.json`.  The two runs must return
/// identical answers (the per-candidate seeding guarantee); the JSON records
/// wall-clock seconds and queries/sec for both, plus the speedup.
fn bench_query(scale: DatasetScale) {
    println!("## bench-query — end-to-end throughput, threads = 1 vs auto");
    let graph_count = paper_scale(scale).graph_count.max(64);
    let config = PpiDatasetConfig {
        graph_count,
        ..paper_scale(scale)
    };
    let dataset = generate_ppi_dataset(&config);
    let queries: Vec<pgs_graph::model::Graph> = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 6,
            // Enough queries that one batch is a few hundred milliseconds:
            // with ~30ms batches the run-to-run scheduler noise exceeded the
            // 1-core threads-1-vs-auto delta being measured.
            count: 48,
            seed: 0xBE7C,
        },
    )
    .into_iter()
    .map(|wq| wq.graph)
    .collect();
    // Force the sampling path so verification carries real per-candidate work.
    let base = EngineConfig {
        verify: VerifyOptions {
            exact_cutoff: 0,
            ..bench_engine_config(0xFEED).verify
        },
        ..bench_engine_config(0xFEED)
    };
    let auto = QueryEngine::build(dataset.graphs.clone(), EngineConfig { threads: 0, ..base });
    let sequential = QueryEngine::build(dataset.graphs, EngineConfig { threads: 1, ..base });
    let auto_threads = pgs_graph::parallel::resolve_threads(0);
    let params = QueryParams {
        epsilon: 0.5,
        delta: 2,
        variant: PruningVariant::OptSspBound,
    };

    // Warm-up (this also spawns the persistent pool's workers so neither
    // engine pays one-time setup inside the timed region), then best-of-20
    // reps with the measurement order alternating per rep — on a 1-core box
    // the two paths are near-identical after the fix, so the minimum over
    // several order-balanced reps suppresses the scheduler noise and
    // first-runner bias that a fixed-order best-of-2 could not.
    let _ = sequential.query_batch(&queries, &params).unwrap();
    let _ = auto.query_batch(&queries, &params).unwrap();
    let mut seq_secs = f64::INFINITY;
    let mut auto_secs = f64::INFINITY;
    let mut identical = true;
    for rep in 0..20 {
        let (b1, bn) = if rep % 2 == 0 {
            let b1 = sequential.query_batch(&queries, &params).unwrap();
            let bn = auto.query_batch(&queries, &params).unwrap();
            (b1, bn)
        } else {
            let bn = auto.query_batch(&queries, &params).unwrap();
            let b1 = sequential.query_batch(&queries, &params).unwrap();
            (b1, bn)
        };
        seq_secs = seq_secs.min(b1.wall_seconds);
        auto_secs = auto_secs.min(bn.wall_seconds);
        identical &= b1
            .results
            .iter()
            .zip(&bn.results)
            .all(|(x, y)| x.answers == y.answers);
    }
    assert!(
        identical,
        "threads = 1 and auto must return identical answers"
    );
    let n = queries.len() as f64;
    let speedup = seq_secs / auto_secs.max(1e-12);
    println!(
        "{}",
        format_row(
            &format!("|D| = {graph_count}"),
            &[
                format!("t1 {:.3}s", seq_secs),
                format!("auto({auto_threads}) {:.3}s", auto_secs),
                format!("{speedup:.2}x"),
            ]
        )
    );
    let json = format!(
        "{{\n  \"benchmark\": \"query_throughput\",\n  \"scale\": \"{scale:?}\",\n  \
         \"database_graphs\": {graph_count},\n  \"queries\": {q},\n  \
         \"answers_identical\": {identical},\n  \
         \"threads_1\": {{ \"wall_seconds\": {seq_secs:.6}, \"queries_per_second\": {qps1:.3} }},\n  \
         \"threads_auto\": {{ \"threads\": {auto_threads}, \"wall_seconds\": {auto_secs:.6}, \
         \"queries_per_second\": {qpsn:.3} }},\n  \"speedup\": {speedup:.3}\n}}\n",
        q = queries.len(),
        qps1 = n / seq_secs.max(1e-12),
        qpsn = n / auto_secs.max(1e-12),
    );
    std::fs::write("BENCH_query.json", json).expect("writing BENCH_query.json");
    println!("wrote BENCH_query.json\n");
}

/// Dispatch-overhead benchmark for the persistent worker pool, recorded in
/// `BENCH_pool.json`.  Two measurements:
///
/// 1. **Dispatch latency** — the same chunked map over the same items, run
///    through the retired spawn-per-call executor
///    (`par_map_chunked_spawn_baseline`, kept exactly for this comparison)
///    and through the pool (`par_map_chunked_costed`), interleaved so both
///    see the same machine state.  The pool must win: parked workers are
///    woken, not created.
/// 2. **Answer identity** — a `threads = 1` engine and a `threads = 0`
///    (auto) engine must return byte-identical answers, the DESIGN.md §12
///    determinism contract at the end-to-end level.
fn bench_pool() {
    use pgs_graph::parallel::{
        derive_seed, mix64, par_map_chunked_costed, par_map_chunked_spawn_baseline, CostHint,
    };
    println!("## bench-pool — spawn-per-call vs persistent pool dispatch");
    const WORKERS: usize = 4;
    const ITEMS: usize = 64;
    const DISPATCHES: u32 = 200;
    let items: Vec<u64> = (0..ITEMS as u64)
        .map(|i| derive_seed(&[0x9001, i]))
        .collect();
    // ~2k mixes per item keeps each dispatch well above the cost-model floor
    // (HEAVY dispatches from 2 items) while staying short enough that thread
    // creation is a visible fraction of the spawn path's latency.
    let work = |i: usize, x: &u64| {
        let mut acc = *x ^ i as u64;
        for _ in 0..2_000 {
            acc = mix64(acc);
        }
        acc
    };
    let reference: Vec<u64> = items.iter().enumerate().map(|(i, x)| work(i, x)).collect();
    // Warm-up: first pool dispatch spawns and parks the workers.
    let mut identical = par_map_chunked_costed(&items, WORKERS, CostHint::HEAVY, work) == reference
        && par_map_chunked_spawn_baseline(&items, WORKERS, work) == reference;
    let mut spawn_nanos = 0u128;
    let mut pool_nanos = 0u128;
    for _ in 0..DISPATCHES {
        let t = Instant::now();
        let a = par_map_chunked_spawn_baseline(&items, WORKERS, work);
        spawn_nanos += t.elapsed().as_nanos();
        let t = Instant::now();
        let b = par_map_chunked_costed(&items, WORKERS, CostHint::HEAVY, work);
        pool_nanos += t.elapsed().as_nanos();
        identical &= a == reference && b == reference;
    }
    assert!(identical, "pool and spawn dispatch must agree bit for bit");
    let spawn_micros = spawn_nanos as f64 / DISPATCHES as f64 / 1_000.0;
    let pool_micros = pool_nanos as f64 / DISPATCHES as f64 / 1_000.0;
    let dispatch_speedup = spawn_micros / pool_micros.max(1e-9);
    println!(
        "{}",
        format_row(
            &format!("dispatch ({WORKERS} workers, {ITEMS} items)"),
            &[
                format!("spawn {spawn_micros:.1}us"),
                format!("pool {pool_micros:.1}us"),
                format!("{dispatch_speedup:.2}x"),
            ]
        )
    );

    // End-to-end answer identity, threads = 1 vs automatic.
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 48,
        ..paper_scale(DatasetScale::Tiny)
    });
    let queries: Vec<pgs_graph::model::Graph> = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 8,
            seed: 0x9001,
        },
    )
    .into_iter()
    .map(|wq| wq.graph)
    .collect();
    let base = bench_engine_config(0xC0DE);
    let one = QueryEngine::build(dataset.graphs.clone(), EngineConfig { threads: 1, ..base });
    let auto = QueryEngine::build(dataset.graphs, EngineConfig { threads: 0, ..base });
    let auto_threads = pgs_graph::parallel::resolve_threads(0);
    let params = QueryParams {
        epsilon: 0.4,
        delta: 2,
        variant: PruningVariant::OptSspBound,
    };
    let b1 = one.query_batch(&queries, &params).unwrap();
    let bn = auto.query_batch(&queries, &params).unwrap();
    let answers_identical = b1
        .results
        .iter()
        .zip(&bn.results)
        .all(|(x, y)| x.answers == y.answers);
    assert!(
        answers_identical,
        "threads = 1 and auto must return identical answers"
    );
    println!(
        "{}",
        format_row(
            "answers, 1 vs auto",
            &[format!("auto = {auto_threads} threads"), "identical".into()]
        )
    );

    let json = format!(
        "{{\n  \"benchmark\": \"pool_dispatch\",\n  \
         \"workers\": {WORKERS},\n  \"items\": {ITEMS},\n  \"dispatches\": {DISPATCHES},\n  \
         \"spawn_per_call_micros\": {spawn_micros:.3},\n  \
         \"pool_micros\": {pool_micros:.3},\n  \
         \"dispatch_speedup\": {dispatch_speedup:.3},\n  \
         \"answers_identical_1_vs_auto\": {answers_identical},\n  \
         \"auto_threads\": {auto_threads}\n}}\n"
    );
    std::fs::write("BENCH_pool.json", json).expect("writing BENCH_pool.json");
    println!("wrote BENCH_pool.json\n");
}

/// Sharded-snapshot benchmark (this PR's acceptance bar): header-only
/// `Pmi::open` vs full `Pmi::load` at 10k and 100k bulk skeletons, plus
/// end-to-end queries/sec at 1 vs 8 shards, recorded in `BENCH_shard.json`.
/// Before anything is timed, the lazily-opened engine's answers are asserted
/// byte-identical to the engine that built the index.
fn bench_shard() {
    use pgs_graph::model::GraphBuilder;
    println!("## bench-shard — v3 header-only open vs full load, 1 vs 8 shards");
    // Lean mining parameters: the corpus exercises snapshot *volume* (one PMI
    // column and one structural summary per graph), not feature quality, so
    // keep per-cell work minimal to make 100k graphs practical.
    let lean_config = EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                max_l: 2,
                max_features: 8,
                max_embeddings: 8,
                ..bench_feature_params()
            },
            bounds: BoundsConfig {
                max_embeddings: 8,
                max_cuts: 16,
                ..BoundsConfig::default()
            },
            threads: 0,
            seed: 0x5A4D,
        },
        ..bench_engine_config(0x5A4D)
    };
    // Short label-alphabet path queries matching the `bulk_skeletons` alphabet
    // (vertex labels 0..5, edge labels 0..2).
    let queries: Vec<pgs_graph::model::Graph> = (0..16u32)
        .map(|i| {
            GraphBuilder::new()
                .vertices(&[i % 5, (i + 1) % 5, (i + 2) % 5])
                .edge(0, 1, i % 2)
                .edge(1, 2, (i + 1) % 2)
                .build()
        })
        .collect();
    let params = QueryParams {
        epsilon: 0.1,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };

    println!(
        "{}",
        format_row(
            "|D|",
            &[
                "build (s)".into(),
                "load (s)".into(),
                "open (s)".into(),
                "open speedup".into(),
            ]
        )
    );
    let mut entries: Vec<String> = Vec::new();
    for &count in &[10_000usize, 100_000] {
        let graphs = bulk_skeletons(count, 0xB17);
        let t = Instant::now();
        let engine = QueryEngine::build(
            graphs.clone(),
            EngineConfig {
                shards: 8,
                ..lean_config
            },
        );
        let build_seconds = t.elapsed().as_secs_f64();
        let path = std::env::temp_dir().join(format!(
            "pgs-bench-shard-{count}-{}.pmi",
            std::process::id()
        ));
        let t = Instant::now();
        engine.pmi().save(&path).expect("saving the sharded index");
        let save_seconds = t.elapsed().as_secs_f64();
        let snapshot_bytes = std::fs::metadata(&path).expect("snapshot metadata").len() as usize;

        // Correctness before timing: the lazily-opened engine must answer
        // byte-identically to the engine that built the index.
        let opened = QueryEngine::open_index(graphs.clone(), &path, lean_config)
            .expect("opening the sharded snapshot");
        assert_eq!(
            opened.pmi().materialized_shards(),
            0,
            "open must not materialize any segment"
        );
        let identical = queries.iter().all(|q| {
            opened.query(q, &params).unwrap().answers == engine.query(q, &params).unwrap().answers
        });
        assert!(identical, "lazily-opened answers diverged from the build");

        // Full load (every segment decoded eagerly): best of 3.
        let mut load_seconds = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(Pmi::load(&path).expect("loading the snapshot"));
            load_seconds = load_seconds.min(t.elapsed().as_secs_f64());
        }
        // Header-only open: best of 10 (it is microsecond-scale).
        let mut open_seconds = f64::INFINITY;
        for _ in 0..10 {
            let t = Instant::now();
            std::hint::black_box(Pmi::open(&path).expect("opening the snapshot head"));
            open_seconds = open_seconds.min(t.elapsed().as_secs_f64());
        }
        std::fs::remove_file(&path).ok();
        let speedup = load_seconds / open_seconds.max(1e-12);
        println!(
            "{}",
            format_row(
                &format!("|D| = {count}"),
                &[
                    format!("{build_seconds:.2}s"),
                    format!("{load_seconds:.4}s"),
                    format!("{open_seconds:.6}s"),
                    format!("{speedup:.0}x"),
                ]
            )
        );
        entries.push(format!(
            "    {{ \"graphs\": {count}, \"snapshot_bytes\": {snapshot_bytes}, \
             \"build_seconds\": {build_seconds:.6}, \"save_seconds\": {save_seconds:.6}, \
             \"load_seconds\": {load_seconds:.6}, \"open_seconds\": {open_seconds:.6}, \
             \"open_speedup_vs_load\": {speedup:.1}, \"answers_identical\": {identical} }}"
        ));
    }

    // End-to-end throughput, 1 vs 8 shards on the 10k corpus.  Answers are
    // byte-identical at any shard count, so only the fan-out shape changes.
    let graphs = bulk_skeletons(10_000, 0xB17);
    let one = QueryEngine::build(
        graphs.clone(),
        EngineConfig {
            shards: 1,
            ..lean_config
        },
    );
    let eight = QueryEngine::build(
        graphs,
        EngineConfig {
            shards: 8,
            ..lean_config
        },
    );
    // Each engine is measured warm over consecutive batches (a production
    // engine answers its workload resident, not interleaved with a second
    // 10k-graph engine evicting its cache); answers are still cross-checked
    // between the two.
    let reference = one.query_batch(&queries, &params).unwrap();
    // Warm alternating rounds: a production engine answers its workload
    // resident, so each engine is measured over consecutive batches with its
    // working set warm (two warm-up batches re-establish it after the other
    // engine ran).  The container's background load drifts by several percent
    // over a measurement loop, so a single warm loop per engine turns that
    // drift into a fake shard-count effect — instead the engines alternate
    // *rounds* of warm batches and keep their best across all rounds.  One
    // pass feeds both the throughput line and the per-phase breakdown, so
    // the two sections cannot disagree about the same workload.
    struct Best {
        wall: f64,
        phases: [f64; 3],
        identical: bool,
    }
    let mut best = [
        Best {
            wall: f64::INFINITY,
            phases: [f64::INFINITY; 3],
            identical: true,
        },
        Best {
            wall: f64::INFINITY,
            phases: [f64::INFINITY; 3],
            identical: true,
        },
    ];
    for _round in 0..3 {
        for (engine, best) in [&eight, &one].into_iter().zip(&mut best) {
            for _ in 0..2 {
                let _ = engine.query_batch(&queries, &params).unwrap();
            }
            for _ in 0..6 {
                let r = engine.query_batch(&queries, &params).unwrap();
                best.wall = best.wall.min(r.wall_seconds);
                best.phases[0] = best.phases[0].min(r.stats.structural_seconds);
                best.phases[1] = best.phases[1].min(r.stats.probabilistic_seconds);
                best.phases[2] = best.phases[2].min(r.stats.verification_seconds);
                best.identical &= r
                    .results
                    .iter()
                    .zip(&reference.results)
                    .all(|(x, y)| x.answers == y.answers);
            }
        }
    }
    let [Best {
        wall: eight_secs,
        phases: eight_phases,
        identical: eight_identical,
    }, Best {
        wall: one_secs,
        phases: one_phases,
        identical: one_identical,
    }] = best;
    let identical = one_identical && eight_identical;
    assert!(identical, "1-shard and 8-shard answers must be identical");
    let n = queries.len() as f64;
    println!(
        "{}",
        format_row(
            "queries/sec, 10k graphs",
            &[
                format!("1 shard {:.1}", n / one_secs.max(1e-12)),
                format!("8 shards {:.1}", n / eight_secs.max(1e-12)),
            ]
        )
    );
    // Per-phase seconds breakdown (best over the measured batches).
    for (label, [p1, p2, p3], wall) in [
        ("phase seconds, 1 shard", one_phases, one_secs),
        ("phase seconds, 8 shards", eight_phases, eight_secs),
    ] {
        println!(
            "{}",
            format_row(
                label,
                &[
                    format!("p1 {p1:.4}"),
                    format!("p2 {p2:.4}"),
                    format!("p3 {p3:.4}"),
                    format!("wall {wall:.4}"),
                ]
            )
        );
    }
    let json = format!(
        "{{\n  \"benchmark\": \"sharded_snapshot\",\n  \"series\": [\n{}\n  ],\n  \
         \"throughput_10k\": {{ \"queries\": {q}, \"answers_identical\": {identical},\n    \
         \"shards_1\": {{ \"wall_seconds\": {one_secs:.6}, \"queries_per_second\": {qps1:.3} }},\n    \
         \"shards_8\": {{ \"wall_seconds\": {eight_secs:.6}, \"queries_per_second\": {qps8:.3} }} }}\n}}\n",
        entries.join(",\n"),
        q = queries.len(),
        qps1 = n / one_secs.max(1e-12),
        qps8 = n / eight_secs.max(1e-12),
    );
    std::fs::write("BENCH_shard.json", json).expect("writing BENCH_shard.json");
    println!("wrote BENCH_shard.json\n");
}

/// Bound-adaptive verification benchmark (this PR's acceptance bar): the
/// fixed-budget Karp–Luby sampler vs the early-stopping adaptive sampler on a
/// 10k-skeleton threshold workload, plus best-first `query_topk` vs the
/// rank-everything-then-truncate baseline, recorded in `BENCH_topk.json`.
/// Before any ratio is reported the adaptive answer sets are asserted
/// identical to the fixed-budget ones, and the adaptive top-k lists are
/// asserted byte-identical to the truncated full ranking.
fn bench_topk() {
    println!("## bench-topk — adaptive early stopping vs fixed budget, best-first top-k");
    // Lean mining parameters (as in bench-shard): the corpus exercises the
    // verification phase, not feature quality, and the twin engines share one
    // PMI so only sampler behaviour differs.
    let lean_pmi = PmiBuildParams {
        features: FeatureSelectionParams {
            max_l: 2,
            max_features: 8,
            max_embeddings: 8,
            ..bench_feature_params()
        },
        bounds: BoundsConfig {
            max_embeddings: 8,
            max_cuts: 16,
            ..BoundsConfig::default()
        },
        threads: 0,
        seed: 0x5A4D,
    };
    let adaptive_verify = VerifyOptions {
        exact_cutoff: 0, // force the sampling path on every candidate
        mc: pgs_prob::montecarlo::MonteCarloConfig {
            tau: 0.05,
            xi: 0.01,
            max_samples: 20_000,
        },
        adaptive: true,
        ..VerifyOptions::default()
    };
    let adaptive_config = EngineConfig {
        pmi: lean_pmi,
        verify: adaptive_verify,
        ..bench_engine_config(0x5A4D)
    };
    let fixed_config = EngineConfig {
        verify: VerifyOptions {
            adaptive: false,
            ..adaptive_verify
        },
        ..adaptive_config
    };
    let graphs = bulk_skeletons(10_000, 0xB17);
    let t = Instant::now();
    let adaptive = QueryEngine::build(graphs.clone(), adaptive_config);
    let build_seconds = t.elapsed().as_secs_f64();
    // The fixed-budget twin shares the adaptive engine's index (identical
    // mining fingerprint) so the second build costs nothing.
    let fixed = QueryEngine::from_parts(graphs, adaptive.pmi().clone(), fixed_config)
        .expect("the fixed twin shares the adaptive engine's index");

    let queries = bulk_path_queries(16);
    let params = QueryParams {
        epsilon: 0.1,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };

    // --- Threshold workload: equal answers first, then the samples ratio.
    let ab = adaptive.query_batch(&queries, &params).unwrap();
    let fb = fixed.query_batch(&queries, &params).unwrap();
    let answers_identical = ab
        .results
        .iter()
        .zip(&fb.results)
        .all(|(x, y)| x.answers == y.answers);
    assert!(
        answers_identical,
        "adaptive and fixed-budget threshold answers must be identical"
    );
    // Every sampled candidate carries the same per-candidate budget on both
    // engines, so drawn + saved on the adaptive side must reconstruct the
    // fixed side's draw count exactly.
    assert_eq!(
        ab.stats.samples_drawn + ab.stats.samples_saved,
        fb.stats.samples_drawn,
        "adaptive drawn + saved must equal the fixed-budget draw count"
    );
    let reduction = fb.stats.samples_drawn as f64 / ab.stats.samples_drawn.max(1) as f64;
    assert!(
        reduction >= 1.5,
        "acceptance: adaptive stopping must cut >= 1.5x samples on the threshold \
         workload at equal answers (measured {reduction:.2}x)"
    );
    let mut adaptive_secs = f64::INFINITY;
    let mut fixed_secs = f64::INFINITY;
    for _ in 0..3 {
        adaptive_secs = adaptive_secs.min(
            adaptive
                .query_batch(&queries, &params)
                .unwrap()
                .wall_seconds,
        );
        fixed_secs = fixed_secs.min(fixed.query_batch(&queries, &params).unwrap().wall_seconds);
    }
    println!(
        "{}",
        format_row(
            "threshold, 10k graphs",
            &[
                format!("fixed {} samp", fb.stats.samples_drawn),
                format!("adaptive {} samp", ab.stats.samples_drawn),
                format!("{reduction:.1}x fewer"),
                format!("{:.2}s vs {:.2}s", fixed_secs, adaptive_secs),
            ]
        )
    );

    // --- Top-k: best-first with a moving lower-bound threshold vs ranking the
    // whole candidate set at full budget and truncating.
    let k = 10usize;
    let topk_params = TopkParams {
        k,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    let baseline_params = TopkParams {
        k: 10_000,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    let at = adaptive.query_topk_batch(&queries, &topk_params).unwrap();
    let ft = fixed.query_topk_batch(&queries, &baseline_params).unwrap();
    let topk_identical = at.results.iter().zip(&ft.results).all(|(x, y)| {
        let lhs: Vec<(usize, u64)> = x
            .ranked
            .iter()
            .map(|r| (r.graph, r.ssp.to_bits()))
            .collect();
        let rhs: Vec<(usize, u64)> = y
            .ranked
            .iter()
            .take(k)
            .map(|r| (r.graph, r.ssp.to_bits()))
            .collect();
        lhs == rhs
    });
    assert!(
        topk_identical,
        "best-first top-{k} must be byte-identical to the truncated full ranking"
    );
    let mut topk_secs = f64::INFINITY;
    let mut baseline_secs = f64::INFINITY;
    for _ in 0..3 {
        topk_secs = topk_secs.min(
            adaptive
                .query_topk_batch(&queries, &topk_params)
                .unwrap()
                .wall_seconds,
        );
        baseline_secs = baseline_secs.min(
            fixed
                .query_topk_batch(&queries, &baseline_params)
                .unwrap()
                .wall_seconds,
        );
    }
    let topk_speedup = baseline_secs / topk_secs.max(1e-12);
    println!(
        "{}",
        format_row(
            &format!("top-{k}, 10k graphs"),
            &[
                format!("rank-all {baseline_secs:.2}s"),
                format!("best-first {topk_secs:.2}s"),
                format!("{topk_speedup:.1}x"),
                format!("{} pruned", at.stats.topk_pruned),
            ]
        )
    );

    let json = format!(
        "{{\n  \"benchmark\": \"adaptive_topk\",\n  \"database_graphs\": 10000,\n  \
         \"build_seconds\": {build_seconds:.6},\n  \
         \"threshold\": {{ \"queries\": {q}, \"epsilon\": 0.1, \"delta\": 1, \
         \"answers_identical\": {answers_identical},\n    \
         \"fixed\": {{ \"samples_drawn\": {fdrawn}, \"wall_seconds\": {fixed_secs:.6} }},\n    \
         \"adaptive\": {{ \"samples_drawn\": {adrawn}, \"samples_saved\": {asaved}, \
         \"early_accepts\": {eacc}, \"early_rejects\": {erej}, \"wall_seconds\": {adaptive_secs:.6} }},\n    \
         \"samples_reduction\": {reduction:.3} }},\n  \
         \"topk\": {{ \"queries\": {q}, \"k\": {k}, \"baseline_k\": 10000, \
         \"top_k_identical\": {topk_identical},\n    \
         \"baseline\": {{ \"samples_drawn\": {bdrawn}, \"wall_seconds\": {baseline_secs:.6} }},\n    \
         \"best_first\": {{ \"samples_drawn\": {tdrawn}, \"samples_saved\": {tsaved}, \
         \"early_rejects\": {terej}, \"topk_pruned\": {tpruned}, \"wall_seconds\": {topk_secs:.6} }},\n    \
         \"speedup\": {topk_speedup:.3} }}\n}}\n",
        q = queries.len(),
        fdrawn = fb.stats.samples_drawn,
        adrawn = ab.stats.samples_drawn,
        asaved = ab.stats.samples_saved,
        eacc = ab.stats.early_accepts,
        erej = ab.stats.early_rejects,
        bdrawn = ft.stats.samples_drawn,
        tdrawn = at.stats.samples_drawn,
        tsaved = at.stats.samples_saved,
        terej = at.stats.early_rejects,
        tpruned = at.stats.topk_pruned,
    );
    std::fs::write("BENCH_topk.json", json).expect("writing BENCH_topk.json");
    println!("wrote BENCH_topk.json\n");
}

fn bench_arena() {
    use pgs_graph::model::GraphBuilder;
    use pgs_graph::summary::{EdgeSignature, StructuralSummary};
    use pgs_index::sindex::FilterScratch;
    use std::collections::BTreeMap;

    println!("## bench-arena — flat arena layouts vs pre-refactor nested layouts");

    // ---- S-Index posting scan: FlatVecVec postings + dense scratch vs the
    // ---- pre-refactor BTreeMap postings + BTreeMap mass accumulator.
    let graphs: Vec<pgs_graph::model::Graph> = bulk_skeletons(20_000, 0xA12E)
        .iter()
        .map(|pg| pg.skeleton().clone())
        .collect();
    let index = StructuralIndex::build(&graphs);

    // Reference layout: one heap list per signature behind a tree, exactly the
    // shape the index had before the arena refactor.
    let mut ref_postings: BTreeMap<EdgeSignature, Vec<(u32, u32)>> = BTreeMap::new();
    for (g, skeleton) in graphs.iter().enumerate() {
        for &(sig, count) in StructuralSummary::of(skeleton).edge_signatures() {
            ref_postings.entry(sig).or_default().push((g as u32, count));
        }
    }

    // Path queries over the `bulk_skeletons` alphabet (vertex labels 0..5,
    // edge labels 0..2), 3 edges each so the deficit filter is non-vacuous.
    let queries: Vec<StructuralSummary> = (0..16u32)
        .map(|i| {
            let g = GraphBuilder::new()
                .vertices(&[i % 5, (i + 1) % 5, (i + 2) % 5, (i + 3) % 5])
                .edge(0, 1, i % 2)
                .edge(1, 2, (i + 1) % 2)
                .edge(2, 3, i % 2)
                .build();
            StructuralSummary::of(&g)
        })
        .collect();
    let delta = 1usize;

    let reference_filter = |query: &StructuralSummary| -> Vec<usize> {
        let m = query.edge_count();
        if m <= delta {
            return (0..graphs.len()).collect();
        }
        let need = (m - delta) as u32;
        let mut mass: BTreeMap<u32, u32> = BTreeMap::new();
        for &(sig, qc) in query.edge_signatures() {
            if let Some(list) = ref_postings.get(&sig) {
                for &(g, count) in list {
                    *mass.entry(g).or_insert(0) += qc.min(count);
                }
            }
        }
        mass.iter()
            .filter(|&(_, &m)| m >= need)
            .map(|(&g, _)| g as usize)
            .collect()
    };

    // Answers must be byte-identical before any timing.
    let mut scratch = FilterScratch::default();
    for q in &queries {
        index.filter_into(q.view(), delta, &mut scratch);
        assert_eq!(
            scratch.candidates(),
            reference_filter(q).as_slice(),
            "flat posting scan diverged from the nested reference"
        );
    }

    let reps = 30usize;
    let mut flat_secs = f64::INFINITY;
    let mut nested_secs = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            for q in &queries {
                index.filter_into(q.view(), delta, &mut scratch);
                std::hint::black_box(scratch.candidates().len());
            }
        }
        flat_secs = flat_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..reps {
            for q in &queries {
                std::hint::black_box(reference_filter(q).len());
            }
        }
        nested_secs = nested_secs.min(t.elapsed().as_secs_f64());
    }
    let posting_speedup = nested_secs / flat_secs.max(1e-12);
    println!(
        "{}",
        format_row(
            "posting scan, 20k graphs",
            &[
                format!("flat {:.2}ms", flat_secs * 1e3 / reps as f64),
                format!("nested {:.2}ms", nested_secs * 1e3 / reps as f64),
                format!("{posting_speedup:.2}x"),
            ]
        )
    );

    // ---- JPT marginal projection (the UnionSampler construction kernel):
    // ---- arena `marginal_rows_into` reuse vs per-call `marginal_rows` Vecs.
    use pgs_prob::jpt::JointProbTable;
    use pgs_prob::neighbor::partition_with_triangles;
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(0xA12E);
    let skeleton = pgs_graph::generate::random_connected_graph(
        &pgs_graph::generate::RandomGraphConfig {
            vertices: 60,
            edges: 110,
            vertex_labels: 6,
            edge_labels: 2,
            preferential: true,
        },
        &mut rng,
    );
    let tables: Vec<JointProbTable> = partition_with_triangles(&skeleton, 3)
        .iter()
        .map(|grp| {
            let ep: Vec<(pgs_graph::model::EdgeId, f64)> =
                grp.iter().map(|&e| (e, rng.gen_range(0.2..0.8))).collect();
            JointProbTable::from_max_rule(&ep).expect("jpt")
        })
        .collect();
    let keeps: Vec<(usize, Vec<usize>)> = tables
        .iter()
        .enumerate()
        .filter(|(_, t)| t.edges().len() >= 2)
        .map(|(i, _)| (i, vec![0usize, 1]))
        .collect();
    assert!(!keeps.is_empty(), "fixture must have multi-edge tables");

    // Byte-identity of the projected rows before timing.
    let mut arena: Vec<f64> = Vec::new();
    for &(ti, ref keep) in &keeps {
        arena.clear();
        let start = tables[ti].marginal_rows_into(keep, &mut arena);
        let reference = tables[ti].marginal_rows(keep);
        assert_eq!(arena[start..].len(), reference.len());
        assert!(
            arena[start..]
                .iter()
                .zip(&reference)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "arena marginal rows diverged from the per-call reference"
        );
    }

    let proj_reps = 20_000usize;
    let mut proj_flat_secs = f64::INFINITY;
    let mut proj_nested_secs = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..proj_reps {
            arena.clear();
            for &(ti, ref keep) in &keeps {
                let start = tables[ti].marginal_rows_into(keep, &mut arena);
                std::hint::black_box(start);
            }
            std::hint::black_box(arena.len());
        }
        proj_flat_secs = proj_flat_secs.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..proj_reps {
            for &(ti, ref keep) in &keeps {
                std::hint::black_box(tables[ti].marginal_rows(keep).len());
            }
        }
        proj_nested_secs = proj_nested_secs.min(t.elapsed().as_secs_f64());
    }
    let proj_speedup = proj_nested_secs / proj_flat_secs.max(1e-12);
    println!(
        "{}",
        format_row(
            "JPT marginal projection",
            &[
                format!("arena {:.1}us", proj_flat_secs * 1e6 / proj_reps as f64),
                format!("alloc {:.1}us", proj_nested_secs * 1e6 / proj_reps as f64),
                format!("{proj_speedup:.2}x"),
            ]
        )
    );

    assert!(
        posting_speedup >= 1.3,
        "arena posting scan must be >= 1.3x over the nested reference, got {posting_speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"arena_layouts\",\n  \
         \"posting_scan\": {{ \"graphs\": {graphs_n}, \"queries\": {queries_n}, \"answers_identical\": true,\n    \
         \"flat_seconds_per_rep\": {flat:.9}, \"nested_seconds_per_rep\": {nested:.9},\n    \
         \"speedup\": {posting_speedup:.3} }},\n  \
         \"jpt_marginal_projection\": {{ \"tables\": {tables_n}, \"answers_identical\": true,\n    \
         \"arena_seconds_per_rep\": {pflat:.9}, \"alloc_seconds_per_rep\": {pnested:.9},\n    \
         \"speedup\": {proj_speedup:.3} }}\n}}\n",
        graphs_n = graphs.len(),
        queries_n = queries.len(),
        flat = flat_secs / reps as f64,
        nested = nested_secs / reps as f64,
        tables_n = keeps.len(),
        pflat = proj_flat_secs / proj_reps as f64,
        pnested = proj_nested_secs / proj_reps as f64,
    );
    std::fs::write("BENCH_arena.json", json).expect("writing BENCH_arena.json");
    println!("wrote BENCH_arena.json\n");
}

fn parse_scale(args: &[String]) -> DatasetScale {
    let mut scale = DatasetScale::Tiny;
    for (i, a) in args.iter().enumerate() {
        if a == "--scale" {
            scale = match args.get(i + 1).map(|s| s.as_str()) {
                Some("small") => DatasetScale::Small,
                Some("medium") => DatasetScale::Medium,
                Some("paper") => DatasetScale::Paper,
                _ => DatasetScale::Tiny,
            };
        }
    }
    scale
}

/// Figure 9: verification time (Exact vs SMP) and SMP quality vs query size.
fn figure_9(scale: DatasetScale) {
    println!("## Figure 9 — verification: Exact vs SMP sampling, by query size");
    println!(
        "{}",
        format_row(
            "query size",
            &[
                "Exact (ms)".into(),
                "SMP (ms)".into(),
                "precision".into(),
                "recall".into()
            ]
        )
    );
    let query_sizes = [3usize, 4, 5, 6, 7];
    for &qs in &query_sizes {
        let setup = build_setup_with(scale, None, qs, 6, CorrelationModel::MaxRule);
        let epsilon = 0.5;
        let delta = (qs / 3).max(1);
        let mc_opts = VerifyOptions {
            exact_cutoff: 0, // force the sampling path
            ..bench_engine_config(1).verify
        };
        let mut exact_ms = 0.0;
        let mut smp_ms = 0.0;
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut fnn = 0.0;
        let mut rng = StdRng::seed_from_u64(9);
        let mut evaluated = 0usize;
        let skeletons: Vec<pgs_graph::model::Graph> = setup
            .engine
            .db()
            .iter()
            .map(|g| g.skeleton().clone())
            .collect();
        for wq in &setup.queries {
            // Verification operates on the candidate set surviving structural
            // pruning (the paper first runs the filters, then verifies).
            let candidates =
                pgs_query::structural::structural_candidates(&skeletons, &wq.graph, delta);
            for &gi in candidates.iter().take(8) {
                let pg = &setup.engine.db()[gi];
                let t0 = Instant::now();
                let exact = verify_ssp_exact(pg, &wq.graph, delta, 24).unwrap_or_else(|_| {
                    verify_ssp_sampled(pg, &wq.graph, delta, &VerifyOptions::default(), &mut rng)
                });
                exact_ms += t0.elapsed().as_secs_f64() * 1e3;
                let t1 = Instant::now();
                let sampled = verify_ssp_sampled(pg, &wq.graph, delta, &mc_opts, &mut rng);
                smp_ms += t1.elapsed().as_secs_f64() * 1e3;
                evaluated += 1;
                let truth = exact >= epsilon;
                let predicted = sampled >= epsilon;
                match (truth, predicted) {
                    (true, true) => tp += 1.0,
                    (false, true) => fp += 1.0,
                    (true, false) => fnn += 1.0,
                    (false, false) => {}
                }
            }
        }
        let n = evaluated.max(1) as f64;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 1.0 };
        let recall = if tp + fnn > 0.0 { tp / (tp + fnn) } else { 1.0 };
        println!(
            "{}",
            format_row(
                &format!("q{qs}"),
                &[
                    format!("{:.2}", exact_ms / n),
                    format!("{:.2}", smp_ms / n),
                    format!("{precision:.2}"),
                    format!("{recall:.2}"),
                ]
            )
        );
    }
    println!();
}

/// Figure 10: candidate size / pruning time vs probability threshold.
fn figure_10(scale: DatasetScale) {
    println!("## Figure 10 — probabilistic pruning vs probability threshold ε (δ fixed)");
    println!(
        "{}",
        format_row(
            "ε",
            &[
                "Structure".into(),
                "SSPBound".into(),
                "OPT-SSPBound".into(),
                "t_Struct (ms)".into(),
                "t_SSP (ms)".into(),
                "t_OPT (ms)".into(),
            ]
        )
    );
    let setup = build_setup_with(scale, None, 5, 6, CorrelationModel::MaxRule);
    let delta = 2;
    for epsilon in [0.3, 0.4, 0.5, 0.6, 0.7] {
        let mut sizes = [0.0f64; 3];
        let mut times = [0.0f64; 3];
        for wq in &setup.queries {
            for (vi, variant) in [
                PruningVariant::Structure,
                PruningVariant::SspBound,
                PruningVariant::OptSspBound,
            ]
            .into_iter()
            .enumerate()
            {
                let result = setup
                    .engine
                    .query(
                        &wq.graph,
                        &QueryParams {
                            epsilon,
                            delta,
                            variant,
                        },
                    )
                    .unwrap();
                sizes[vi] += result.stats.probabilistic_candidates as f64;
                times[vi] +=
                    (result.stats.structural_seconds + result.stats.probabilistic_seconds) * 1e3;
            }
        }
        let n = setup.queries.len().max(1) as f64;
        println!(
            "{}",
            format_row(
                &format!("{epsilon:.1}"),
                &[
                    format!("{:.1}", sizes[0] / n),
                    format!("{:.1}", sizes[1] / n),
                    format!("{:.1}", sizes[2] / n),
                    format!("{:.2}", times[0] / n),
                    format!("{:.2}", times[1] / n),
                    format!("{:.2}", times[2] / n),
                ]
            )
        );
    }
    println!();
}

/// Figure 11: candidate size / pruning time vs subgraph distance threshold,
/// comparing greedy SIP bounds (SIPBound) against clique-tightened bounds
/// (OPT-SIPBound).
fn figure_11(scale: DatasetScale) {
    println!("## Figure 11 — pruning vs subgraph distance threshold δ (SIP bound variants)");
    println!(
        "{}",
        format_row(
            "δ",
            &[
                "Structure".into(),
                "SIPBound".into(),
                "OPT-SIPBound".into(),
                "t_SIP (ms)".into(),
                "t_OPT (ms)".into(),
            ]
        )
    );
    let config = paper_scale(scale);
    let dataset = generate_ppi_dataset(&config);
    let queries = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 6,
            seed: 0xABCD,
        },
    );
    // Two engines: greedy SIP bounds vs clique-tightened SIP bounds.
    let mut greedy_cfg = bench_engine_config(0xFEED);
    greedy_cfg.pmi.bounds = BoundsConfig::greedy();
    let greedy_engine = QueryEngine::build(dataset.graphs.clone(), greedy_cfg);
    let opt_engine = QueryEngine::build(dataset.graphs.clone(), bench_engine_config(0xFEED));
    let epsilon = 0.5;
    for delta in [1usize, 2, 3] {
        let mut structure = 0.0;
        let mut sizes = [0.0f64; 2];
        let mut times = [0.0f64; 2];
        for wq in &queries {
            let s = opt_engine
                .query(
                    &wq.graph,
                    &QueryParams {
                        epsilon,
                        delta,
                        variant: PruningVariant::Structure,
                    },
                )
                .unwrap();
            structure += s.stats.probabilistic_candidates as f64;
            for (ei, engine) in [&greedy_engine, &opt_engine].into_iter().enumerate() {
                let result = engine
                    .query(
                        &wq.graph,
                        &QueryParams {
                            epsilon,
                            delta,
                            variant: PruningVariant::OptSspBound,
                        },
                    )
                    .unwrap();
                sizes[ei] += result.stats.probabilistic_candidates as f64;
                times[ei] +=
                    (result.stats.structural_seconds + result.stats.probabilistic_seconds) * 1e3;
            }
        }
        let n = queries.len().max(1) as f64;
        println!(
            "{}",
            format_row(
                &format!("{delta}"),
                &[
                    format!("{:.1}", structure / n),
                    format!("{:.1}", sizes[0] / n),
                    format!("{:.1}", sizes[1] / n),
                    format!("{:.2}", times[0] / n),
                    format!("{:.2}", times[1] / n),
                ]
            )
        );
    }
    println!();
}

/// Figure 12: feature-generation parameters (maxL, α, β, γ).
fn figure_12(scale: DatasetScale) {
    println!("## Figure 12 — impact of the feature-generation parameters");
    let config = paper_scale(scale);
    let dataset = generate_ppi_dataset(&config);
    let queries = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 4,
            seed: 0xABCD,
        },
    );
    let candidate_size = |pmi_params: PmiBuildParams| -> f64 {
        let engine = QueryEngine::build(
            dataset.graphs.clone(),
            pgs_query::pipeline::EngineConfig {
                pmi: pmi_params,
                ..bench_engine_config(0xFEED)
            },
        );
        let mut size = 0.0;
        for wq in &queries {
            let r = engine
                .query(
                    &wq.graph,
                    &QueryParams {
                        epsilon: 0.5,
                        delta: 2,
                        variant: PruningVariant::OptSspBound,
                    },
                )
                .unwrap();
            size += r.stats.probabilistic_candidates as f64;
        }
        size / queries.len().max(1) as f64
    };

    println!("### (a) candidate size vs maxL");
    println!("{}", format_row("maxL", &["OPT-SSPBound".into()]));
    for max_l in [2usize, 3, 4, 5] {
        let mut params = PmiBuildParams {
            features: bench_feature_params(),
            bounds: BoundsConfig::default(),
            threads: 0,
            seed: 7,
        };
        params.features.max_l = max_l;
        let size = candidate_size(params);
        println!(
            "{}",
            format_row(&format!("{max_l}"), &[format!("{size:.1}")])
        );
    }

    println!("### (b) candidate size vs alpha");
    println!("{}", format_row("alpha", &["OPT-SIPBound".into()]));
    for alpha in [0.05, 0.1, 0.15, 0.2, 0.25] {
        let mut params = PmiBuildParams {
            features: bench_feature_params(),
            bounds: BoundsConfig::default(),
            threads: 0,
            seed: 7,
        };
        params.features.alpha = alpha;
        let size = candidate_size(params);
        println!(
            "{}",
            format_row(&format!("{alpha:.2}"), &[format!("{size:.1}")])
        );
    }

    println!("### (c) index building time vs beta");
    println!("{}", format_row("beta", &["build time (s)".into()]));
    for beta in [0.05, 0.1, 0.15, 0.2, 0.25] {
        let mut features = bench_feature_params();
        features.beta = beta;
        let t0 = Instant::now();
        let _pmi = Pmi::build(
            &dataset.graphs,
            &PmiBuildParams {
                features,
                bounds: BoundsConfig::default(),
                threads: 0,
                seed: 7,
            },
        );
        println!(
            "{}",
            format_row(
                &format!("{beta:.2}"),
                &[format!("{:.3}", t0.elapsed().as_secs_f64())]
            )
        );
    }

    println!("### (d) index size vs gamma");
    println!(
        "{}",
        format_row("gamma", &["index size (KiB)".into(), "features".into()])
    );
    for gamma in [0.05, 0.1, 0.15, 0.2, 0.25] {
        let mut features = bench_feature_params();
        features.gamma = gamma;
        // Lift the feature cap so the discriminativity threshold (not the cap)
        // determines how many features are indexed.
        features.max_features = 256;
        let pmi = Pmi::build(
            &dataset.graphs,
            &PmiBuildParams {
                features,
                bounds: BoundsConfig::default(),
                threads: 0,
                seed: 7,
            },
        );
        let stats = pmi.stats();
        println!(
            "{}",
            format_row(
                &format!("{gamma:.2}"),
                &[
                    format!("{:.2}", stats.size_bytes as f64 / 1024.0),
                    format!("{}", stats.feature_count),
                ]
            )
        );
    }
    println!();
}

/// Figure 13: total query processing time vs database size (PMI vs Exact).
fn figure_13(scale: DatasetScale) {
    println!("## Figure 13 — total query time vs database size");
    println!(
        "{}",
        format_row(
            "|D|",
            &["PMI (ms)".into(), "Exact (ms)".into(), "speedup".into()]
        )
    );
    let base = paper_scale(scale).graph_count;
    for factor in [1usize, 2, 4, 8] {
        let n = base * factor;
        let setup = build_setup_with(scale, Some(n), 5, 4, CorrelationModel::MaxRule);
        let params = QueryParams {
            epsilon: 0.5,
            delta: 2,
            variant: PruningVariant::OptSspBound,
        };
        let mut pmi_ms = 0.0;
        let mut exact_ms = 0.0;
        for wq in &setup.queries {
            let t0 = Instant::now();
            let _ = setup.engine.query(&wq.graph, &params).unwrap();
            pmi_ms += t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let _ = setup.engine.exact_scan(&wq.graph, &params).unwrap();
            exact_ms += t1.elapsed().as_secs_f64() * 1e3;
        }
        let q = setup.queries.len().max(1) as f64;
        println!(
            "{}",
            format_row(
                &format!("{n}"),
                &[
                    format!("{:.1}", pmi_ms / q),
                    format!("{:.1}", exact_ms / q),
                    format!("{:.1}x", exact_ms / pmi_ms.max(1e-9)),
                ]
            )
        );
    }
    println!();
}

/// Figure 14: query quality (precision/recall) of the correlated vs the
/// independent model, by probability threshold.
fn figure_14(scale: DatasetScale) {
    println!("## Figure 14 — query quality: correlated (COR) vs independent (IND) model");
    println!(
        "{}",
        format_row(
            "ε",
            &[
                "COR-P".into(),
                "COR-R".into(),
                "IND-P".into(),
                "IND-R".into()
            ]
        )
    );
    // Quality experiment: organisms must be separable, so the dataset uses
    // higher extraction confidences (the organism signal, not the absolute
    // probability level, is what COR vs IND disagree about) and a small
    // perturbation; queries are small motifs with a tolerant δ, mirroring the
    // ratio of query size to distance threshold the paper uses.
    let config = PpiDatasetConfig {
        correlation: CorrelationModel::StrongPositive,
        perturbation: 0.2,
        mean_edge_probability: 0.78,
        ..paper_scale(scale)
    };
    let dataset = generate_ppi_dataset(&config);
    let queries = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 4,
            count: 8,
            seed: 0x14,
        },
    );
    let cor_engine = QueryEngine::build(dataset.graphs.clone(), bench_engine_config(14));
    let ind_graphs: Vec<_> = dataset.graphs.iter().map(to_independent_model).collect();
    let ind_engine = QueryEngine::build(ind_graphs, bench_engine_config(14));
    for epsilon in [0.3, 0.4, 0.5, 0.6, 0.7] {
        let mut row = Vec::new();
        for engine in [&cor_engine, &ind_engine] {
            let mut precision_sum = 0.0;
            let mut recall_sum = 0.0;
            for wq in &queries {
                let truth: Vec<usize> = dataset
                    .organism_of
                    .iter()
                    .enumerate()
                    .filter(|(_, &o)| o == wq.source_organism)
                    .map(|(i, _)| i)
                    .collect();
                let result = engine
                    .query(
                        &wq.graph,
                        &QueryParams {
                            epsilon,
                            delta: 2,
                            variant: PruningVariant::OptSspBound,
                        },
                    )
                    .unwrap();
                let hits = result.answers.iter().filter(|a| truth.contains(a)).count() as f64;
                precision_sum += if result.answers.is_empty() {
                    1.0
                } else {
                    hits / result.answers.len() as f64
                };
                recall_sum += hits / truth.len().max(1) as f64;
            }
            let n = queries.len().max(1) as f64;
            row.push(format!("{:.2}", precision_sum / n));
            row.push(format!("{:.2}", recall_sum / n));
        }
        println!("{}", format_row(&format!("{epsilon:.1}"), &row));
    }
    println!();
}
