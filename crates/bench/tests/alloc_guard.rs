//! Allocation-count regression guard for the arena-packed hot loops.
//!
//! The arena refactor (DESIGN.md §14) moved the per-trial and per-query hot
//! paths onto contiguous, caller-owned buffers; these tests pin that property
//! by counting `GlobalAlloc` calls around the loops.  A future change that
//! reintroduces per-iteration heap traffic fails here rather than silently
//! regressing the benchmarks.
//!
//! Both probes live in ONE `#[test]` so the counter is never shared with a
//! concurrently-running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pgs_graph::generate::{random_connected_graph, random_connected_subgraph, RandomGraphConfig};
use pgs_graph::model::EdgeId;
use pgs_graph::summary::StructuralSummary;
use pgs_graph::vf2::{enumerate_embeddings, MatchOptions};
use pgs_index::sindex::{FilterScratch, StructuralIndex};
use pgs_prob::jpt::JointProbTable;
use pgs_prob::model::ProbabilisticGraph;
use pgs_prob::neighbor::partition_with_triangles;
use pgs_prob::union_sampler::UnionSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pass-through system allocator that counts every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc` — the layout is forwarded
    // unchanged and the returned pointer comes straight from `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we pass the
        // layout through untouched.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::dealloc` — ptr/layout are forwarded
    // exactly as received from the paired `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` was allocated by this allocator
        // with `layout`, which is exactly `System`'s requirement.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc` — all arguments are
    // forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; arguments
        // pass through untouched.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed by `f`.
fn allocations_in(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn probabilistic_fixture() -> (ProbabilisticGraph, pgs_graph::model::Graph) {
    let mut rng = StdRng::seed_from_u64(5);
    let g = random_connected_graph(
        &RandomGraphConfig {
            vertices: 40,
            edges: 70,
            vertex_labels: 6,
            edge_labels: 2,
            preferential: true,
        },
        &mut rng,
    );
    let q = random_connected_subgraph(&g, 4, &mut rng).expect("query extraction");
    let groups = partition_with_triangles(&g, 3);
    let tables: Vec<JointProbTable> = groups
        .iter()
        .map(|grp| {
            let ep: Vec<(EdgeId, f64)> = grp.iter().map(|&e| (e, 0.4)).collect();
            JointProbTable::from_max_rule(&ep).expect("jpt")
        })
        .collect();
    let pg = ProbabilisticGraph::new(g, tables, true).expect("probabilistic graph");
    (pg, q)
}

#[test]
fn hot_loops_do_not_allocate() {
    // --- Karp–Luby trial loop -------------------------------------------
    let (pg, q) = probabilistic_fixture();
    let embeddings: Vec<Vec<EdgeId>> =
        enumerate_embeddings(&q, pg.skeleton(), MatchOptions::capped(16))
            .embeddings
            .into_iter()
            .map(|e| e.edges)
            .collect();
    assert!(
        !embeddings.is_empty(),
        "fixture must yield at least one embedding"
    );
    let mut relevant: Vec<EdgeId> = embeddings.iter().flatten().copied().collect();
    relevant.sort_unstable();
    relevant.dedup();
    let sampler = UnionSampler::with_relevant(&pg, &embeddings, &relevant).expect("union sampler");

    let mut rng = StdRng::seed_from_u64(11);
    let mut scratch = vec![0u64; sampler.words()];
    let mut hits = 0usize;
    // Warm-up: one trial, so lazy thread-local RNG state etc. is paid up
    // front (the loop itself must stay clean from the very first iteration,
    // but the guard measures steady state).
    hits += usize::from(sampler.sample_trial(&mut rng, &mut scratch));
    let allocs = allocations_in(|| {
        for _ in 0..512 {
            hits += usize::from(sampler.sample_trial(&mut rng, &mut scratch));
        }
    });
    assert!(hits <= 513);
    assert_eq!(
        allocs, 0,
        "UnionSampler::sample_trial loop allocated {allocs} times"
    );

    // --- Phase-1 posting scan -------------------------------------------
    let mut rng = StdRng::seed_from_u64(23);
    let skeletons: Vec<pgs_graph::model::Graph> = (0..32)
        .map(|_| {
            random_connected_graph(
                &RandomGraphConfig {
                    vertices: 20,
                    edges: 32,
                    vertex_labels: 5,
                    edge_labels: 2,
                    preferential: false,
                },
                &mut rng,
            )
        })
        .collect();
    let index = StructuralIndex::build(&skeletons);
    let query = random_connected_subgraph(&skeletons[0], 6, &mut rng).expect("query extraction");
    let query_summary = StructuralSummary::of(&query);

    let mut scratch = FilterScratch::default();
    // Warm pass sizes the dense mass accumulator.
    let cold = index.filter_into(query_summary.view(), 2, &mut scratch);
    let mut scanned = 0usize;
    let allocs = allocations_in(|| {
        for _ in 0..64 {
            scanned += index.filter_into(query_summary.view(), 2, &mut scratch);
        }
    });
    assert_eq!(scanned, cold * 64, "warm scans must match the cold scan");
    assert_eq!(allocs, 0, "warm filter_into allocated {allocs} times");
}
