//! Micro-benchmarks of the substrates the pipeline is built from: VF2
//! matching, embedding enumeration, maximum-weight clique, minimal-cut
//! enumeration, JPT sampling and possible-world sampling.  Not a paper figure;
//! used to track regressions in the building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use pgs_graph::clique::{max_weight_clique, CliqueOptions};
use pgs_graph::cuts::{minimal_cuts, CutEnumOptions};
use pgs_graph::generate::{random_connected_graph, random_connected_subgraph, RandomGraphConfig};
use pgs_graph::model::EdgeId;
use pgs_graph::vf2::{contains_subgraph, enumerate_embeddings, MatchOptions};
use pgs_prob::jpt::JointProbTable;
use pgs_prob::model::ProbabilisticGraph;
use pgs_prob::neighbor::partition_with_triangles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn setup_graph() -> (pgs_graph::model::Graph, pgs_graph::model::Graph) {
    let mut rng = StdRng::seed_from_u64(5);
    let g = random_connected_graph(
        &RandomGraphConfig {
            vertices: 40,
            edges: 70,
            vertex_labels: 6,
            edge_labels: 2,
            preferential: true,
        },
        &mut rng,
    );
    let q = random_connected_subgraph(&g, 5, &mut rng).expect("query extraction");
    (g, q)
}

fn bench_substrates(c: &mut Criterion) {
    let (g, q) = setup_graph();
    let mut group = c.benchmark_group("micro_substrates");

    group.bench_function("vf2_containment", |b| b.iter(|| contains_subgraph(&q, &g)));

    group.bench_function("vf2_enumerate_embeddings", |b| {
        b.iter(|| enumerate_embeddings(&q, &g, MatchOptions::capped(32)))
    });

    // Max-weight clique on a 24-node compatibility graph.
    let n = 24usize;
    let mut rng = StdRng::seed_from_u64(7);
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
    let mut adjacent = pgs_graph::BitMatrix::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.4) {
                adjacent.set_pair(i, j);
            }
        }
    }
    group.bench_function("max_weight_clique_24", |b| {
        b.iter(|| max_weight_clique(&weights, &adjacent, CliqueOptions::default()))
    });

    // Minimal cuts over 6 overlapping embeddings.
    let embeddings: Vec<Vec<EdgeId>> = (0..6)
        .map(|i| vec![EdgeId(i), EdgeId(i + 1), EdgeId(i + 2)])
        .collect();
    group.bench_function("minimal_cuts_chain6", |b| {
        b.iter(|| minimal_cuts(&embeddings, CutEnumOptions::default()))
    });

    // JPT construction + sampling and world sampling.
    let groups = partition_with_triangles(&g, 3);
    let tables: Vec<JointProbTable> = groups
        .iter()
        .map(|grp| {
            let ep: Vec<(EdgeId, f64)> = grp.iter().map(|&e| (e, 0.4)).collect();
            JointProbTable::from_max_rule(&ep).unwrap()
        })
        .collect();
    let pg = ProbabilisticGraph::new(g.clone(), tables, true).unwrap();
    group.bench_function("sample_possible_world_70edges", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| pg.sample_world(&mut rng))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_substrates
}
criterion_main!(benches);
