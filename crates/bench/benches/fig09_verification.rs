//! Figure 9(a): verification cost — exact SSP evaluation vs the Algorithm 5
//! sampler (SMP) — as the query grows.  (Figure 9(b), the precision/recall of
//! SMP, is produced by the `experiments` binary since it is a quality metric,
//! not a timing.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgs_bench::{bench_engine_config, build_setup_with};
use pgs_datagen::ppi::CorrelationModel;
use pgs_datagen::scenarios::DatasetScale;
use pgs_query::verify::{verify_ssp_exact, verify_ssp_sampled, VerifyOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_verification");
    for &query_size in &[3usize, 5, 7] {
        let setup = build_setup_with(
            DatasetScale::Tiny,
            None,
            query_size,
            2,
            CorrelationModel::MaxRule,
        );
        let wq = &setup.queries[0];
        let delta = 1usize;
        // Verify against the query's own source graph (always a candidate).
        let pg = &setup.engine.db()[wq.source_graph];
        group.bench_with_input(
            BenchmarkId::new("exact", query_size),
            &query_size,
            |b, _| {
                b.iter(|| {
                    verify_ssp_exact(pg, &wq.graph, delta, 24).ok();
                })
            },
        );
        let smp_options = VerifyOptions {
            exact_cutoff: 0,
            ..bench_engine_config(1).verify
        };
        group.bench_with_input(BenchmarkId::new("smp", query_size), &query_size, |b, _| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| verify_ssp_sampled(pg, &wq.graph, delta, &smp_options, &mut rng))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_verification
}
criterion_main!(benches);
