//! Figure 13: total query processing time as the database grows — the complete
//! PMI pipeline vs the Exact scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgs_bench::build_setup_with;
use pgs_datagen::ppi::CorrelationModel;
use pgs_datagen::scenarios::DatasetScale;
use pgs_query::pipeline::{PruningVariant, QueryParams};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_scalability");
    for &db_size in &[24usize, 48, 96] {
        let setup = build_setup_with(
            DatasetScale::Tiny,
            Some(db_size),
            5,
            1,
            CorrelationModel::MaxRule,
        );
        let q = &setup.queries[0].graph;
        let params = QueryParams {
            epsilon: 0.5,
            delta: 2,
            variant: PruningVariant::OptSspBound,
        };
        group.bench_with_input(BenchmarkId::new("pmi", db_size), &db_size, |b, _| {
            b.iter(|| setup.engine.query(q, &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("exact", db_size), &db_size, |b, _| {
            b.iter(|| setup.engine.exact_scan(q, &params).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scalability
}
criterion_main!(benches);
