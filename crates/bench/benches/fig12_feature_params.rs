//! Figure 12(c): index building time as the feature-generation parameters
//! change (maxL and β shown here; the candidate-size panels (a)/(b) and the
//! index-size panel (d) are reported by the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgs_bench::bench_feature_params;
use pgs_datagen::ppi::generate_ppi_dataset;
use pgs_datagen::scenarios::{paper_scale, DatasetScale};
use pgs_index::pmi::{Pmi, PmiBuildParams};
use pgs_index::sip_bounds::BoundsConfig;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_index_build(c: &mut Criterion) {
    let dataset = generate_ppi_dataset(&paper_scale(DatasetScale::Tiny));
    let mut group = c.benchmark_group("fig12_feature_params");

    for &max_l in &[2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("build_by_maxL", max_l),
            &max_l,
            |b, &ml| {
                let mut features = bench_feature_params();
                features.max_l = ml;
                let params = PmiBuildParams {
                    features,
                    bounds: BoundsConfig::default(),
                    threads: 1,
                    seed: 7,
                };
                b.iter(|| Pmi::build(&dataset.graphs, &params))
            },
        );
    }
    for &beta in &[0.05f64, 0.25] {
        group.bench_with_input(
            BenchmarkId::new("build_by_beta", format!("{beta:.2}")),
            &beta,
            |b, &bt| {
                let mut features = bench_feature_params();
                features.beta = bt;
                let params = PmiBuildParams {
                    features,
                    bounds: BoundsConfig::default(),
                    threads: 1,
                    seed: 7,
                };
                b.iter(|| Pmi::build(&dataset.graphs, &params))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_index_build
}
criterion_main!(benches);
