//! Ablation benches for the design choices called out in DESIGN.md §6:
//!
//! * clique-tightened SIP bounds vs greedy first-fit selection,
//! * unconditional event probabilities vs the Algorithm 3 conditional
//!   estimator (the paper-faithful configuration),
//! * greedy weighted set cover (Algorithm 1) vs the naive per-element sum for
//!   the `Usim(q)` upper bound.

use criterion::{criterion_group, criterion_main, Criterion};
use pgs_bench::build_setup_with;
use pgs_datagen::ppi::CorrelationModel;
use pgs_datagen::scenarios::DatasetScale;
use pgs_graph::relax::relax_query;
use pgs_index::sip_bounds::{sip_bounds, BoundsConfig};
use pgs_query::prune::{BoundInstance, CrossTermRule};
use pgs_query::setcover::greedy_weighted_set_cover;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_ablations(c: &mut Criterion) {
    let setup = build_setup_with(DatasetScale::Tiny, None, 5, 1, CorrelationModel::MaxRule);
    let pg = &setup.engine.db()[setup.queries[0].source_graph];
    let feature = &setup.engine.pmi().features()[0].graph;

    let mut group = c.benchmark_group("ablation_bounds");

    group.bench_function("sip_bounds_clique", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sip_bounds(pg, feature, &BoundsConfig::default(), &mut rng))
    });
    group.bench_function("sip_bounds_greedy", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sip_bounds(pg, feature, &BoundsConfig::greedy(), &mut rng))
    });
    group.bench_function("sip_bounds_paper_conditional", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sip_bounds(pg, feature, &BoundsConfig::paper_faithful(), &mut rng))
    });

    // Usim: greedy set cover (Algorithm 1) vs naive per-element minimum sum.
    let relaxed = relax_query(&setup.queries[0].graph, 1);
    let instance =
        BoundInstance::build(setup.engine.pmi(), setup.queries[0].source_graph, &relaxed);
    group.bench_function("usim_greedy_set_cover", |b| {
        b.iter(|| instance.usim_optimal())
    });
    group.bench_function("usim_random_pick", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| instance.usim_random(&mut rng))
    });
    group.bench_function("lsim_qp_rounding", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| instance.lsim_optimal(CrossTermRule::SafeMin, &mut rng))
    });

    // Raw set-cover kernel on a synthetic instance.
    let sets: Vec<(Vec<usize>, f64)> = (0..30)
        .map(|i| {
            (
                vec![i % 10, (i * 3) % 10, (i * 7) % 10],
                0.1 + (i as f64) * 0.01,
            )
        })
        .collect();
    group.bench_function("set_cover_kernel_30x10", |b| {
        b.iter(|| greedy_weighted_set_cover(10, &sets))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ablations
}
criterion_main!(benches);
