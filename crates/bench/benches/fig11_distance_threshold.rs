//! Figure 11(b): pruning time as the subgraph distance threshold δ varies,
//! with the two SIP-bound variants behind the PMI: greedy first-fit selection
//! (SIPBound) and the clique-tightened bounds (OPT-SIPBound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgs_bench::bench_engine_config;
use pgs_datagen::ppi::generate_ppi_dataset;
use pgs_datagen::queries::{generate_query_workload, QueryWorkloadConfig};
use pgs_datagen::scenarios::{paper_scale, DatasetScale};
use pgs_index::sip_bounds::BoundsConfig;
use pgs_query::pipeline::{PruningVariant, QueryEngine, QueryParams};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_pruning_by_distance(c: &mut Criterion) {
    let dataset = generate_ppi_dataset(&paper_scale(DatasetScale::Tiny));
    let queries = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 1,
            seed: 0xABCD,
        },
    );
    let q = &queries[0].graph;

    let mut greedy_cfg = bench_engine_config(0xFEED);
    greedy_cfg.pmi.bounds = BoundsConfig::greedy();
    let greedy_engine = QueryEngine::build(dataset.graphs.clone(), greedy_cfg);
    let opt_engine = QueryEngine::build(dataset.graphs.clone(), bench_engine_config(0xFEED));

    let mut group = c.benchmark_group("fig11_distance_threshold");
    for &delta in &[1usize, 2, 3] {
        for (label, engine) in [
            ("sip_bound", &greedy_engine),
            ("opt_sip_bound", &opt_engine),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("delta={delta}")),
                &delta,
                |b, &d| {
                    let params = QueryParams {
                        epsilon: 0.5,
                        delta: d,
                        variant: PruningVariant::OptSspBound,
                    };
                    b.iter(|| engine.query(q, &params).unwrap())
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pruning_by_distance
}
criterion_main!(benches);
