//! Figure 14: query processing under the correlated (COR) model vs the
//! independent (IND) model.  The paper's figure reports precision/recall (a
//! quality metric produced by the `experiments` binary); this bench measures
//! the query-time cost of the two models, which the paper discusses alongside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgs_bench::bench_engine_config;
use pgs_datagen::ppi::{generate_ppi_dataset, CorrelationModel, PpiDatasetConfig};
use pgs_datagen::queries::{generate_query_workload, QueryWorkloadConfig};
use pgs_datagen::scenarios::{paper_scale, DatasetScale};
use pgs_prob::independent::to_independent_model;
use pgs_query::pipeline::{PruningVariant, QueryEngine, QueryParams};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_cor_vs_ind(c: &mut Criterion) {
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        correlation: CorrelationModel::StrongPositive,
        ..paper_scale(DatasetScale::Tiny)
    });
    let queries = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 1,
            seed: 0x14,
        },
    );
    let q = &queries[0].graph;
    let cor_engine = QueryEngine::build(dataset.graphs.clone(), bench_engine_config(14));
    let ind_graphs: Vec<_> = dataset.graphs.iter().map(to_independent_model).collect();
    let ind_engine = QueryEngine::build(ind_graphs, bench_engine_config(14));

    let mut group = c.benchmark_group("fig14_cor_vs_ind");
    for &epsilon in &[0.3f64, 0.5, 0.7] {
        let params = QueryParams {
            epsilon,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        group.bench_with_input(
            BenchmarkId::new("correlated", format!("eps={epsilon:.1}")),
            &epsilon,
            |b, _| b.iter(|| cor_engine.query(q, &params).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("independent", format!("eps={epsilon:.1}")),
            &epsilon,
            |b, _| b.iter(|| ind_engine.query(q, &params).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cor_vs_ind
}
criterion_main!(benches);
