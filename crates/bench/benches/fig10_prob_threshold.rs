//! Figure 10(b): pruning time as the probability threshold ε varies, for the
//! three pruning stacks (Structure, SSPBound, OPT-SSPBound).  Candidate sizes
//! (Figure 10(a)) are reported by the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgs_bench::build_setup_with;
use pgs_datagen::ppi::CorrelationModel;
use pgs_datagen::scenarios::DatasetScale;
use pgs_query::pipeline::{PruningVariant, QueryParams};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_pruning_by_threshold(c: &mut Criterion) {
    let setup = build_setup_with(DatasetScale::Tiny, None, 5, 2, CorrelationModel::MaxRule);
    let wq = &setup.queries[0];
    let mut group = c.benchmark_group("fig10_prob_threshold");
    for &epsilon in &[0.3f64, 0.5, 0.7] {
        for (label, variant) in [
            ("structure", PruningVariant::Structure),
            ("ssp_bound", PruningVariant::SspBound),
            ("opt_ssp_bound", PruningVariant::OptSspBound),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("eps={epsilon:.1}")),
                &epsilon,
                |b, &eps| {
                    let params = QueryParams {
                        epsilon: eps,
                        delta: 2,
                        variant,
                    };
                    b.iter(|| setup.engine.query(&wq.graph, &params).unwrap())
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pruning_by_threshold
}
criterion_main!(benches);
