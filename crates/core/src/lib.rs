//! # pgs-core — probabilistic subgraph similarity search
//!
//! The public facade of the workspace: a batteries-included
//! [`ProbGraphDatabase`] that stores probabilistic graphs, builds the
//! Probabilistic Matrix Index (PMI) and answers **threshold-based probabilistic
//! subgraph similarity queries (T-PS)** as defined by Yuan, Wang, Chen and Wang,
//! *"Efficient Subgraph Similarity Search on Large Probabilistic Graph
//! Databases"*, VLDB 2012.
//!
//! ```
//! use pgs_core::prelude::*;
//!
//! // Build two tiny probabilistic graphs (a triangle and a path) and query them.
//! let mut db = ProbGraphDatabase::new();
//! for (name, edges) in [("triangle", vec![(0, 1), (1, 2), (0, 2)]), ("path", vec![(0, 1), (1, 2)])] {
//!     let mut builder = GraphBuilder::new().name(name).vertices(&[0, 0, 0]);
//!     for &(u, v) in &edges {
//!         builder = builder.edge(u, v, 0);
//!     }
//!     let skeleton = builder.build();
//!     let probs = vec![0.9; skeleton.edge_count()];
//!     db.insert(ProbabilisticGraph::independent(skeleton, &probs).unwrap());
//! }
//! db.build_index();
//!
//! let query = GraphBuilder::new().vertices(&[0, 0, 0]).edge(0, 1, 0).edge(1, 2, 0).build();
//! let matches = db.query(&query, 0.5, 0).unwrap();
//! assert_eq!(matches.len(), 2); // both graphs contain a 2-edge path with high probability
//! ```
//!
//! The lower-level building blocks (graph model, probabilistic model, PMI,
//! pruning, verification, dataset generation) are re-exported from the
//! sub-crates for users who need finer control.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use pgs_graph::model::Graph;
use pgs_index::pmi::Pmi;
use pgs_index::snapshot::SnapshotError;
use pgs_prob::model::ProbabilisticGraph;
use pgs_query::pipeline::{
    BatchResult, EngineConfig, EngineLoadError, IndexMismatch, PruningVariant, QueryEngine,
    QueryError, QueryParams, QueryResult, TopkBatchResult, TopkParams, TopkResult,
};
use std::fmt;
use std::path::Path;

pub use pgs_datagen as datagen;
pub use pgs_graph as graph;
pub use pgs_index as index;
pub use pgs_prob as prob;
pub use pgs_query as query;

/// Convenience prelude with the types most applications need.
pub mod prelude {
    pub use crate::{DbError, DynamicDatabase, ProbGraphDatabase, QueryMatch};
    pub use pgs_datagen::ppi::{generate_ppi_dataset, PpiDatasetConfig};
    pub use pgs_datagen::scenarios::{paper_scale, DatasetScale};
    pub use pgs_graph::model::{EdgeId, Graph, GraphBuilder, Label, VertexId};
    pub use pgs_prob::jpt::JointProbTable;
    pub use pgs_prob::model::ProbabilisticGraph;
    pub use pgs_query::pipeline::{
        BatchResult, EngineConfig, ExactScanConfig, PruningVariant, QueryError, QueryParams,
        QueryResult, RankedAnswer, TopkBatchResult, TopkParams, TopkResult,
    };
}

/// Errors surfaced by the facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// `query` was called before `build_index`.
    IndexNotBuilt,
    /// The query graph is empty.
    EmptyQuery,
    /// The probability threshold is outside `(0, 1]` (or `NaN`).
    InvalidThreshold,
    /// A graph index was out of range for the current database.
    GraphOutOfRange(usize),
    /// The engine's `Exact` baseline configuration is unusable (`τ`/`ξ`
    /// `NaN` or non-positive, or a zero sample cap).
    InvalidScanConfig(String),
    /// The engine's verification sampler options are unusable (`τ`/`ξ`
    /// `NaN` or non-positive, or a zero embedding cap).
    InvalidVerifyConfig(String),
    /// The engine's thread count exceeds the worker ceiling
    /// (`pgs_graph::parallel::MAX_THREADS`); taken literally it would ask
    /// for an absurd number of OS threads.
    InvalidThreadConfig(String),
    /// The engine's shard count is zero or exceeds the shard ceiling
    /// (`pgs_index::shard::MAX_SHARDS`).
    InvalidShardConfig(String),
    /// The requested top-k answer count is zero or exceeds the supported
    /// ceiling (`pgs_query::pipeline::MAX_TOPK`).
    InvalidK(String),
    /// Saving or loading an index snapshot failed.
    Snapshot(String),
    /// A loaded index snapshot does not match the database contents.
    IndexMismatch(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::IndexNotBuilt => write!(f, "the PMI has not been built; call build_index()"),
            DbError::EmptyQuery => write!(f, "the query graph has no edges"),
            DbError::InvalidThreshold => {
                write!(f, "the probability threshold must lie in (0, 1]")
            }
            DbError::GraphOutOfRange(i) => write!(f, "graph index {i} is out of range"),
            // The wrapped QueryError strings already carry their
            // "invalid … configuration/options:" prefixes.
            DbError::InvalidScanConfig(e) => write!(f, "{e}"),
            DbError::InvalidVerifyConfig(e) => write!(f, "{e}"),
            DbError::InvalidThreadConfig(e) => write!(f, "{e}"),
            DbError::InvalidShardConfig(e) => write!(f, "{e}"),
            DbError::InvalidK(e) => write!(f, "{e}"),
            DbError::Snapshot(e) => write!(f, "index snapshot error: {e}"),
            DbError::IndexMismatch(e) => write!(f, "index/database mismatch: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<QueryError> for DbError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::InvalidEpsilon { .. } => DbError::InvalidThreshold,
            QueryError::EmptyQuery => DbError::EmptyQuery,
            QueryError::InvalidExactScanConfig { .. } => DbError::InvalidScanConfig(e.to_string()),
            QueryError::InvalidVerifyOptions { .. } => DbError::InvalidVerifyConfig(e.to_string()),
            QueryError::InvalidThreads { .. } => DbError::InvalidThreadConfig(e.to_string()),
            QueryError::InvalidShards { .. } => DbError::InvalidShardConfig(e.to_string()),
            QueryError::InvalidK { .. } => DbError::InvalidK(e.to_string()),
        }
    }
}

impl From<SnapshotError> for DbError {
    fn from(e: SnapshotError) -> Self {
        DbError::Snapshot(e.to_string())
    }
}

impl From<IndexMismatch> for DbError {
    fn from(e: IndexMismatch) -> Self {
        DbError::IndexMismatch(e.to_string())
    }
}

impl From<EngineLoadError> for DbError {
    fn from(e: EngineLoadError) -> Self {
        match e {
            EngineLoadError::Snapshot(s) => s.into(),
            EngineLoadError::Mismatch(m) => m.into(),
        }
    }
}

/// One query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMatch {
    /// Index of the matching graph in the database (insertion order).
    pub graph_index: usize,
    /// Name of the matching graph.
    pub name: String,
}

/// A database of probabilistic graphs supporting T-PS queries.
#[derive(Debug, Clone, Default)]
pub struct ProbGraphDatabase {
    graphs: Vec<ProbabilisticGraph>,
    config: EngineConfig,
    engine: Option<QueryEngine>,
}

impl ProbGraphDatabase {
    /// Creates an empty database with the default engine configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with a custom engine configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        ProbGraphDatabase {
            graphs: Vec::new(),
            config,
            engine: None,
        }
    }

    /// Inserts a probabilistic graph and returns its index.  Invalidates any
    /// previously built index.
    pub fn insert(&mut self, graph: ProbabilisticGraph) -> usize {
        self.engine = None;
        self.graphs.push(graph);
        self.graphs.len() - 1
    }

    /// Inserts many graphs at once.
    pub fn extend(&mut self, graphs: impl IntoIterator<Item = ProbabilisticGraph>) {
        self.engine = None;
        self.graphs.extend(graphs);
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The stored graph at `index`.
    pub fn graph(&self, index: usize) -> Option<&ProbabilisticGraph> {
        self.graphs.get(index)
    }

    /// All stored graphs.
    pub fn graphs(&self) -> &[ProbabilisticGraph] {
        &self.graphs
    }

    /// Builds (or rebuilds) the PMI over the current contents.
    pub fn build_index(&mut self) {
        self.engine = Some(QueryEngine::build(self.graphs.clone(), self.config));
    }

    /// True once the index has been built for the current contents.
    pub fn is_indexed(&self) -> bool {
        self.engine.is_some()
    }

    /// The underlying query engine (available after [`Self::build_index`]).
    pub fn engine(&self) -> Option<&QueryEngine> {
        self.engine.as_ref()
    }

    /// Answers a T-PS query: all graphs whose subgraph similarity probability
    /// to `query` under distance threshold `delta` is at least `epsilon`.
    pub fn query(
        &self,
        query: &Graph,
        epsilon: f64,
        delta: usize,
    ) -> Result<Vec<QueryMatch>, DbError> {
        let result = self.query_detailed(
            query,
            &QueryParams {
                epsilon,
                delta,
                variant: PruningVariant::OptSspBound,
            },
        )?;
        Ok(result
            .answers
            .iter()
            .map(|&gi| QueryMatch {
                graph_index: gi,
                name: self.graphs[gi].name().to_string(),
            })
            .collect())
    }

    /// Answers a T-PS query with full control over the parameters and access to
    /// the per-phase statistics.
    pub fn query_detailed(
        &self,
        query: &Graph,
        params: &QueryParams,
    ) -> Result<QueryResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        Ok(engine.query(query, params)?)
    }

    /// Answers a batch of T-PS queries in one dispatch on the persistent
    /// worker pool (see `QueryEngine::query_batch` — nothing is spawned per
    /// call; parked pool workers are reused across queries and across
    /// batches).  Every result is byte-identical to a standalone
    /// [`Self::query_detailed`] call with the same parameters.
    pub fn query_batch(
        &self,
        queries: &[Graph],
        params: &QueryParams,
    ) -> Result<BatchResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        Ok(engine.query_batch(queries, params)?)
    }

    /// The `Exact` baseline: scans the whole database computing the SSP of
    /// every graph (no index involvement beyond holding the data).
    pub fn exact_scan(&self, query: &Graph, params: &QueryParams) -> Result<QueryResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        Ok(engine.exact_scan(query, params)?)
    }

    /// Answers a top-k probabilistic subgraph similarity query: the `k`
    /// graphs with the highest subgraph similarity probability to `query`
    /// under distance threshold `delta`, best first.  Graphs whose SSP is
    /// zero are never returned, so fewer than `k` matches are possible.
    pub fn query_topk(
        &self,
        query: &Graph,
        k: usize,
        delta: usize,
    ) -> Result<Vec<QueryMatch>, DbError> {
        let result = self.query_topk_detailed(
            query,
            &TopkParams {
                k,
                delta,
                variant: PruningVariant::OptSspBound,
            },
        )?;
        Ok(result
            .ranked
            .iter()
            .map(|r| QueryMatch {
                graph_index: r.graph,
                name: self.graphs[r.graph].name().to_string(),
            })
            .collect())
    }

    /// Answers a top-k query with full control over the parameters and access
    /// to the ranked SSP estimates and per-phase statistics.
    pub fn query_topk_detailed(
        &self,
        query: &Graph,
        params: &TopkParams,
    ) -> Result<TopkResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        Ok(engine.query_topk(query, params)?)
    }

    /// Answers a batch of top-k queries in one dispatch on the persistent
    /// worker pool.  Every result is byte-identical to a standalone
    /// [`Self::query_topk_detailed`] call with the same parameters.
    pub fn query_topk_batch(
        &self,
        queries: &[Graph],
        params: &TopkParams,
    ) -> Result<TopkBatchResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        Ok(engine.query_topk_batch(queries, params)?)
    }
}

/// A mutable, always-indexed database of probabilistic graphs with an
/// explicit index lifecycle: build once, [`DynamicDatabase::save_index`] to
/// disk, [`DynamicDatabase::open`] in later processes, and mutate with
/// [`DynamicDatabase::insert_graph`] / [`DynamicDatabase::remove_graph`]
/// *without* rebuilding — an insert computes the SIP bounds of the existing
/// features in the new graph and appends one PMI column; a remove drops one.
///
/// Incremental mutations never re-mine the feature set, so after heavy churn
/// the features describe a database that no longer exists.  The bounds stay
/// correct (pruning never returns wrong answers) but lose pruning power;
/// [`DynamicDatabase::staleness`] tracks the churn fraction and
/// [`DynamicDatabase::should_remine`] recommends a [`DynamicDatabase::remine`]
/// (full rebuild) once it passes the configured threshold.
///
/// ```
/// use pgs_core::prelude::*;
///
/// let mk = |name: &str, p: f64| {
///     let g = GraphBuilder::new()
///         .name(name)
///         .vertices(&[0, 0, 0])
///         .edge(0, 1, 0)
///         .edge(1, 2, 0)
///         .build();
///     ProbabilisticGraph::independent(g, &[p, p]).unwrap()
/// };
/// let mut db = DynamicDatabase::build(vec![mk("a", 0.9), mk("b", 0.8)], EngineConfig::default());
/// db.insert_graph(mk("c", 0.1)); // appends one PMI column, no rebuild
/// let q = GraphBuilder::new().vertices(&[0, 0]).edge(0, 1, 0).build();
/// let result = db.query(&q, &QueryParams { epsilon: 0.5, delta: 0, ..QueryParams::default() }).unwrap();
/// assert_eq!(result.answers, vec![0, 1]);
/// let removed = db.remove_graph(2).unwrap();
/// assert_eq!(removed.name(), "c");
/// assert!(db.staleness() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicDatabase {
    engine: QueryEngine,
    remine_threshold: f64,
}

/// Default churn fraction beyond which [`DynamicDatabase::should_remine`]
/// recommends re-mining the feature set.
pub const DEFAULT_REMINE_THRESHOLD: f64 = 0.5;

impl DynamicDatabase {
    /// Builds the database and its index from scratch.
    pub fn build(graphs: Vec<ProbabilisticGraph>, config: EngineConfig) -> DynamicDatabase {
        DynamicDatabase {
            engine: QueryEngine::build(graphs, config),
            remine_threshold: DEFAULT_REMINE_THRESHOLD,
        }
    }

    /// Assembles the database from graphs and a pre-built index, verifying
    /// that the index columns match the graph contents.
    pub fn from_parts(
        graphs: Vec<ProbabilisticGraph>,
        pmi: Pmi,
        config: EngineConfig,
    ) -> Result<DynamicDatabase, DbError> {
        Ok(DynamicDatabase {
            engine: QueryEngine::from_parts(graphs, pmi, config)?,
            remine_threshold: DEFAULT_REMINE_THRESHOLD,
        })
    }

    /// Opens a database whose index was previously saved with
    /// [`DynamicDatabase::save_index`]: reads the snapshot header and pairs
    /// the index with `graphs` without rebuilding anything.  For format-v3
    /// (sharded) snapshots only the fixed-width header and shard table are
    /// read up front; each shard's columns are materialized from disk on
    /// first touch, so opening a large index is O(shards), not O(bytes).
    pub fn open(
        graphs: Vec<ProbabilisticGraph>,
        index_path: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<DynamicDatabase, DbError> {
        Ok(DynamicDatabase {
            engine: QueryEngine::open_index(graphs, index_path, config)?,
            remine_threshold: DEFAULT_REMINE_THRESHOLD,
        })
    }

    /// Saves the index (not the graphs — those live in the application's own
    /// storage) to `path` in the versioned binary snapshot format.
    pub fn save_index(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        Ok(self.engine.pmi().save(path)?)
    }

    /// Inserts a graph, incrementally appending its PMI column, and returns
    /// its index.
    pub fn insert_graph(&mut self, graph: ProbabilisticGraph) -> usize {
        self.engine.insert_graph(graph)
    }

    /// Removes the graph at `index`, dropping its PMI column; every later
    /// graph shifts down by one.
    pub fn remove_graph(&mut self, index: usize) -> Result<ProbabilisticGraph, DbError> {
        self.engine
            .remove_graph(index)
            .ok_or(DbError::GraphOutOfRange(index))
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.engine.db().len()
    }

    /// True if the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.engine.db().is_empty()
    }

    /// All stored graphs, in index order.
    pub fn graphs(&self) -> &[ProbabilisticGraph] {
        self.engine.db()
    }

    /// The underlying query engine.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Churn fraction since the features were last mined (see
    /// `Pmi::staleness`).  On a sharded index this is the *maximum* per-shard
    /// churn fraction, so one hot shard is enough to recommend a re-mine even
    /// when the rest of the database is quiet.
    pub fn staleness(&self) -> f64 {
        self.engine.pmi().staleness()
    }

    /// True once [`DynamicDatabase::staleness`] passes the re-mine threshold.
    pub fn should_remine(&self) -> bool {
        self.staleness() >= self.remine_threshold
    }

    /// Sets the churn fraction beyond which [`DynamicDatabase::should_remine`]
    /// fires (default [`DEFAULT_REMINE_THRESHOLD`]).
    pub fn set_remine_threshold(&mut self, threshold: f64) {
        self.remine_threshold = threshold.max(0.0);
    }

    /// Re-mines the feature set and rebuilds the index over the current
    /// contents (the remedy for a stale index); resets the churn counter.
    pub fn remine(&mut self) {
        let config = *self.engine.config();
        // Move the graphs out of the old engine instead of cloning them — a
        // re-mine tends to fire exactly when the database is large.
        let placeholder = QueryEngine::build(Vec::new(), config);
        let graphs = std::mem::replace(&mut self.engine, placeholder).into_db();
        self.engine = QueryEngine::build(graphs, config);
    }

    /// Answers a T-PS query (see `QueryEngine::query`).
    pub fn query(&self, query: &Graph, params: &QueryParams) -> Result<QueryResult, DbError> {
        Ok(self.engine.query(query, params)?)
    }

    /// Answers a batch of T-PS queries (see `QueryEngine::query_batch`).
    pub fn query_batch(
        &self,
        queries: &[Graph],
        params: &QueryParams,
    ) -> Result<BatchResult, DbError> {
        Ok(self.engine.query_batch(queries, params)?)
    }

    /// The `Exact` baseline scan (see `QueryEngine::exact_scan`).
    pub fn exact_scan(&self, query: &Graph, params: &QueryParams) -> Result<QueryResult, DbError> {
        Ok(self.engine.exact_scan(query, params)?)
    }

    /// Answers a top-k query (see `QueryEngine::query_topk`).
    pub fn query_topk(&self, query: &Graph, params: &TopkParams) -> Result<TopkResult, DbError> {
        Ok(self.engine.query_topk(query, params)?)
    }

    /// Answers a batch of top-k queries (see `QueryEngine::query_topk_batch`).
    pub fn query_topk_batch(
        &self,
        queries: &[Graph],
        params: &TopkParams,
    ) -> Result<TopkBatchResult, DbError> {
        Ok(self.engine.query_topk_batch(queries, params)?)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn triangle(name: &str, p: f64) -> ProbabilisticGraph {
        let g = GraphBuilder::new()
            .name(name)
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        ProbabilisticGraph::independent(g, &[p, p, p]).unwrap()
    }

    #[test]
    fn insert_build_query_roundtrip() {
        let mut db = ProbGraphDatabase::new();
        assert!(db.is_empty());
        db.insert(triangle("strong", 0.95));
        db.insert(triangle("weak", 0.1));
        assert_eq!(db.len(), 2);
        assert!(!db.is_indexed());
        db.build_index();
        assert!(db.is_indexed());

        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        // The strong triangle has SSP = 0.95^3 ≈ 0.857 at δ = 0; the weak one 0.001.
        let matches = db.query(&q, 0.5, 0).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].name, "strong");
        assert_eq!(matches[0].graph_index, 0);
    }

    #[test]
    fn query_before_index_errors() {
        let db = ProbGraphDatabase::new();
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        assert_eq!(db.query(&q, 0.5, 0).unwrap_err(), DbError::IndexNotBuilt);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("a", 0.5));
        db.build_index();
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        assert_eq!(db.query(&q, 0.0, 0).unwrap_err(), DbError::InvalidThreshold);
        assert_eq!(db.query(&q, 1.5, 0).unwrap_err(), DbError::InvalidThreshold);
        let empty = Graph::new();
        assert_eq!(db.query(&empty, 0.5, 0).unwrap_err(), DbError::EmptyQuery);
    }

    #[test]
    fn inserting_invalidates_the_index() {
        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("a", 0.9));
        db.build_index();
        assert!(db.is_indexed());
        db.insert(triangle("b", 0.9));
        assert!(!db.is_indexed());
        db.build_index();
        assert_eq!(db.engine().unwrap().pmi().graph_count(), 2);
    }

    #[test]
    fn detailed_query_and_exact_scan_agree() {
        let mut db = ProbGraphDatabase::new();
        db.extend([triangle("a", 0.9), triangle("b", 0.4), triangle("c", 0.05)]);
        db.build_index();
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        let fast = db.query_detailed(&q, &params).unwrap();
        let exact = db.exact_scan(&q, &params).unwrap();
        assert_eq!(fast.answers, exact.answers);
        assert!(fast.stats.structural_candidates <= db.len());
    }

    #[test]
    fn query_batch_agrees_with_individual_queries() {
        let mut db = ProbGraphDatabase::new();
        db.extend([triangle("a", 0.9), triangle("b", 0.4), triangle("c", 0.05)]);
        db.build_index();
        let q1 = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let q2 = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        let batch = db.query_batch(&[q1.clone(), q2.clone()], &params).unwrap();
        assert_eq!(batch.results.len(), 2);
        for (q, r) in [q1, q2].iter().zip(&batch.results) {
            assert_eq!(r.answers, db.query_detailed(q, &params).unwrap().answers);
        }
        // Batch-level validation mirrors the single-query path.
        let empty = Graph::new();
        assert_eq!(
            db.query_batch(&[empty], &params).unwrap_err(),
            DbError::EmptyQuery
        );
        assert_eq!(
            ProbGraphDatabase::new()
                .query_batch(&[], &params)
                .unwrap_err(),
            DbError::IndexNotBuilt
        );
    }

    #[test]
    fn graph_accessors() {
        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("only", 0.7));
        assert_eq!(db.graph(0).unwrap().name(), "only");
        assert!(db.graph(1).is_none());
        assert_eq!(db.graphs().len(), 1);
    }

    #[test]
    fn error_display() {
        assert!(DbError::IndexNotBuilt.to_string().contains("build_index"));
        assert!(DbError::EmptyQuery.to_string().contains("no edges"));
        assert!(DbError::InvalidThreshold.to_string().contains("(0, 1]"));
        assert!(DbError::GraphOutOfRange(7).to_string().contains('7'));
        assert!(DbError::Snapshot("boom".into())
            .to_string()
            .contains("boom"));
        assert!(DbError::IndexMismatch("salt".into())
            .to_string()
            .contains("salt"));
    }

    #[test]
    fn nan_epsilon_is_a_typed_error_everywhere() {
        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("a", 0.5));
        db.build_index();
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        let params = QueryParams {
            epsilon: f64::NAN,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        assert_eq!(
            db.query_detailed(&q, &params).unwrap_err(),
            DbError::InvalidThreshold
        );
        assert_eq!(
            db.exact_scan(&q, &params).unwrap_err(),
            DbError::InvalidThreshold
        );
        assert_eq!(
            db.query_batch(std::slice::from_ref(&q), &params)
                .unwrap_err(),
            DbError::InvalidThreshold
        );
        let dynamic = DynamicDatabase::build(vec![triangle("a", 0.5)], EngineConfig::default());
        assert_eq!(
            dynamic.query(&q, &params).unwrap_err(),
            DbError::InvalidThreshold
        );
        assert_eq!(
            dynamic.exact_scan(&q, &params).unwrap_err(),
            DbError::InvalidThreshold
        );
    }

    #[test]
    fn dynamic_database_inserts_and_removes_without_rebuilds() {
        let mut db = DynamicDatabase::build(
            vec![triangle("strong", 0.95), triangle("weak", 0.1)],
            EngineConfig::default(),
        );
        assert_eq!(db.len(), 2);
        assert_eq!(db.staleness(), 0.0);
        assert!(!db.should_remine());

        let idx = db.insert_graph(triangle("medium", 0.7));
        assert_eq!(idx, 2);
        assert_eq!(db.engine().pmi().graph_count(), 3);

        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        assert_eq!(db.query(&q, &params).unwrap().answers, vec![0, 2]);

        let removed = db.remove_graph(0).unwrap();
        assert_eq!(removed.name(), "strong");
        assert_eq!(db.len(), 2);
        // "medium" shifted down to index 1.
        assert_eq!(db.query(&q, &params).unwrap().answers, vec![1]);
        assert_eq!(
            db.remove_graph(99).unwrap_err(),
            DbError::GraphOutOfRange(99)
        );

        // Two mutations over two graphs: the worst shard's churn fraction is
        // at least 1.0 at any shard count (exactly 1.0 when unsharded, more
        // when both mutations land in a smaller shard), so well past the
        // default re-mine threshold.
        assert!(db.staleness() >= 1.0);
        assert!(db.should_remine());
        db.remine();
        assert_eq!(db.staleness(), 0.0);
        assert_eq!(db.query(&q, &params).unwrap().answers, vec![1]);
        db.set_remine_threshold(0.0);
        assert!(db.should_remine());
    }

    #[test]
    fn dynamic_database_save_open_round_trip() {
        let graphs = vec![triangle("a", 0.9), triangle("b", 0.4)];
        let db = DynamicDatabase::build(graphs.clone(), EngineConfig::default());
        let path = std::env::temp_dir().join(format!("pgs-core-dyndb-{}.pmi", std::process::id()));
        db.save_index(&path).unwrap();
        let reopened = DynamicDatabase::open(graphs.clone(), &path, EngineConfig::default());
        let mismatched = DynamicDatabase::open(
            vec![triangle("a", 0.9), triangle("DIFFERENT", 0.4)],
            &path,
            EngineConfig::default(),
        );
        let reopened = reopened.unwrap();
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        assert_eq!(
            reopened.query(&q, &params).unwrap().answers,
            db.query(&q, &params).unwrap().answers
        );
        // The open is lazy: the file must outlive the first query above.
        std::fs::remove_file(&path).ok();
        assert!(matches!(mismatched.unwrap_err(), DbError::IndexMismatch(_)));
        assert!(matches!(
            DynamicDatabase::open(graphs, "/nonexistent/idx.pmi", EngineConfig::default())
                .unwrap_err(),
            DbError::Snapshot(_)
        ));
    }

    #[test]
    fn invalid_shard_counts_surface_as_typed_facade_errors() {
        let config = EngineConfig {
            shards: 0,
            ..EngineConfig::default()
        };
        let db = DynamicDatabase::build(vec![triangle("a", 0.5)], config);
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        let params = QueryParams {
            epsilon: 0.5,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        let err = db.query(&q, &params).unwrap_err();
        assert!(matches!(err, DbError::InvalidShardConfig(_)));
        assert!(err.to_string().contains("shard"));
        let too_many = EngineConfig {
            shards: pgs_index::shard::MAX_SHARDS + 1,
            ..EngineConfig::default()
        };
        let db = DynamicDatabase::build(vec![triangle("a", 0.5)], too_many);
        assert!(matches!(
            db.exact_scan(&q, &params).unwrap_err(),
            DbError::InvalidShardConfig(_)
        ));
    }

    #[test]
    fn sharded_open_is_lazy_and_answers_match() {
        let config = EngineConfig {
            shards: 3,
            ..EngineConfig::default()
        };
        let graphs = vec![
            triangle("a", 0.9),
            triangle("b", 0.4),
            triangle("c", 0.7),
            triangle("d", 0.2),
        ];
        let built = DynamicDatabase::build(graphs.clone(), config);
        let path =
            std::env::temp_dir().join(format!("pgs-core-sharded-{}.pmi", std::process::id()));
        built.save_index(&path).unwrap();
        let opened = DynamicDatabase::open(graphs, &path, config).unwrap();
        // The snapshot header pairing validates without touching any segment.
        assert_eq!(opened.engine().pmi().materialized_shards(), 0);
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        assert_eq!(
            opened.query(&q, &params).unwrap().answers,
            built.query(&q, &params).unwrap().answers
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn topk_facade_ranks_by_probability() {
        let mut db = ProbGraphDatabase::new();
        db.extend([triangle("a", 0.9), triangle("b", 0.4), triangle("c", 0.05)]);
        db.build_index();
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let top2 = db.query_topk(&q, 2, 0).unwrap();
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].name, "a");
        assert_eq!(top2[1].name, "b");

        let detailed = db
            .query_topk_detailed(
                &q,
                &TopkParams {
                    k: 2,
                    delta: 0,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        assert_eq!(detailed.ranked.len(), 2);
        assert_eq!(detailed.ranked[0].graph, 0);
        assert!(detailed.ranked[0].ssp >= detailed.ranked[1].ssp);

        // The dynamic facade agrees with the static one.
        let dynamic = DynamicDatabase::build(db.graphs().to_vec(), EngineConfig::default());
        let dyn_top = dynamic
            .query_topk(
                &q,
                &TopkParams {
                    k: 2,
                    delta: 0,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        assert_eq!(
            dyn_top.ranked.iter().map(|r| r.graph).collect::<Vec<_>>(),
            vec![0, 1]
        );

        // Batch answers are byte-identical to solo answers.
        let batch = db
            .query_topk_batch(
                std::slice::from_ref(&q),
                &TopkParams {
                    k: 2,
                    delta: 0,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        assert_eq!(batch.results.len(), 1);
        assert_eq!(batch.results[0].ranked, detailed.ranked);
        let dyn_batch = dynamic
            .query_topk_batch(
                std::slice::from_ref(&q),
                &TopkParams {
                    k: 2,
                    delta: 0,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        assert_eq!(dyn_batch.results[0].ranked, detailed.ranked);
    }

    #[test]
    fn topk_facade_surfaces_typed_errors() {
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        let unindexed = ProbGraphDatabase::new();
        assert_eq!(
            unindexed.query_topk(&q, 1, 0).unwrap_err(),
            DbError::IndexNotBuilt
        );

        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("a", 0.5));
        db.build_index();
        let err = db.query_topk(&q, 0, 0).unwrap_err();
        assert!(matches!(err, DbError::InvalidK(_)));
        assert!(err.to_string().contains("top-k"));
        let params = TopkParams {
            k: 0,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        assert!(matches!(
            db.query_topk_detailed(&q, &params).unwrap_err(),
            DbError::InvalidK(_)
        ));
        assert!(matches!(
            db.query_topk_batch(std::slice::from_ref(&q), &params)
                .unwrap_err(),
            DbError::InvalidK(_)
        ));
        let empty = Graph::new();
        assert_eq!(
            db.query_topk(&empty, 1, 0).unwrap_err(),
            DbError::EmptyQuery
        );

        let dynamic = DynamicDatabase::build(vec![triangle("a", 0.5)], EngineConfig::default());
        assert!(matches!(
            dynamic.query_topk(&q, &params).unwrap_err(),
            DbError::InvalidK(_)
        ));
        assert!(matches!(
            dynamic
                .query_topk_batch(std::slice::from_ref(&q), &params)
                .unwrap_err(),
            DbError::InvalidK(_)
        ));
    }

    #[test]
    fn dynamic_database_from_parts_validates() {
        let graphs = vec![triangle("a", 0.9), triangle("b", 0.4)];
        let db = DynamicDatabase::build(graphs.clone(), EngineConfig::default());
        let pmi = db.engine().pmi().clone();
        assert!(
            DynamicDatabase::from_parts(graphs.clone(), pmi.clone(), EngineConfig::default())
                .is_ok()
        );
        let err = DynamicDatabase::from_parts(graphs[..1].to_vec(), pmi, EngineConfig::default())
            .unwrap_err();
        assert!(matches!(err, DbError::IndexMismatch(_)));
    }
}
