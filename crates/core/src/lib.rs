//! # pgs-core — probabilistic subgraph similarity search
//!
//! The public facade of the workspace: a batteries-included
//! [`ProbGraphDatabase`] that stores probabilistic graphs, builds the
//! Probabilistic Matrix Index (PMI) and answers **threshold-based probabilistic
//! subgraph similarity queries (T-PS)** as defined by Yuan, Wang, Chen and Wang,
//! *"Efficient Subgraph Similarity Search on Large Probabilistic Graph
//! Databases"*, VLDB 2012.
//!
//! ```
//! use pgs_core::prelude::*;
//!
//! // Build two tiny probabilistic graphs (a triangle and a path) and query them.
//! let mut db = ProbGraphDatabase::new();
//! for (name, edges) in [("triangle", vec![(0, 1), (1, 2), (0, 2)]), ("path", vec![(0, 1), (1, 2)])] {
//!     let mut builder = GraphBuilder::new().name(name).vertices(&[0, 0, 0]);
//!     for &(u, v) in &edges {
//!         builder = builder.edge(u, v, 0);
//!     }
//!     let skeleton = builder.build();
//!     let probs = vec![0.9; skeleton.edge_count()];
//!     db.insert(ProbabilisticGraph::independent(skeleton, &probs).unwrap());
//! }
//! db.build_index();
//!
//! let query = GraphBuilder::new().vertices(&[0, 0, 0]).edge(0, 1, 0).edge(1, 2, 0).build();
//! let matches = db.query(&query, 0.5, 0).unwrap();
//! assert_eq!(matches.len(), 2); // both graphs contain a 2-edge path with high probability
//! ```
//!
//! The lower-level building blocks (graph model, probabilistic model, PMI,
//! pruning, verification, dataset generation) are re-exported from the
//! sub-crates for users who need finer control.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use pgs_graph::model::Graph;
use pgs_prob::model::ProbabilisticGraph;
use pgs_query::pipeline::{
    BatchResult, EngineConfig, PruningVariant, QueryEngine, QueryParams, QueryResult,
};
use std::fmt;

pub use pgs_datagen as datagen;
pub use pgs_graph as graph;
pub use pgs_index as index;
pub use pgs_prob as prob;
pub use pgs_query as query;

/// Convenience prelude with the types most applications need.
pub mod prelude {
    pub use crate::{DbError, ProbGraphDatabase, QueryMatch};
    pub use pgs_datagen::ppi::{generate_ppi_dataset, PpiDatasetConfig};
    pub use pgs_datagen::scenarios::{paper_scale, DatasetScale};
    pub use pgs_graph::model::{EdgeId, Graph, GraphBuilder, Label, VertexId};
    pub use pgs_prob::jpt::JointProbTable;
    pub use pgs_prob::model::ProbabilisticGraph;
    pub use pgs_query::pipeline::{
        BatchResult, EngineConfig, PruningVariant, QueryParams, QueryResult,
    };
}

/// Errors surfaced by the facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// `query` was called before `build_index`.
    IndexNotBuilt,
    /// The query graph is empty.
    EmptyQuery,
    /// The probability threshold is outside `(0, 1]`.
    InvalidThreshold,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::IndexNotBuilt => write!(f, "the PMI has not been built; call build_index()"),
            DbError::EmptyQuery => write!(f, "the query graph has no edges"),
            DbError::InvalidThreshold => {
                write!(f, "the probability threshold must lie in (0, 1]")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// One query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMatch {
    /// Index of the matching graph in the database (insertion order).
    pub graph_index: usize,
    /// Name of the matching graph.
    pub name: String,
}

/// A database of probabilistic graphs supporting T-PS queries.
#[derive(Debug, Clone, Default)]
pub struct ProbGraphDatabase {
    graphs: Vec<ProbabilisticGraph>,
    config: EngineConfig,
    engine: Option<QueryEngine>,
}

impl ProbGraphDatabase {
    /// Creates an empty database with the default engine configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with a custom engine configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        ProbGraphDatabase {
            graphs: Vec::new(),
            config,
            engine: None,
        }
    }

    /// Inserts a probabilistic graph and returns its index.  Invalidates any
    /// previously built index.
    pub fn insert(&mut self, graph: ProbabilisticGraph) -> usize {
        self.engine = None;
        self.graphs.push(graph);
        self.graphs.len() - 1
    }

    /// Inserts many graphs at once.
    pub fn extend(&mut self, graphs: impl IntoIterator<Item = ProbabilisticGraph>) {
        self.engine = None;
        self.graphs.extend(graphs);
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The stored graph at `index`.
    pub fn graph(&self, index: usize) -> Option<&ProbabilisticGraph> {
        self.graphs.get(index)
    }

    /// All stored graphs.
    pub fn graphs(&self) -> &[ProbabilisticGraph] {
        &self.graphs
    }

    /// Builds (or rebuilds) the PMI over the current contents.
    pub fn build_index(&mut self) {
        self.engine = Some(QueryEngine::build(self.graphs.clone(), self.config));
    }

    /// True once the index has been built for the current contents.
    pub fn is_indexed(&self) -> bool {
        self.engine.is_some()
    }

    /// The underlying query engine (available after [`Self::build_index`]).
    pub fn engine(&self) -> Option<&QueryEngine> {
        self.engine.as_ref()
    }

    /// Answers a T-PS query: all graphs whose subgraph similarity probability
    /// to `query` under distance threshold `delta` is at least `epsilon`.
    pub fn query(
        &self,
        query: &Graph,
        epsilon: f64,
        delta: usize,
    ) -> Result<Vec<QueryMatch>, DbError> {
        let result = self.query_detailed(
            query,
            &QueryParams {
                epsilon,
                delta,
                variant: PruningVariant::OptSspBound,
            },
        )?;
        Ok(result
            .answers
            .iter()
            .map(|&gi| QueryMatch {
                graph_index: gi,
                name: self.graphs[gi].name().to_string(),
            })
            .collect())
    }

    /// Answers a T-PS query with full control over the parameters and access to
    /// the per-phase statistics.
    pub fn query_detailed(
        &self,
        query: &Graph,
        params: &QueryParams,
    ) -> Result<QueryResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        if query.edge_count() == 0 {
            return Err(DbError::EmptyQuery);
        }
        if !(params.epsilon > 0.0 && params.epsilon <= 1.0) {
            return Err(DbError::InvalidThreshold);
        }
        Ok(engine.query(query, params))
    }

    /// Answers a batch of T-PS queries in one call, amortising thread spawns
    /// across the workload (see `QueryEngine::query_batch`).  Every result is
    /// byte-identical to a standalone [`Self::query_detailed`] call with the
    /// same parameters.
    pub fn query_batch(
        &self,
        queries: &[Graph],
        params: &QueryParams,
    ) -> Result<BatchResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        if queries.iter().any(|q| q.edge_count() == 0) {
            return Err(DbError::EmptyQuery);
        }
        if !(params.epsilon > 0.0 && params.epsilon <= 1.0) {
            return Err(DbError::InvalidThreshold);
        }
        Ok(engine.query_batch(queries, params))
    }

    /// The `Exact` baseline: scans the whole database computing the SSP of
    /// every graph (no index involvement beyond holding the data).
    pub fn exact_scan(&self, query: &Graph, params: &QueryParams) -> Result<QueryResult, DbError> {
        let engine = self.engine.as_ref().ok_or(DbError::IndexNotBuilt)?;
        if query.edge_count() == 0 {
            return Err(DbError::EmptyQuery);
        }
        Ok(engine.exact_scan(query, params))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn triangle(name: &str, p: f64) -> ProbabilisticGraph {
        let g = GraphBuilder::new()
            .name(name)
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        ProbabilisticGraph::independent(g, &[p, p, p]).unwrap()
    }

    #[test]
    fn insert_build_query_roundtrip() {
        let mut db = ProbGraphDatabase::new();
        assert!(db.is_empty());
        db.insert(triangle("strong", 0.95));
        db.insert(triangle("weak", 0.1));
        assert_eq!(db.len(), 2);
        assert!(!db.is_indexed());
        db.build_index();
        assert!(db.is_indexed());

        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        // The strong triangle has SSP = 0.95^3 ≈ 0.857 at δ = 0; the weak one 0.001.
        let matches = db.query(&q, 0.5, 0).unwrap();
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].name, "strong");
        assert_eq!(matches[0].graph_index, 0);
    }

    #[test]
    fn query_before_index_errors() {
        let db = ProbGraphDatabase::new();
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        assert_eq!(db.query(&q, 0.5, 0).unwrap_err(), DbError::IndexNotBuilt);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("a", 0.5));
        db.build_index();
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        assert_eq!(db.query(&q, 0.0, 0).unwrap_err(), DbError::InvalidThreshold);
        assert_eq!(db.query(&q, 1.5, 0).unwrap_err(), DbError::InvalidThreshold);
        let empty = Graph::new();
        assert_eq!(db.query(&empty, 0.5, 0).unwrap_err(), DbError::EmptyQuery);
    }

    #[test]
    fn inserting_invalidates_the_index() {
        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("a", 0.9));
        db.build_index();
        assert!(db.is_indexed());
        db.insert(triangle("b", 0.9));
        assert!(!db.is_indexed());
        db.build_index();
        assert_eq!(db.engine().unwrap().pmi().graph_count(), 2);
    }

    #[test]
    fn detailed_query_and_exact_scan_agree() {
        let mut db = ProbGraphDatabase::new();
        db.extend([triangle("a", 0.9), triangle("b", 0.4), triangle("c", 0.05)]);
        db.build_index();
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        let fast = db.query_detailed(&q, &params).unwrap();
        let exact = db.exact_scan(&q, &params).unwrap();
        assert_eq!(fast.answers, exact.answers);
        assert!(fast.stats.structural_candidates <= db.len());
    }

    #[test]
    fn query_batch_agrees_with_individual_queries() {
        let mut db = ProbGraphDatabase::new();
        db.extend([triangle("a", 0.9), triangle("b", 0.4), triangle("c", 0.05)]);
        db.build_index();
        let q1 = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let q2 = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 0,
            variant: PruningVariant::OptSspBound,
        };
        let batch = db.query_batch(&[q1.clone(), q2.clone()], &params).unwrap();
        assert_eq!(batch.results.len(), 2);
        for (q, r) in [q1, q2].iter().zip(&batch.results) {
            assert_eq!(r.answers, db.query_detailed(q, &params).unwrap().answers);
        }
        // Batch-level validation mirrors the single-query path.
        let empty = Graph::new();
        assert_eq!(
            db.query_batch(&[empty], &params).unwrap_err(),
            DbError::EmptyQuery
        );
        assert_eq!(
            ProbGraphDatabase::new()
                .query_batch(&[], &params)
                .unwrap_err(),
            DbError::IndexNotBuilt
        );
    }

    #[test]
    fn graph_accessors() {
        let mut db = ProbGraphDatabase::new();
        db.insert(triangle("only", 0.7));
        assert_eq!(db.graph(0).unwrap().name(), "only");
        assert!(db.graph(1).is_none());
        assert_eq!(db.graphs().len(), 1);
    }

    #[test]
    fn error_display() {
        assert!(DbError::IndexNotBuilt.to_string().contains("build_index"));
        assert!(DbError::EmptyQuery.to_string().contains("no edges"));
        assert!(DbError::InvalidThreshold.to_string().contains("(0, 1]"));
    }
}
