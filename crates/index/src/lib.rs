//! # pgs-index — the Probabilistic Matrix Index (PMI)
//!
//! Section 4 of the paper: the PMI is a feature × graph matrix whose entries
//! are tight lower/upper bounds of the subgraph-isomorphism probability (SIP)
//! `Pr(f ⊆iso g)`.  This crate implements
//!
//! * feature selection (Algorithm 4; frequency with the disjoint-embedding
//!   ratio `α`, discriminativity `γ`, size cap `maxL`) in [`feature`],
//! * the SIP bounds of Section 4.1 — lower bound from disjoint embeddings,
//!   upper bound from disjoint minimal embedding cuts, both tightened with a
//!   maximum-weight-clique search — in [`sip_bounds`],
//! * PMI construction, lookup, statistics and text serialization in [`pmi`],
//! * the S-Index — per-graph structural summaries plus an inverted
//!   edge-signature posting list, the sublinear candidate generator of the
//!   structural query phase — in [`sindex`],
//! * the column-sparse cell storage shared by the in-memory index and the
//!   on-disk snapshot in [`storage`],
//! * the versioned binary snapshot format behind `Pmi::save` / `Pmi::load`
//!   in [`snapshot`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod feature;
pub mod pmi;
pub mod shard;
pub mod sindex;
pub mod sip_bounds;
pub mod snapshot;
pub mod storage;

pub use feature::{select_features, select_features_summarized, Feature, FeatureSelectionParams};
pub use pmi::{graph_salt, Pmi, PmiBuildParams, PmiStats};
pub use shard::{shard_of, MAX_SHARDS};
pub use sindex::{FilterOutcome, PostingEntry, StructuralIndex};
pub use sip_bounds::{sip_bounds, BoundsConfig, DisjointnessRule, SipBounds};
pub use snapshot::{params_fingerprint, SnapshotError, FORMAT_V1, FORMAT_V2, FORMAT_VERSION};
pub use storage::SparseMatrix;
