//! Feature selection (Algorithm 4).
//!
//! The PMI indexes a small set of *frequent* and *discriminative* features.
//! Section 4.2 spells out the two selection rules:
//!
//! * **Rule 1** — prefer features with many *disjoint* embeddings: the
//!   frequency of a feature only counts database graphs in which the ratio of
//!   disjoint embeddings to all embeddings is at least `α`, and a feature is
//!   frequent iff that frequency is at least `β`.
//! * **Rule 2** — prefer small features: candidate generation is capped at
//!   `maxL` vertices.
//!
//! On top of that, gIndex-style discriminativity controls the feature count.
//! The paper writes `dis(f) = |∩ {D_{f'} : f' ⊂ f, f' ∈ F}| / |D_f| > γ`; since
//! `D_f ⊆ D_{f'}` for every sub-feature, that ratio is always ≥ 1 and a
//! threshold in the paper's sweep range (0.05–0.25) would never reject
//! anything, contradicting the decreasing index size of Figure 12(d).  We
//! therefore use the equivalent *shrinkage* form
//! `dis(f) = 1 − |D_f| / |∩ D_{f'}|` (the fraction of the sub-features'
//! candidates that indexing `f` eliminates) and keep a feature iff
//! `dis(f) > γ`, which preserves the intent (larger γ ⇒ fewer, more
//! discriminative features) and reproduces the figure's shape.  Recorded as a
//! substitution in DESIGN.md §3.

use pgs_graph::embeddings::disjoint_embedding_count;
use pgs_graph::mining::{mine_frequent_patterns_summarized, MiningOptions};
use pgs_graph::model::Graph;
use pgs_graph::summary::{StructuralSummary, SummaryView};
use pgs_graph::vf2::{contains_subgraph, enumerate_embeddings_summarized, MatchOptions};

/// One indexed feature.
#[derive(Debug, Clone)]
pub struct Feature {
    /// Position of the feature in the PMI (row index).
    pub id: usize,
    /// The feature graph.
    pub graph: Graph,
    /// Indices of the database graphs whose skeleton contains the feature.
    pub support: Vec<usize>,
    /// Frequency after the α filter (fraction of the database).
    pub frequency: f64,
    /// Discriminativity score at selection time (1.0 when the feature has no
    /// indexed sub-feature).
    pub discriminativity: f64,
}

impl Feature {
    /// Number of edges of the feature graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Parameters of Algorithm 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureSelectionParams {
    /// Maximum feature size in vertices (the paper's `maxL`).
    pub max_l: usize,
    /// Minimum ratio of disjoint embeddings among all embeddings (`α`).
    pub alpha: f64,
    /// Minimum frequency (`β`, fraction of the database).
    pub beta: f64,
    /// Discriminativity threshold (`γ`).
    pub gamma: f64,
    /// Hard cap on the number of selected features.
    pub max_features: usize,
    /// Cap on embeddings enumerated per (feature, graph) when computing the
    /// disjoint-embedding ratio.
    pub max_embeddings: usize,
}

impl Default for FeatureSelectionParams {
    fn default() -> Self {
        // The paper's defaults are {α, β, γ} = 0.15 and maxL = 150 vertices on
        // 385-vertex graphs; scaled to the synthetic datasets the defaults here
        // keep features at most 4 vertices.
        FeatureSelectionParams {
            max_l: 4,
            alpha: 0.15,
            beta: 0.15,
            gamma: 0.15,
            max_features: 48,
            max_embeddings: 24,
        }
    }
}

/// Selects PMI features from the deterministic skeletons `db`.
///
/// Follows Algorithm 4: start from single edges, grow level-wise up to `maxL`
/// vertices (delegated to the pattern miner), then keep the features that pass
/// the frequency-with-α filter and the discriminativity filter.
pub fn select_features(db: &[Graph], params: &FeatureSelectionParams) -> Vec<Feature> {
    let summaries: Vec<StructuralSummary> = db.iter().map(StructuralSummary::of).collect();
    let views: Vec<SummaryView<'_>> = summaries.iter().map(StructuralSummary::view).collect();
    select_features_summarized(db, &views, params)
}

/// [`select_features`] with cached per-graph summary views (one per database
/// skeleton, in order).  `Pmi::build` passes the S-Index summaries straight
/// through, so neither the miner's support recount nor the α-filter's
/// embedding enumeration reallocates a data-graph histogram.
pub fn select_features_summarized(
    db: &[Graph],
    summaries: &[SummaryView<'_>],
    params: &FeatureSelectionParams,
) -> Vec<Feature> {
    assert_eq!(db.len(), summaries.len(), "one summary per database graph");
    if db.is_empty() {
        return Vec::new();
    }
    let min_support = ((params.beta * db.len() as f64).ceil() as usize).max(1);
    let mining = MiningOptions {
        min_support,
        max_vertices: params.max_l.max(2),
        max_edges: params.max_l.max(2) + 1,
        max_patterns_per_level: params.max_features.max(8) * 4,
        max_embeddings_per_graph: params.max_embeddings,
    };
    let mut patterns = mine_frequent_patterns_summarized(db, summaries, &mining);
    // Rule 2: process small features first so discriminativity is evaluated
    // against already-indexed sub-features.
    patterns.sort_by_key(|p| (p.graph.edge_count(), std::cmp::Reverse(p.support_count())));

    let mut features: Vec<Feature> = Vec::new();
    for pattern in patterns {
        if features.len() >= params.max_features {
            break;
        }
        // Rule 1: α-filtered support — only count graphs where the ratio of
        // disjoint embeddings is at least α.
        let pattern_summary = StructuralSummary::of(&pattern.graph);
        let mut alpha_support: Vec<usize> = Vec::new();
        for &gi in &pattern.support {
            let outcome = enumerate_embeddings_summarized(
                &pattern.graph,
                pattern_summary.view(),
                &db[gi],
                summaries[gi],
                MatchOptions::capped(params.max_embeddings),
            );
            if outcome.embeddings.is_empty() {
                continue;
            }
            let disjoint = disjoint_embedding_count(&outcome.embeddings);
            let ratio = disjoint as f64 / outcome.embeddings.len() as f64;
            if ratio >= params.alpha {
                alpha_support.push(gi);
            }
        }
        let frequency = alpha_support.len() as f64 / db.len() as f64;
        if frequency < params.beta {
            continue;
        }
        // Discriminativity against already-selected sub-features.
        let discriminativity = discriminativity(&pattern.graph, &alpha_support, &features);
        if pattern.graph.edge_count() > 1 && discriminativity + 1e-12 < params.gamma {
            continue;
        }
        features.push(Feature {
            id: features.len(),
            graph: pattern.graph,
            support: alpha_support,
            frequency,
            discriminativity,
        });
    }
    features
}

/// Shrinkage discriminativity: `1 − |D_f| / |∩ {D_{f'} : f' ⊆iso f}|` over the
/// already selected sub-features; 1.0 when no selected feature is a subgraph of
/// `f` (a brand-new structure is maximally discriminative), 0.0 for an empty
/// support.
fn discriminativity(graph: &Graph, support: &[usize], selected: &[Feature]) -> f64 {
    if support.is_empty() {
        return 0.0;
    }
    let sub_features: Vec<&Feature> = selected
        .iter()
        .filter(|f| f.graph.edge_count() < graph.edge_count() && contains_subgraph(&f.graph, graph))
        .collect();
    if sub_features.is_empty() {
        return 1.0;
    }
    // Intersection of the sub-features' support lists.
    let mut intersection: Vec<usize> = sub_features[0].support.clone();
    for f in &sub_features[1..] {
        intersection.retain(|gi| f.support.contains(gi));
    }
    if intersection.is_empty() {
        return 1.0;
    }
    (1.0 - support.len() as f64 / intersection.len() as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::GraphBuilder;

    /// Six small graphs: all contain an a-b edge; four contain the a-b-c path;
    /// two contain a triangle a-b-c.
    fn db() -> Vec<Graph> {
        let edge = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        let path = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let tri = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        vec![edge.clone(), edge, path.clone(), path, tri.clone(), tri]
    }

    #[test]
    fn frequent_small_features_are_selected_first() {
        let feats = select_features(&db(), &FeatureSelectionParams::default());
        assert!(!feats.is_empty());
        // The single a-b edge is the most frequent feature and must be indexed.
        assert!(feats
            .iter()
            .any(|f| f.graph.edge_count() == 1 && f.support.len() == 6));
        // Features are small (Rule 2).
        assert!(feats.iter().all(|f| f.graph.vertex_count() <= 4));
        // Ids are dense row indices.
        for (i, f) in feats.iter().enumerate() {
            assert_eq!(f.id, i);
        }
    }

    #[test]
    fn beta_controls_the_feature_count() {
        let low = select_features(
            &db(),
            &FeatureSelectionParams {
                beta: 0.1,
                gamma: 0.0,
                ..FeatureSelectionParams::default()
            },
        );
        let high = select_features(
            &db(),
            &FeatureSelectionParams {
                beta: 0.9,
                gamma: 0.0,
                ..FeatureSelectionParams::default()
            },
        );
        assert!(
            low.len() >= high.len(),
            "raising β must not increase the number of features ({} vs {})",
            low.len(),
            high.len()
        );
        // β = 0.9 keeps only features present in ≥ 90% of graphs: the a-b edge.
        assert_eq!(high.len(), 1);
    }

    #[test]
    fn gamma_prunes_redundant_features() {
        // With γ close to 1 only features that substantially shrink the
        // candidate list of their sub-features survive.
        let strict = select_features(
            &db(),
            &FeatureSelectionParams {
                gamma: 0.99,
                beta: 0.15,
                ..FeatureSelectionParams::default()
            },
        );
        let lax = select_features(
            &db(),
            &FeatureSelectionParams {
                gamma: 0.0,
                beta: 0.15,
                ..FeatureSelectionParams::default()
            },
        );
        assert!(strict.len() <= lax.len());
        // With γ = 0.99 only single-edge features survive (the path shrinks the
        // edge feature's 6-graph list to 4, i.e. dis = 1 − 4/6 ≈ 0.33 < 0.99);
        // with γ = 0 the larger features stay.
        assert!(strict.iter().all(|f| f.graph.edge_count() == 1));
        assert!(lax.iter().any(|f| f.graph.edge_count() >= 2));
    }

    #[test]
    fn max_features_cap_is_respected() {
        let feats = select_features(
            &db(),
            &FeatureSelectionParams {
                max_features: 2,
                ..FeatureSelectionParams::default()
            },
        );
        assert!(feats.len() <= 2);
    }

    #[test]
    fn support_lists_are_correct() {
        let feats = select_features(&db(), &FeatureSelectionParams::default());
        let database = db();
        for f in &feats {
            for &gi in &f.support {
                assert!(contains_subgraph(&f.graph, &database[gi]));
            }
            assert!((f.frequency - f.support.len() as f64 / database.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_database() {
        assert!(select_features(&[], &FeatureSelectionParams::default()).is_empty());
    }

    #[test]
    fn alpha_filter_drops_overlap_heavy_graphs() {
        // A star graph: all embeddings of the 2-edge path share the centre, so
        // many embeddings overlap pairwise; with α = 1.0 the path feature's
        // support on the star drops out, with α = 0 it stays.
        let star = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .edge(0, 3, 0)
            .build();
        let db = vec![star.clone(), star];
        let strict = select_features(
            &db,
            &FeatureSelectionParams {
                alpha: 1.0,
                beta: 0.5,
                gamma: 0.0,
                ..FeatureSelectionParams::default()
            },
        );
        let lax = select_features(
            &db,
            &FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.5,
                gamma: 0.0,
                ..FeatureSelectionParams::default()
            },
        );
        let has_path = |fs: &[Feature]| fs.iter().any(|f| f.graph.edge_count() == 2);
        assert!(has_path(&lax));
        assert!(!has_path(&strict));
    }
}
