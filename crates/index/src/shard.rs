//! Stable shard assignment for the sharded PMI.
//!
//! A sharded index partitions the database into `S` shards, each owning its
//! own PMI columns, S-Index postings, per-shard support lists and staleness
//! counter.  The assignment is a pure function of the graph's *content salt*
//! ([`crate::pmi::graph_salt`]) — never of its database position — so
//! insertion order and churn can never move a graph between shards, appends
//! and removals touch exactly one shard's column storage, and a sharded
//! engine answers byte-identically to the unsharded one (the per-candidate
//! RNG seeds are salt-derived too, so they do not see the shard layout at
//! all).
//!
//! Shard membership is therefore *derivable*: given the salt list and the
//! shard count, `members(s) = [g | shard_of(salt[g], S) == s]` in global
//! order.  The v3 snapshot codec exploits this — it stores the salts once in
//! the eager header and never persists membership tables.

use pgs_graph::arena::FlatVecVec;
use pgs_graph::parallel::mix64;

/// Upper limit on [`shard_of`]'s `shard_count` (and on
/// `EngineConfig::shards`).  Far above any sensible configuration — shards
/// beyond the worker count only fragment the index — but low enough that a
/// corrupt or hostile shard count cannot make the engine allocate absurd
/// per-shard state.
pub const MAX_SHARDS: usize = 64;

/// Salt folded into the hash so shard assignment is independent of every
/// other consumer of the content salts (RNG seeding, snapshot pairing).
const SHARD_SALT: u64 = 0x7368_6172_6421_9e37; // "shard!"

/// The owning shard of a graph with content salt `salt` under `shard_count`
/// shards: `mix64(salt ^ SHARD_SALT) % shard_count`.  Pure and stable —
/// the same `(salt, shard_count)` pair maps to the same shard forever.
///
/// # Panics
///
/// Panics if `shard_count` is zero (the engine validates its configuration
/// before any assignment happens).
pub fn shard_of(salt: u64, shard_count: usize) -> usize {
    assert!(shard_count > 0, "shard_of: shard_count must be positive");
    (mix64(salt ^ SHARD_SALT) % shard_count as u64) as usize
}

/// Derives the per-shard member lists (global graph ids, ascending) for a
/// salt list — the inverse the snapshot codec and the engine share.  Packed
/// as one flat offsets+values table (row `s` = shard `s`'s members) via a
/// counting sort: two passes, two allocations, no per-shard Vecs.
pub fn members_of(salts: &[u64], shard_count: usize) -> FlatVecVec<u32> {
    let mut counts = vec![0u32; shard_count];
    for &salt in salts {
        counts[shard_of(salt, shard_count)] += 1;
    }
    let mut offsets = Vec::with_capacity(shard_count + 1);
    offsets.push(0u32);
    let mut running = 0u32;
    for &c in &counts {
        running += c;
        offsets.push(running);
    }
    let mut cursor: Vec<u32> = offsets[..shard_count].to_vec();
    let mut values = vec![0u32; salts.len()];
    for (g, &salt) in salts.iter().enumerate() {
        let s = shard_of(salt, shard_count);
        values[cursor[s] as usize] = g as u32;
        cursor[s] += 1;
    }
    // pgs-lint: allow(panic-in-library, offsets come from a prefix sum over the same values, always monotone)
    FlatVecVec::from_raw(offsets, values).expect("prefix-sum offsets are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_stable_and_in_range() {
        for salt in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for shards in [1usize, 2, 3, 8, MAX_SHARDS] {
                let s = shard_of(salt, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(salt, shards), "pure function");
            }
            assert_eq!(shard_of(salt, 1), 0);
        }
    }

    #[test]
    fn members_partition_the_database() {
        let salts: Vec<u64> = (0..100).map(|i| mix64(i * 37 + 5)).collect();
        for shards in [1usize, 3, 8] {
            let members = members_of(&salts, shards);
            assert_eq!(members.len(), shards);
            let mut all: Vec<u32> = members.values().to_vec();
            all.sort_unstable();
            assert_eq!(all, (0..100u32).collect::<Vec<_>>());
            for m in members.iter() {
                assert!(m.windows(2).all(|w| w[0] < w[1]), "ascending global ids");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard_count must be positive")]
    fn zero_shards_panic() {
        shard_of(7, 0);
    }
}
