//! Column-sparse storage of the PMI matrix.
//!
//! The matrix of Figure 4 is feature × graph, but most cells are empty: a
//! feature that does not embed in a graph's skeleton stores nothing (the
//! paper's `⟨0⟩`).  The original implementation kept a dense
//! `Vec<Vec<Option<SipBounds>>>`, paying 24 bytes per cell (the `Option`
//! discriminant padded to the alignment of two `f64`s) even for the empty
//! majority, and the reported index size ignored all of that overhead.
//!
//! [`SparseMatrix`] stores only the occupied cells in CSR-style column
//! compression, one *graph column* at a time:
//!
//! * `offsets[g] .. offsets[g + 1]` — the entry range of graph `g`,
//! * `feature_ids[i]` — the row (feature id) of entry `i`, strictly
//!   increasing within a column,
//! * `lowers[i]` / `uppers[i]` — the SIP bounds of entry `i`.
//!
//! The layout is shared by the in-memory index and the on-disk snapshot
//! (`snapshot.rs` writes the three arrays verbatim), so loading an index never
//! re-shapes the matrix, and [`SparseMatrix::payload_bytes`] *is* the real
//! storage cost — the number the paper's Figure 12(d) calls "index size".
//!
//! Columns can be appended and removed in place, which is what the incremental
//! [`crate::pmi::Pmi::append_graph`] / [`crate::pmi::Pmi::remove_graph`] path
//! builds on: an insert touches only the new column; a remove splices one
//! entry range out and shifts the offsets after it.

use crate::sip_bounds::SipBounds;

/// A feature × graph matrix of SIP bounds, stored column-sparse (one column
/// per database graph, only occupied cells materialised).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseMatrix {
    /// `offsets.len() == column_count() + 1`; `offsets[0] == 0`.
    offsets: Vec<usize>,
    /// Feature (row) id of each entry, strictly increasing within a column.
    feature_ids: Vec<u32>,
    /// Lower SIP bound of each entry.
    lowers: Vec<f64>,
    /// Upper SIP bound of each entry.
    uppers: Vec<f64>,
}

impl SparseMatrix {
    /// Creates an empty matrix with zero columns.
    pub fn new() -> SparseMatrix {
        SparseMatrix {
            offsets: vec![0],
            ..SparseMatrix::default()
        }
    }

    /// Builds the matrix from per-graph dense rows (`rows[g][f]`), the shape
    /// the parallel matrix fill produces.
    pub fn from_dense(rows: &[Vec<Option<SipBounds>>]) -> SparseMatrix {
        let mut m = SparseMatrix::new();
        for row in rows {
            m.push_column(
                row.iter()
                    .enumerate()
                    .filter_map(|(fi, cell)| cell.map(|b| (fi, b))),
            );
        }
        m
    }

    /// Number of graph columns.
    pub fn column_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of occupied cells.
    pub fn entry_count(&self) -> usize {
        self.feature_ids.len()
    }

    /// Appends one graph column.  `entries` must yield `(feature id, bounds)`
    /// pairs with strictly increasing feature ids (the natural order of a
    /// row scan).
    pub fn push_column(&mut self, entries: impl IntoIterator<Item = (usize, SipBounds)>) {
        for (fi, b) in entries {
            debug_assert!(
                // pgs-lint: allow(panic-in-library, debug_assert-only check; from_raw guarantees offsets is non-empty)
                self.feature_ids.len() == *self.offsets.last().expect("offsets never empty")
                    || (self.feature_ids.last().copied().unwrap_or(0) as usize) < fi,
                "feature ids must be strictly increasing within a column"
            );
            self.feature_ids.push(fi as u32);
            self.lowers.push(b.lower);
            self.uppers.push(b.upper);
        }
        self.offsets.push(self.feature_ids.len());
    }

    /// Removes graph column `g`, shifting every later column down by one.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn remove_column(&mut self, g: usize) {
        assert!(g < self.column_count(), "column {g} out of range");
        let (start, end) = (self.offsets[g], self.offsets[g + 1]);
        let width = end - start;
        self.feature_ids.drain(start..end);
        self.lowers.drain(start..end);
        self.uppers.drain(start..end);
        self.offsets.remove(g + 1);
        for o in &mut self.offsets[g + 1..] {
            *o -= width;
        }
    }

    /// The bounds stored for `(graph g, feature f)`, or `None` for an empty
    /// cell or out-of-range column (binary search within the column).
    pub fn get(&self, g: usize, f: usize) -> Option<SipBounds> {
        if g >= self.column_count() {
            return None;
        }
        let range = self.offsets[g]..self.offsets[g + 1];
        let ids = &self.feature_ids[range.clone()];
        let i = ids.binary_search(&(f as u32)).ok()?;
        let i = range.start + i;
        Some(SipBounds {
            lower: self.lowers[i],
            upper: self.uppers[i],
        })
    }

    /// Iterates the occupied `(feature id, bounds)` entries of column `g` (the
    /// paper's `D_g`); empty for out-of-range columns.
    pub fn column(&self, g: usize) -> impl Iterator<Item = (usize, SipBounds)> + '_ {
        let range = if g < self.column_count() {
            self.offsets[g]..self.offsets[g + 1]
        } else {
            0..0
        };
        range.map(move |i| {
            (
                self.feature_ids[i] as usize,
                SipBounds {
                    lower: self.lowers[i],
                    upper: self.uppers[i],
                },
            )
        })
    }

    /// The real storage cost of the matrix in bytes: the offset array plus the
    /// three entry arrays, exactly what the on-disk snapshot writes for the
    /// matrix section (offsets as `u64`, ids as `u32`, bounds as two `f64`).
    pub fn payload_bytes(&self) -> usize {
        self.offsets.len() * 8 + self.entry_count() * (4 + 8 + 8)
    }

    /// The raw offsets array (snapshot encoding).
    pub(crate) fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw feature-id array (snapshot encoding).
    pub(crate) fn feature_ids(&self) -> &[u32] {
        &self.feature_ids
    }

    /// The raw lower-bound array (snapshot encoding).
    pub(crate) fn lowers(&self) -> &[f64] {
        &self.lowers
    }

    /// The raw upper-bound array (snapshot encoding).
    pub(crate) fn uppers(&self) -> &[f64] {
        &self.uppers
    }

    /// Rebuilds the matrix from its raw arrays (snapshot decoding), validating
    /// the CSR invariants.
    pub(crate) fn from_raw(
        offsets: Vec<usize>,
        feature_ids: Vec<u32>,
        lowers: Vec<f64>,
        uppers: Vec<f64>,
    ) -> Result<SparseMatrix, String> {
        if offsets.first() != Some(&0) {
            return Err("offset array must start at 0".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset array must be non-decreasing".into());
        }
        if offsets.last() != Some(&feature_ids.len()) {
            return Err("final offset must equal the entry count".into());
        }
        if feature_ids.len() != lowers.len() || lowers.len() != uppers.len() {
            return Err("entry arrays must have equal lengths".into());
        }
        for w in offsets.windows(2) {
            let col = &feature_ids[w[0]..w[1]];
            if col.windows(2).any(|p| p[0] >= p[1]) {
                return Err("feature ids must be strictly increasing within a column".into());
            }
        }
        Ok(SparseMatrix {
            offsets,
            feature_ids,
            lowers,
            uppers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lower: f64, upper: f64) -> SipBounds {
        SipBounds { lower, upper }
    }

    fn sample() -> SparseMatrix {
        let mut m = SparseMatrix::new();
        m.push_column(vec![(0, b(0.1, 0.2)), (2, b(0.3, 0.4))]);
        m.push_column(vec![]);
        m.push_column(vec![(1, b(0.5, 0.6))]);
        m
    }

    #[test]
    fn push_and_get() {
        let m = sample();
        assert_eq!(m.column_count(), 3);
        assert_eq!(m.entry_count(), 3);
        assert_eq!(m.get(0, 0), Some(b(0.1, 0.2)));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(0, 2), Some(b(0.3, 0.4)));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.get(2, 1), Some(b(0.5, 0.6)));
        assert_eq!(m.get(3, 0), None, "out-of-range column is empty");
    }

    #[test]
    fn column_iterates_dg() {
        let m = sample();
        let dg: Vec<_> = m.column(0).collect();
        assert_eq!(dg, vec![(0, b(0.1, 0.2)), (2, b(0.3, 0.4))]);
        assert_eq!(m.column(1).count(), 0);
        assert_eq!(m.column(99).count(), 0);
    }

    #[test]
    fn remove_middle_column_shifts_later_ones() {
        let mut m = sample();
        m.remove_column(0);
        assert_eq!(m.column_count(), 2);
        assert_eq!(m.entry_count(), 1);
        assert_eq!(m.get(0, 0), None); // was the empty column
        assert_eq!(m.get(1, 1), Some(b(0.5, 0.6)));
    }

    #[test]
    fn remove_all_columns() {
        let mut m = sample();
        m.remove_column(2);
        m.remove_column(1);
        m.remove_column(0);
        assert_eq!(m.column_count(), 0);
        assert_eq!(m.entry_count(), 0);
        assert_eq!(m, SparseMatrix::new());
    }

    #[test]
    fn from_dense_round_trip() {
        let rows = vec![
            vec![Some(b(0.1, 0.2)), None, Some(b(0.3, 0.4))],
            vec![None, None, None],
            vec![None, Some(b(0.5, 0.6)), None],
        ];
        let m = SparseMatrix::from_dense(&rows);
        for (g, row) in rows.iter().enumerate() {
            for (f, cell) in row.iter().enumerate() {
                assert_eq!(m.get(g, f), *cell, "cell ({g}, {f})");
            }
        }
        assert_eq!(m, sample());
    }

    #[test]
    fn payload_bytes_counts_the_arrays() {
        let m = sample();
        // 4 offsets × 8 + 3 entries × (4 + 8 + 8).
        assert_eq!(m.payload_bytes(), 4 * 8 + 3 * 20);
        assert_eq!(SparseMatrix::new().payload_bytes(), 8);
    }

    #[test]
    fn from_raw_validates_invariants() {
        assert!(SparseMatrix::from_raw(vec![0, 1], vec![0], vec![0.1], vec![0.2]).is_ok());
        assert!(SparseMatrix::from_raw(vec![1, 1], vec![], vec![], vec![]).is_err());
        assert!(
            SparseMatrix::from_raw(vec![0, 2, 1], vec![0, 1], vec![0.0; 2], vec![0.0; 2]).is_err()
        );
        assert!(
            SparseMatrix::from_raw(vec![0, 1], vec![0, 1], vec![0.0; 2], vec![0.0; 2]).is_err()
        );
        assert!(
            SparseMatrix::from_raw(vec![0, 2], vec![1, 1], vec![0.0; 2], vec![0.0; 2]).is_err()
        );
        assert!(SparseMatrix::from_raw(vec![0, 1], vec![0], vec![0.1], vec![]).is_err());
    }
}
