//! The Probabilistic Matrix Index (PMI).
//!
//! One column per database graph, one row per feature; each cell stores the
//! SIP bounds `⟨LowerB(f), UpperB(f)⟩` of the feature in that graph, or nothing
//! when the feature is not even a subgraph of the skeleton (the paper writes
//! `⟨0⟩` for that case).  Figure 4 shows the layout for the Figure 1 database.
//!
//! Construction mines/selects features (Algorithm 4), then fills the matrix
//! with [`crate::sip_bounds::sip_bounds`], parallelised over database graphs
//! on the persistent worker pool.  The occupied cells live in the column-sparse
//! [`SparseMatrix`] (see [`crate::storage`]), which is also the on-disk layout:
//! [`Pmi::save`] / [`Pmi::load`] snapshot the index through the versioned
//! binary codec of [`crate::snapshot`], so a process can build once and load
//! many times without re-paying the mining + bound cost.
//!
//! The index is also *incremental*: [`Pmi::append_graph`] computes the SIP
//! bounds of a new graph against the existing feature set and pushes one
//! column; [`Pmi::remove_graph`] drops one.  Both keep the per-graph content
//! salts aligned with the columns and bump a churn counter — once enough of
//! the database has turned over ([`Pmi::staleness`]), the mined feature set no
//! longer reflects the data and a full re-mine is recommended.
//!
//! The index records the statistics the paper's Figure 12(c)/(d) report:
//! build time and index size ([`PmiStats`]; `size_bytes` is the exact payload
//! size of the snapshot, not an estimate).

use crate::feature::{select_features_summarized, Feature, FeatureSelectionParams};
use crate::sindex::StructuralIndex;
use crate::sip_bounds::{sip_bounds, BoundsConfig, SipBounds};
use crate::snapshot::{self, SnapshotError};
use crate::storage::SparseMatrix;
use pgs_graph::embeddings::disjoint_embedding_count;
use pgs_graph::model::Graph;
use pgs_graph::parallel::{derive_seed, par_map_chunked_costed, CostHint};
use pgs_graph::summary::StructuralSummary;
use pgs_graph::vf2::{contains_subgraph_summarized, enumerate_embeddings_summarized, MatchOptions};
use pgs_prob::model::ProbabilisticGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

/// Build parameters of the PMI.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PmiBuildParams {
    /// Feature selection parameters (Algorithm 4).
    pub features: FeatureSelectionParams,
    /// SIP bound computation parameters (Section 4.1).
    pub bounds: BoundsConfig,
    /// Number of worker threads for the matrix fill (0 = automatic).
    pub threads: usize,
    /// RNG seed for the Monte-Carlo estimators.
    pub seed: u64,
}

/// Statistics recorded while building the index (Figure 12(c)/(d)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmiStats {
    /// Number of indexed features (rows).
    pub feature_count: usize,
    /// Number of database graphs (columns).
    pub graph_count: usize,
    /// Number of non-empty cells (feature occurs in the graph skeleton).
    pub occupied_cells: usize,
    /// Wall-clock seconds spent building the index.
    pub build_seconds: f64,
    /// Exact index size in bytes: the payload (features, sparse matrix, graph
    /// salts) of the on-disk snapshot.  A saved snapshot file is exactly this
    /// many bytes plus a small fixed header.
    pub size_bytes: usize,
}

/// Content hash of a probabilistic graph: skeleton structure, name and the
/// marginal presence probability of every edge.  Two byte-identical graphs
/// collide (and therefore sample identically), which is exactly the behaviour
/// the determinism guarantee wants.  The PMI stores one salt per column so
/// that a loaded snapshot can be checked against the database it is paired
/// with, and the query engine derives its per-candidate RNG seeds from them.
pub fn graph_salt(pg: &ProbabilisticGraph) -> u64 {
    let mut salts = vec![pg.skeleton().structural_hash()];
    salts.push(pg.name().len() as u64);
    salts.extend(pg.name().bytes().map(u64::from));
    salts.extend((0..pg.edge_count()).map(|e| {
        pg.edge_presence_prob(pgs_graph::model::EdgeId(e as u32))
            .to_bits()
    }));
    derive_seed(&salts)
}

/// The probabilistic matrix index.
#[derive(Debug, Clone)]
pub struct Pmi {
    features: Vec<Feature>,
    /// Occupied cells, column-sparse: `matrix.get(graph, feature)`.
    matrix: SparseMatrix,
    /// One content salt per column, aligned with the database the index was
    /// built from (see [`graph_salt`]).
    graph_salts: Vec<u64>,
    /// The parameters the index was built with; incremental column appends
    /// reuse the bounds configuration and seed so an appended column is
    /// byte-identical to the column a fresh build would produce.
    params: PmiBuildParams,
    build_seconds: f64,
    /// Columns appended/removed since the features were last mined.
    churn: usize,
    /// The S-Index: per-graph structural summaries + signature posting lists
    /// (see [`crate::sindex`]).  Always present for a freshly built or
    /// incrementally maintained index; `None` only for an index decoded from
    /// a format-v1 snapshot, which predates the S-Index — the query engine
    /// rebuilds it from the database skeletons in that case
    /// ([`Pmi::ensure_sindex`]).
    sindex: Option<StructuralIndex>,
    /// One cached [`StructuralSummary`] per feature, row-aligned with
    /// `features`.  Derived (never persisted): features only change at
    /// build/decode time, so caching here keeps [`Pmi::append_graph`] from
    /// re-summarising every feature on every append.
    feature_summaries: Vec<StructuralSummary>,
}

impl Pmi {
    /// Builds the PMI for a database of probabilistic graphs (including the
    /// S-Index: every per-graph structural summary is computed exactly once
    /// here and then shared by feature mining, the matrix fill and the
    /// structural query phase).
    pub fn build(db: &[ProbabilisticGraph], params: &PmiBuildParams) -> Pmi {
        let start = Instant::now();
        let skeletons: Vec<Graph> = db.iter().map(|g| g.skeleton().clone()).collect();
        let sindex = StructuralIndex::build(&skeletons);
        let features = select_features_summarized(&skeletons, sindex.summaries(), &params.features);
        let feature_summaries: Vec<StructuralSummary> = features
            .iter()
            .map(|f| StructuralSummary::of(&f.graph))
            .collect();
        let rows = fill_matrix(
            db,
            &features,
            &feature_summaries,
            sindex.summaries(),
            params,
        );
        Pmi {
            features,
            matrix: SparseMatrix::from_dense(&rows),
            graph_salts: db.iter().map(graph_salt).collect(),
            params: *params,
            build_seconds: start.elapsed().as_secs_f64(),
            churn: 0,
            sindex: Some(sindex),
            feature_summaries,
        }
    }

    /// The indexed features (row order).
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of database graphs the index covers.
    pub fn graph_count(&self) -> usize {
        self.matrix.column_count()
    }

    /// The parameters the index was built with.
    pub fn build_params(&self) -> &PmiBuildParams {
        &self.params
    }

    /// The per-column content salts (one per database graph, in column order).
    pub fn graph_salts(&self) -> &[u64] {
        &self.graph_salts
    }

    /// The S-Index, or `None` when the index was decoded from a pre-S-Index
    /// (format v1) snapshot and has not been
    /// [re-derived](Pmi::ensure_sindex) yet.
    pub fn sindex(&self) -> Option<&StructuralIndex> {
        self.sindex.as_ref()
    }

    /// Rebuilds the S-Index from the database skeletons when it is missing
    /// (the v1-snapshot migration path).  A no-op when the S-Index is already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if `skeletons` does not have exactly one entry per PMI column —
    /// callers must pair the index with its own database first (the engine
    /// checks the content salts before calling this).
    pub fn ensure_sindex(&mut self, skeletons: &[Graph]) {
        assert_eq!(
            skeletons.len(),
            self.graph_count(),
            "ensure_sindex: {} skeletons for {} PMI columns",
            skeletons.len(),
            self.graph_count()
        );
        if self.sindex.is_none() {
            self.sindex = Some(StructuralIndex::build(skeletons));
        }
    }

    /// The SIP bounds of `feature` in `graph`, or `None` when the feature does
    /// not occur in the graph skeleton.
    pub fn bounds(&self, graph: usize, feature: usize) -> Option<SipBounds> {
        self.matrix.get(graph, feature)
    }

    /// All non-empty `(feature index, bounds)` entries of one graph column —
    /// the paper's `D_g`.
    pub fn graph_entries(&self, graph: usize) -> Vec<(usize, SipBounds)> {
        self.matrix.column(graph).collect()
    }

    /// Build statistics.  `size_bytes` is the exact snapshot payload size
    /// (including the S-Index section when present); `build_seconds` is the
    /// wall-clock time of the original [`Pmi::build`] (preserved across
    /// save/load, not counting incremental appends).
    pub fn stats(&self) -> PmiStats {
        PmiStats {
            feature_count: self.features.len(),
            graph_count: self.matrix.column_count(),
            occupied_cells: self.matrix.entry_count(),
            build_seconds: self.build_seconds,
            size_bytes: snapshot::payload_len(
                &self.graph_salts,
                &self.features,
                &self.matrix,
                self.sindex.as_ref(),
            ),
        }
    }

    // -- incremental maintenance -------------------------------------------

    /// Appends one graph column: computes the SIP bounds of every existing
    /// feature in `pg` (no feature re-mining) and pushes the column, its
    /// content salt and the α-filtered support-list updates.
    ///
    /// The column is byte-identical to the one a fresh [`Pmi::build`] over the
    /// extended database would produce *for the same feature set*: the
    /// per-column RNG is seeded from the build seed and the graph's content
    /// hash, never from the column position.
    pub fn append_graph(&mut self, pg: &ProbabilisticGraph) {
        let skeleton_summary = StructuralSummary::of(pg.skeleton());
        let column = compute_column(
            pg,
            &self.features,
            &self.feature_summaries,
            &skeleton_summary,
            &self.params,
        );
        let new_index = self.matrix.column_count();
        self.matrix.push_column(
            column
                .iter()
                .enumerate()
                .filter_map(|(fi, c)| c.map(|b| (fi, b))),
        );
        self.graph_salts.push(graph_salt(pg));
        let fp = self.params.features;
        for (f, fs) in self.features.iter_mut().zip(&self.feature_summaries) {
            if column[f.id].is_some()
                && alpha_supports(&f.graph, fs, pg.skeleton(), &skeleton_summary, &fp)
            {
                f.support.push(new_index);
            }
        }
        if let Some(sindex) = &mut self.sindex {
            sindex.append_summary(skeleton_summary);
        }
        self.refresh_frequencies();
        self.churn += 1;
    }

    /// Removes graph column `index`, shifting every later column down by one
    /// (mirroring `Vec::remove` on the database side).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_graph(&mut self, index: usize) {
        assert!(
            index < self.graph_count(),
            "remove_graph: column {index} out of range ({} columns)",
            self.graph_count()
        );
        self.matrix.remove_column(index);
        self.graph_salts.remove(index);
        if let Some(sindex) = &mut self.sindex {
            sindex.remove(index);
        }
        for f in &mut self.features {
            f.support.retain(|&gi| gi != index);
            for gi in &mut f.support {
                if *gi > index {
                    *gi -= 1;
                }
            }
        }
        self.refresh_frequencies();
        self.churn += 1;
    }

    /// Number of incremental column mutations since the features were last
    /// mined (reset by [`Pmi::build`] and by loading a freshly-built
    /// snapshot).
    pub fn churn(&self) -> usize {
        self.churn
    }

    /// Staleness of the mined feature set: mutations since the last full
    /// mining, as a fraction of the current database size.  `0.0` right after
    /// a build; beyond ~`0.5` the features were mined from a database that
    /// shares little with the current one and a re-mine (full rebuild) is
    /// recommended — the bounds stay *correct* regardless (they are computed
    /// per column), only their pruning power degrades.
    pub fn staleness(&self) -> f64 {
        self.churn as f64 / self.graph_count().max(1) as f64
    }

    // -- persistence --------------------------------------------------------

    /// Serializes the index to the versioned binary snapshot format (see
    /// [`crate::snapshot`]); borrows everything, no index copy is made.
    /// Writes format v2 (with the S-Index section); an index decoded from a
    /// v1 snapshot whose S-Index was never re-derived falls back to writing
    /// v1 again — it has no summaries to persist.
    pub fn to_bytes(&self) -> Vec<u8> {
        let version = if self.sindex.is_some() {
            snapshot::FORMAT_VERSION
        } else {
            snapshot::FORMAT_V1
        };
        self.to_bytes_versioned(version)
            .expect("current/v1 versions are always encodable")
    }

    /// Serializes the index at an explicit format version: the current
    /// version 2, or version 1 for readers that predate the S-Index (the
    /// downgrade path; the v1 reader rebuilds the summaries from its own
    /// database skeletons).
    pub fn to_bytes_versioned(&self, version: u32) -> Result<Vec<u8>, SnapshotError> {
        snapshot::encode(
            &snapshot::PmiPartsRef {
                params: &self.params,
                build_seconds: self.build_seconds,
                churn: self.churn,
                graph_salts: &self.graph_salts,
                features: &self.features,
                matrix: &self.matrix,
                sindex: self.sindex.as_ref(),
            },
            version,
        )
    }

    /// Deserializes an index from snapshot bytes (format v1 or v2; a v1 index
    /// carries no S-Index — pair it with its database via
    /// `QueryEngine::from_parts`, which re-derives the summaries).
    pub fn from_bytes(bytes: &[u8]) -> Result<Pmi, SnapshotError> {
        let parts = snapshot::decode(bytes)?;
        if parts.matrix.column_count() != parts.graph_salts.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} matrix columns but {} graph salts",
                parts.matrix.column_count(),
                parts.graph_salts.len()
            )));
        }
        // (`decode` already guarantees a v2 S-Index section has exactly one
        // summary per graph salt.)
        let feature_summaries = parts
            .features
            .iter()
            .map(|f| StructuralSummary::of(&f.graph))
            .collect();
        Ok(Pmi {
            features: parts.features,
            matrix: parts.matrix,
            graph_salts: parts.graph_salts,
            params: parts.params,
            build_seconds: parts.build_seconds,
            churn: parts.churn,
            sindex: parts.sindex,
            feature_summaries,
        })
    }

    /// Saves the index to `path`.  The file round-trips bit-exactly:
    /// [`Pmi::load`] yields an index with identical bounds, features, salts
    /// and statistics, and therefore byte-identical query answers.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        snapshot::write_file(path.as_ref(), &self.to_bytes())
    }

    /// Loads an index previously written by [`Pmi::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Pmi, SnapshotError> {
        Pmi::from_bytes(&snapshot::read_file(path.as_ref())?)
    }

    /// Serializes the index to a plain-text form (one line per occupied cell).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "pmi features={} graphs={}",
            self.features.len(),
            self.graph_count()
        )
        .expect("writing to String cannot fail");
        for f in &self.features {
            writeln!(
                out,
                "feature {} edges={} frequency={:.4}",
                f.id,
                f.graph.edge_count(),
                f.frequency
            )
            .expect("writing to String cannot fail");
        }
        for gi in 0..self.graph_count() {
            for (fi, b) in self.matrix.column(gi) {
                writeln!(out, "cell {gi} {fi} {:.6} {:.6}", b.lower, b.upper)
                    .expect("writing to String cannot fail");
            }
        }
        out
    }

    fn refresh_frequencies(&mut self) {
        let n = self.graph_count().max(1) as f64;
        for f in &mut self.features {
            f.frequency = f.support.len() as f64 / n;
        }
    }
}

/// Fills the feature × graph matrix, parallelised over graphs with the shared
/// [`pgs_graph::parallel`] chunking helper.
///
/// Each row gets its own RNG seeded from the build seed and the *content* hash
/// of the graph skeleton (not the chunk offset), so any Monte-Carlo estimates
/// inside the bound computation are byte-identical regardless of thread count
/// and of where the graph sits in the database.
fn fill_matrix(
    db: &[ProbabilisticGraph],
    features: &[Feature],
    feature_summaries: &[StructuralSummary],
    skeleton_summaries: &[StructuralSummary],
    params: &PmiBuildParams,
) -> Vec<Vec<Option<SipBounds>>> {
    // A column runs VF2 containment and bound computations over every
    // feature — far beyond the dispatch floor, so two graphs already justify
    // fanning out to the pool.
    par_map_chunked_costed(db, params.threads, CostHint::HEAVY, |gi, pg| {
        compute_column(
            pg,
            features,
            feature_summaries,
            &skeleton_summaries[gi],
            params,
        )
    })
}

/// One graph column of the matrix; shared by the parallel build and the
/// incremental [`Pmi::append_graph`] so both produce identical cells.  The
/// cached summaries (one per feature, one for the skeleton) keep the
/// per-feature containment prefilter allocation-free.
fn compute_column(
    pg: &ProbabilisticGraph,
    features: &[Feature],
    feature_summaries: &[StructuralSummary],
    skeleton_summary: &StructuralSummary,
    params: &PmiBuildParams,
) -> Vec<Option<SipBounds>> {
    let mut rng =
        StdRng::seed_from_u64(derive_seed(&[params.seed, pg.skeleton().structural_hash()]));
    features
        .iter()
        .zip(feature_summaries)
        .map(|(f, fs)| {
            if contains_subgraph_summarized(&f.graph, fs, pg.skeleton(), skeleton_summary) {
                Some(sip_bounds(pg, &f.graph, &params.bounds, &mut rng))
            } else {
                None
            }
        })
        .collect()
}

/// The α filter of Algorithm 4 for one `(feature, skeleton)` pair: true when
/// the ratio of disjoint embeddings among all (capped) embeddings reaches
/// `α`.  Used by [`Pmi::append_graph`] to keep the support lists consistent
/// with what a fresh selection run would record.
fn alpha_supports(
    feature: &Graph,
    feature_summary: &StructuralSummary,
    skeleton: &Graph,
    skeleton_summary: &StructuralSummary,
    fp: &FeatureSelectionParams,
) -> bool {
    let outcome = enumerate_embeddings_summarized(
        feature,
        feature_summary,
        skeleton,
        skeleton_summary,
        MatchOptions::capped(fp.max_embeddings),
    );
    if outcome.embeddings.is_empty() {
        return false;
    }
    let disjoint = disjoint_embedding_count(&outcome.embeddings);
    disjoint as f64 / outcome.embeddings.len() as f64 >= fp.alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_graph::vf2::{contains_subgraph, enumerate_embeddings, MatchOptions};
    use pgs_prob::exact::exact_sip;
    use pgs_prob::jpt::JointProbTable;

    /// A 3-graph database mirroring Figure 1/Figure 4: graph 001 (triangle
    /// a-b-d), graph 002 (the 5-edge graph) and a third graph without any a-b
    /// edge so some cells stay empty.
    fn database() -> Vec<ProbabilisticGraph> {
        let g001 = GraphBuilder::new()
            .name("001")
            .vertices(&[0, 1, 3])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build();
        let t001 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.6), (EdgeId(1), 0.5), (EdgeId(2), 0.7)])
                .unwrap();
        let pg001 = ProbabilisticGraph::new(g001, vec![t001], true).unwrap();

        let g002 = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        let pg002 = ProbabilisticGraph::new(g002, vec![t1, t2], true).unwrap();

        let g003 = GraphBuilder::new()
            .name("003")
            .vertices(&[3, 3, 3])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let t003 = JointProbTable::from_max_rule(&[(EdgeId(0), 0.9), (EdgeId(1), 0.2)]).unwrap();
        let pg003 = ProbabilisticGraph::new(g003, vec![t003], true).unwrap();

        vec![pg001, pg002, pg003]
    }

    fn params() -> PmiBuildParams {
        PmiBuildParams {
            features: FeatureSelectionParams {
                beta: 0.3,
                gamma: 0.0,
                alpha: 0.0,
                max_l: 3,
                max_features: 16,
                max_embeddings: 16,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 7,
        }
    }

    #[test]
    fn build_produces_a_consistent_matrix() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        assert!(pmi.features().len() >= 2);
        assert_eq!(pmi.graph_count(), 3);
        let stats = pmi.stats();
        assert_eq!(stats.graph_count, 3);
        assert_eq!(stats.feature_count, pmi.features().len());
        assert!(stats.occupied_cells > 0);
        assert!(stats.size_bytes > 0);
        assert!(stats.build_seconds >= 0.0);
        // Cells are present exactly when the feature embeds in the skeleton.
        for (gi, pg) in db.iter().enumerate() {
            for f in pmi.features() {
                let expect = contains_subgraph(&f.graph, pg.skeleton());
                assert_eq!(pmi.bounds(gi, f.id).is_some(), expect);
                if let Some(b) = pmi.bounds(gi, f.id) {
                    assert!(b.is_valid());
                }
            }
        }
        // Salts line up with the database contents.
        assert_eq!(pmi.graph_salts().len(), 3);
        for (s, pg) in pmi.graph_salts().iter().zip(&db) {
            assert_eq!(*s, graph_salt(pg));
        }
        assert_eq!(pmi.churn(), 0);
        assert_eq!(pmi.staleness(), 0.0);
    }

    #[test]
    fn every_cell_brackets_the_exact_sip() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        for (gi, pg) in db.iter().enumerate() {
            for f in pmi.features() {
                if let Some(b) = pmi.bounds(gi, f.id) {
                    let outcome =
                        enumerate_embeddings(&f.graph, pg.skeleton(), MatchOptions::default());
                    let sets: Vec<_> = outcome.embeddings.iter().map(|e| e.edges.clone()).collect();
                    let exact = exact_sip(pg, &sets).unwrap();
                    assert!(
                        b.lower <= exact + 1e-9 && exact <= b.upper + 1e-9,
                        "graph {gi} feature {}: [{}, {}] vs exact {exact}",
                        f.id,
                        b.lower,
                        b.upper
                    );
                }
            }
        }
    }

    #[test]
    fn graph_entries_return_dg() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let dg = pmi.graph_entries(1); // graph 002 contains every frequent feature
        assert!(!dg.is_empty());
        for (fi, b) in &dg {
            assert_eq!(pmi.bounds(1, *fi), Some(*b));
        }
        // Out-of-range graph index yields an empty Dg.
        assert!(pmi.graph_entries(99).is_empty());
        assert_eq!(pmi.bounds(99, 0), None);
    }

    #[test]
    fn single_threaded_and_multi_threaded_builds_agree() {
        let db = database();
        let mut p1 = params();
        p1.threads = 1;
        let mut p2 = params();
        p2.threads = 3;
        let a = Pmi::build(&db, &p1);
        let b = Pmi::build(&db, &p2);
        assert_eq!(a.features().len(), b.features().len());
        for gi in 0..db.len() {
            for fi in 0..a.features().len() {
                match (a.bounds(gi, fi), b.bounds(gi, fi)) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        // Bounds are computed exactly (no sampling) under the
                        // default config, so they must agree bit-for-bit.
                        assert!((x.lower - y.lower).abs() < 1e-12);
                        assert!((x.upper - y.upper).abs() < 1e-12);
                    }
                    other => panic!("occupancy mismatch at ({gi},{fi}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn text_serialization_mentions_every_occupied_cell() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let text = pmi.to_text();
        assert!(text.starts_with("pmi features="));
        let cell_lines = text.lines().filter(|l| l.starts_with("cell ")).count();
        assert_eq!(cell_lines, pmi.stats().occupied_cells);
    }

    #[test]
    fn empty_database_builds_an_empty_index() {
        let pmi = Pmi::build(&[], &PmiBuildParams::default());
        assert_eq!(pmi.graph_count(), 0);
        assert_eq!(pmi.features().len(), 0);
        assert_eq!(pmi.stats().occupied_cells, 0);
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let back = Pmi::from_bytes(&pmi.to_bytes()).unwrap();
        assert_eq!(back.stats(), pmi.stats());
        assert_eq!(back.graph_salts(), pmi.graph_salts());
        assert_eq!(back.build_params(), pmi.build_params());
        for gi in 0..db.len() {
            assert_eq!(back.graph_entries(gi), pmi.graph_entries(gi));
        }
        for (a, b) in back.features().iter().zip(pmi.features()) {
            assert_eq!(a.graph, b.graph);
            assert_eq!(a.support, b.support);
            assert_eq!(a.frequency, b.frequency);
            assert_eq!(a.discriminativity, b.discriminativity);
        }
        assert_eq!(back.to_text(), pmi.to_text());
    }

    #[test]
    fn save_and_load_via_file() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let path = std::env::temp_dir().join(format!("pgs-pmi-unit-{}.pmi", std::process::id()));
        pmi.save(&path).unwrap();
        let loaded = Pmi::load(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.stats(), pmi.stats());
        // The reported index size is the file size minus the fixed header.
        assert!(file_len > pmi.stats().size_bytes);
        assert!(file_len - pmi.stats().size_bytes < 256);
    }

    #[test]
    fn load_of_missing_file_is_an_io_error() {
        let err = Pmi::load("/nonexistent/definitely/missing.pmi").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn append_then_remove_restores_the_original_matrix() {
        let db = database();
        let full = Pmi::build(&db, &params());
        let mut pmi = Pmi::build(&db, &params());
        pmi.remove_graph(2);
        assert_eq!(pmi.graph_count(), 2);
        assert_eq!(pmi.churn(), 1);
        // Supports no longer mention the removed column.
        for f in pmi.features() {
            assert!(f.support.iter().all(|&gi| gi < 2));
        }
        pmi.append_graph(&db[2]);
        assert_eq!(pmi.graph_count(), 3);
        assert_eq!(pmi.churn(), 2);
        assert!(pmi.staleness() > 0.0);
        // The re-appended column is byte-identical to the fresh build's.
        for gi in 0..3 {
            assert_eq!(pmi.graph_entries(gi), full.graph_entries(gi));
        }
        assert_eq!(pmi.graph_salts(), full.graph_salts());
        for (a, b) in pmi.features().iter().zip(full.features()) {
            assert_eq!(a.support, b.support, "support of feature {}", a.id);
            assert!((a.frequency - b.frequency).abs() < 1e-12);
        }
    }

    #[test]
    fn sindex_tracks_mutations_and_survives_snapshots() {
        let db = database();
        let full = Pmi::build(&db, &params());
        assert_eq!(full.sindex().expect("fresh build").graph_count(), 3);

        // Incremental maintenance mirrors a fresh build over the same state.
        let mut pmi = Pmi::build(&db, &params());
        pmi.remove_graph(1);
        pmi.append_graph(&db[1]);
        let reordered: Vec<Graph> = [0usize, 2, 1]
            .iter()
            .map(|&i| db[i].skeleton().clone())
            .collect();
        assert_eq!(pmi.sindex().unwrap(), &StructuralIndex::build(&reordered));

        // A v2 snapshot round-trips the S-Index bit-for-bit.
        let back = Pmi::from_bytes(&full.to_bytes()).unwrap();
        assert_eq!(back.sindex(), full.sindex());
        assert_eq!(back.stats(), full.stats());

        // A v1 snapshot drops it; ensure_sindex re-derives an identical one.
        let v1 = full.to_bytes_versioned(snapshot::FORMAT_V1).unwrap();
        let mut old = Pmi::from_bytes(&v1).unwrap();
        assert!(old.sindex().is_none());
        // A v1-loaded index re-saves as v1 (nothing to persist).
        assert_eq!(old.to_bytes(), v1);
        let skeletons: Vec<Graph> = db.iter().map(|g| g.skeleton().clone()).collect();
        old.ensure_sindex(&skeletons);
        assert_eq!(old.sindex(), full.sindex());
    }

    #[test]
    fn removing_a_middle_column_shifts_support_indices() {
        let db = database();
        let mut pmi = Pmi::build(&db, &params());
        let full = Pmi::build(&db, &params());
        pmi.remove_graph(0);
        assert_eq!(pmi.graph_count(), 2);
        // Old column 1 is now column 0, old column 2 is now column 1.
        for gi in 0..2 {
            assert_eq!(pmi.graph_entries(gi), full.graph_entries(gi + 1));
        }
        assert_eq!(pmi.graph_salts(), &full.graph_salts()[1..]);
        for f in pmi.features() {
            for &gi in &f.support {
                assert!(gi < 2);
            }
        }
    }
}
