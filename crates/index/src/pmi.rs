//! The Probabilistic Matrix Index (PMI).
//!
//! One column per database graph, one row per feature; each cell stores the
//! SIP bounds `⟨LowerB(f), UpperB(f)⟩` of the feature in that graph, or nothing
//! when the feature is not even a subgraph of the skeleton (the paper writes
//! `⟨0⟩` for that case).  Figure 4 shows the layout for the Figure 1 database.
//!
//! Construction mines/selects features (Algorithm 4), then fills the matrix
//! with [`crate::sip_bounds::sip_bounds`], parallelised over database graphs
//! with scoped threads.  The index also records the statistics the paper's
//! Figure 12(c)/(d) report: build time and index size.

use crate::feature::{select_features, Feature, FeatureSelectionParams};
use crate::sip_bounds::{sip_bounds, BoundsConfig, SipBounds};
use pgs_graph::model::Graph;
use pgs_graph::parallel::{derive_seed, par_map_chunked};
use pgs_graph::vf2::contains_subgraph;
use pgs_prob::model::ProbabilisticGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Build parameters of the PMI.
#[derive(Debug, Clone, Copy, Default)]
pub struct PmiBuildParams {
    /// Feature selection parameters (Algorithm 4).
    pub features: FeatureSelectionParams,
    /// SIP bound computation parameters (Section 4.1).
    pub bounds: BoundsConfig,
    /// Number of worker threads for the matrix fill (0 = automatic).
    pub threads: usize,
    /// RNG seed for the Monte-Carlo estimators.
    pub seed: u64,
}

/// Statistics recorded while building the index (Figure 12(c)/(d)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmiStats {
    /// Number of indexed features (rows).
    pub feature_count: usize,
    /// Number of database graphs (columns).
    pub graph_count: usize,
    /// Number of non-empty cells (feature occurs in the graph skeleton).
    pub occupied_cells: usize,
    /// Wall-clock seconds spent building the index.
    pub build_seconds: f64,
    /// Approximate index size in bytes (features + occupied cells).
    pub size_bytes: usize,
}

/// The probabilistic matrix index.
#[derive(Debug, Clone)]
pub struct Pmi {
    features: Vec<Feature>,
    /// `matrix[graph][feature]` — `None` when the feature is not a subgraph of
    /// the skeleton.
    matrix: Vec<Vec<Option<SipBounds>>>,
    stats: PmiStats,
}

impl Pmi {
    /// Builds the PMI for a database of probabilistic graphs.
    pub fn build(db: &[ProbabilisticGraph], params: &PmiBuildParams) -> Pmi {
        let start = Instant::now();
        let skeletons: Vec<Graph> = db.iter().map(|g| g.skeleton().clone()).collect();
        let features = select_features(&skeletons, &params.features);
        let matrix = fill_matrix(db, &features, params);
        let occupied = matrix
            .iter()
            .map(|row| row.iter().filter(|c| c.is_some()).count())
            .sum();
        let feature_bytes: usize = features
            .iter()
            .map(|f| 16 * f.graph.vertex_count() + 24 * f.graph.edge_count())
            .sum();
        let stats = PmiStats {
            feature_count: features.len(),
            graph_count: db.len(),
            occupied_cells: occupied,
            build_seconds: start.elapsed().as_secs_f64(),
            size_bytes: feature_bytes + occupied * std::mem::size_of::<SipBounds>(),
        };
        Pmi {
            features,
            matrix,
            stats,
        }
    }

    /// The indexed features (row order).
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of database graphs the index covers.
    pub fn graph_count(&self) -> usize {
        self.matrix.len()
    }

    /// The SIP bounds of `feature` in `graph`, or `None` when the feature does
    /// not occur in the graph skeleton.
    pub fn bounds(&self, graph: usize, feature: usize) -> Option<SipBounds> {
        self.matrix
            .get(graph)
            .and_then(|row| row.get(feature))
            .copied()
            .flatten()
    }

    /// All non-empty `(feature index, bounds)` entries of one graph column —
    /// the paper's `D_g`.
    pub fn graph_entries(&self, graph: usize) -> Vec<(usize, SipBounds)> {
        self.matrix
            .get(graph)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter_map(|(fi, cell)| cell.map(|b| (fi, b)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Build statistics.
    pub fn stats(&self) -> PmiStats {
        self.stats
    }

    /// Serializes the index to a plain-text form (one line per occupied cell).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "pmi features={} graphs={}",
            self.features.len(),
            self.matrix.len()
        )
        .expect("writing to String cannot fail");
        for f in &self.features {
            writeln!(
                out,
                "feature {} edges={} frequency={:.4}",
                f.id,
                f.graph.edge_count(),
                f.frequency
            )
            .expect("writing to String cannot fail");
        }
        for (gi, row) in self.matrix.iter().enumerate() {
            for (fi, cell) in row.iter().enumerate() {
                if let Some(b) = cell {
                    writeln!(out, "cell {gi} {fi} {:.6} {:.6}", b.lower, b.upper)
                        .expect("writing to String cannot fail");
                }
            }
        }
        out
    }
}

/// Fills the feature × graph matrix, parallelised over graphs with the shared
/// [`pgs_graph::parallel`] chunking helper.
///
/// Each row gets its own RNG seeded from the build seed and the *content* hash
/// of the graph skeleton (not the chunk offset), so any Monte-Carlo estimates
/// inside the bound computation are byte-identical regardless of thread count
/// and of where the graph sits in the database.
fn fill_matrix(
    db: &[ProbabilisticGraph],
    features: &[Feature],
    params: &PmiBuildParams,
) -> Vec<Vec<Option<SipBounds>>> {
    par_map_chunked(db, params.threads, |_, pg| {
        let mut rng =
            StdRng::seed_from_u64(derive_seed(&[params.seed, pg.skeleton().structural_hash()]));
        compute_row(pg, features, &params.bounds, &mut rng)
    })
}

fn compute_row(
    pg: &ProbabilisticGraph,
    features: &[Feature],
    bounds_config: &BoundsConfig,
    rng: &mut StdRng,
) -> Vec<Option<SipBounds>> {
    features
        .iter()
        .map(|f| {
            if contains_subgraph(&f.graph, pg.skeleton()) {
                Some(sip_bounds(pg, &f.graph, bounds_config, rng))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_graph::vf2::{enumerate_embeddings, MatchOptions};
    use pgs_prob::exact::exact_sip;
    use pgs_prob::jpt::JointProbTable;

    /// A 3-graph database mirroring Figure 1/Figure 4: graph 001 (triangle
    /// a-b-d), graph 002 (the 5-edge graph) and a third graph without any a-b
    /// edge so some cells stay empty.
    fn database() -> Vec<ProbabilisticGraph> {
        let g001 = GraphBuilder::new()
            .name("001")
            .vertices(&[0, 1, 3])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build();
        let t001 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.6), (EdgeId(1), 0.5), (EdgeId(2), 0.7)])
                .unwrap();
        let pg001 = ProbabilisticGraph::new(g001, vec![t001], true).unwrap();

        let g002 = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        let pg002 = ProbabilisticGraph::new(g002, vec![t1, t2], true).unwrap();

        let g003 = GraphBuilder::new()
            .name("003")
            .vertices(&[3, 3, 3])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let t003 = JointProbTable::from_max_rule(&[(EdgeId(0), 0.9), (EdgeId(1), 0.2)]).unwrap();
        let pg003 = ProbabilisticGraph::new(g003, vec![t003], true).unwrap();

        vec![pg001, pg002, pg003]
    }

    fn params() -> PmiBuildParams {
        PmiBuildParams {
            features: FeatureSelectionParams {
                beta: 0.3,
                gamma: 0.0,
                alpha: 0.0,
                max_l: 3,
                max_features: 16,
                max_embeddings: 16,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 7,
        }
    }

    #[test]
    fn build_produces_a_consistent_matrix() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        assert!(pmi.features().len() >= 2);
        assert_eq!(pmi.graph_count(), 3);
        let stats = pmi.stats();
        assert_eq!(stats.graph_count, 3);
        assert_eq!(stats.feature_count, pmi.features().len());
        assert!(stats.occupied_cells > 0);
        assert!(stats.size_bytes > 0);
        assert!(stats.build_seconds >= 0.0);
        // Cells are present exactly when the feature embeds in the skeleton.
        for (gi, pg) in db.iter().enumerate() {
            for f in pmi.features() {
                let expect = contains_subgraph(&f.graph, pg.skeleton());
                assert_eq!(pmi.bounds(gi, f.id).is_some(), expect);
                if let Some(b) = pmi.bounds(gi, f.id) {
                    assert!(b.is_valid());
                }
            }
        }
    }

    #[test]
    fn every_cell_brackets_the_exact_sip() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        for (gi, pg) in db.iter().enumerate() {
            for f in pmi.features() {
                if let Some(b) = pmi.bounds(gi, f.id) {
                    let outcome =
                        enumerate_embeddings(&f.graph, pg.skeleton(), MatchOptions::default());
                    let sets: Vec<_> = outcome.embeddings.iter().map(|e| e.edges.clone()).collect();
                    let exact = exact_sip(pg, &sets).unwrap();
                    assert!(
                        b.lower <= exact + 1e-9 && exact <= b.upper + 1e-9,
                        "graph {gi} feature {}: [{}, {}] vs exact {exact}",
                        f.id,
                        b.lower,
                        b.upper
                    );
                }
            }
        }
    }

    #[test]
    fn graph_entries_return_dg() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let dg = pmi.graph_entries(1); // graph 002 contains every frequent feature
        assert!(!dg.is_empty());
        for (fi, b) in &dg {
            assert_eq!(pmi.bounds(1, *fi), Some(*b));
        }
        // Out-of-range graph index yields an empty Dg.
        assert!(pmi.graph_entries(99).is_empty());
        assert_eq!(pmi.bounds(99, 0), None);
    }

    #[test]
    fn single_threaded_and_multi_threaded_builds_agree() {
        let db = database();
        let mut p1 = params();
        p1.threads = 1;
        let mut p2 = params();
        p2.threads = 3;
        let a = Pmi::build(&db, &p1);
        let b = Pmi::build(&db, &p2);
        assert_eq!(a.features().len(), b.features().len());
        for gi in 0..db.len() {
            for fi in 0..a.features().len() {
                match (a.bounds(gi, fi), b.bounds(gi, fi)) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        // Bounds are computed exactly (no sampling) under the
                        // default config, so they must agree bit-for-bit.
                        assert!((x.lower - y.lower).abs() < 1e-12);
                        assert!((x.upper - y.upper).abs() < 1e-12);
                    }
                    other => panic!("occupancy mismatch at ({gi},{fi}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn text_serialization_mentions_every_occupied_cell() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let text = pmi.to_text();
        assert!(text.starts_with("pmi features="));
        let cell_lines = text.lines().filter(|l| l.starts_with("cell ")).count();
        assert_eq!(cell_lines, pmi.stats().occupied_cells);
    }

    #[test]
    fn empty_database_builds_an_empty_index() {
        let pmi = Pmi::build(&[], &PmiBuildParams::default());
        assert_eq!(pmi.graph_count(), 0);
        assert_eq!(pmi.features().len(), 0);
        assert_eq!(pmi.stats().occupied_cells, 0);
    }
}
