//! The Probabilistic Matrix Index (PMI).
//!
//! One column per database graph, one row per feature; each cell stores the
//! SIP bounds `⟨LowerB(f), UpperB(f)⟩` of the feature in that graph, or nothing
//! when the feature is not even a subgraph of the skeleton (the paper writes
//! `⟨0⟩` for that case).  Figure 4 shows the layout for the Figure 1 database.
//!
//! Construction mines/selects features (Algorithm 4) globally, then fills the
//! matrix with [`crate::sip_bounds::sip_bounds`], parallelised over database
//! graphs on the persistent worker pool.
//!
//! # Shards
//!
//! The index is *sharded*: the database is partitioned into `S` shards by the
//! stable content-salt assignment of [`crate::shard`], and each shard owns its
//! own column storage ([`SparseMatrix`] over shard-local ids), per-feature
//! support lists, S-Index postings/summaries and churn counter.  Features and
//! every cell value are global — a graph's column depends only on the graph
//! and the feature set, never on the shard layout — so a sharded index
//! answers every lookup byte-identically to the 1-shard one; only the
//! physical grouping changes.  [`Pmi::build`] builds the classic 1-shard
//! index, [`Pmi::build_sharded`] picks the shard count.
//!
//! # Persistence
//!
//! [`Pmi::save`] / [`Pmi::load`] snapshot the index through the versioned
//! binary codec of [`crate::snapshot`] (format v3: an eagerly-readable head
//! plus one segment per shard).  [`Pmi::open`] reads only the head and
//! materializes each shard's segment lazily on first touch — open time is
//! O(shards + graphs), not O(bytes) — while `load` stays fully eager.
//! v1/v2 snapshots still load through the legacy path as a 1-shard index.
//!
//! # Incremental maintenance
//!
//! [`Pmi::append_graph`] computes the SIP bounds of a new graph against the
//! existing feature set and pushes one column; [`Pmi::remove_graph`] drops
//! one.  Both touch *only the owning shard's* segment — support lists are
//! shard-local, so removal no longer rewrites every feature's global support
//! list — and bump that shard's churn counter.  Once enough of a shard has
//! turned over ([`Pmi::staleness`] reports the worst shard), the mined
//! feature set no longer reflects the data and a full re-mine is recommended.
//!
//! The index records the statistics the paper's Figure 12(c)/(d) report:
//! build time and index size ([`PmiStats`]; `size_bytes` is the exact payload
//! size of the snapshot, not an estimate).

use crate::feature::{select_features_summarized, Feature, FeatureSelectionParams};
use crate::shard::{members_of, shard_of, MAX_SHARDS};
use crate::sindex::StructuralIndex;
use crate::sip_bounds::{sip_bounds, BoundsConfig, SipBounds};
use crate::snapshot::{self, SnapshotError};
use crate::storage::SparseMatrix;
use pgs_graph::arena::FlatVecVec;
use pgs_graph::embeddings::disjoint_embedding_count;
use pgs_graph::model::Graph;
use pgs_graph::parallel::{derive_seed, par_map_chunked_costed, CostHint};
use pgs_graph::summary::{StructuralSummary, SummaryView};
use pgs_graph::vf2::{contains_subgraph_summarized, enumerate_embeddings_summarized, MatchOptions};
use pgs_prob::model::ProbabilisticGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

/// Build parameters of the PMI.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PmiBuildParams {
    /// Feature selection parameters (Algorithm 4).
    pub features: FeatureSelectionParams,
    /// SIP bound computation parameters (Section 4.1).
    pub bounds: BoundsConfig,
    /// Number of worker threads for the matrix fill (0 = automatic).
    pub threads: usize,
    /// RNG seed for the Monte-Carlo estimators.
    pub seed: u64,
}

/// Statistics recorded while building the index (Figure 12(c)/(d)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmiStats {
    /// Number of indexed features (rows).
    pub feature_count: usize,
    /// Number of database graphs (columns).
    pub graph_count: usize,
    /// Number of non-empty cells (feature occurs in the graph skeleton).
    pub occupied_cells: usize,
    /// Wall-clock seconds spent building the index.
    pub build_seconds: f64,
    /// Exact index size in bytes: the payload (everything after the fixed
    /// prefix) of the on-disk snapshot.  A saved snapshot file is exactly
    /// this many bytes plus a small fixed header.
    pub size_bytes: usize,
}

/// Content hash of a probabilistic graph: skeleton structure, name and the
/// marginal presence probability of every edge.  Two byte-identical graphs
/// collide (and therefore sample identically), which is exactly the behaviour
/// the determinism guarantee wants.  The PMI stores one salt per column so
/// that a loaded snapshot can be checked against the database it is paired
/// with; the query engine derives its per-candidate RNG seeds from the salts,
/// and the shard assignment hashes them too — both are therefore independent
/// of where a graph sits in the database.
pub fn graph_salt(pg: &ProbabilisticGraph) -> u64 {
    let mut salts = vec![pg.skeleton().structural_hash()];
    salts.push(pg.name().len() as u64);
    salts.extend(pg.name().bytes().map(u64::from));
    salts.extend((0..pg.edge_count()).map(|e| {
        pg.edge_presence_prob(pgs_graph::model::EdgeId(e as u32))
            .to_bits()
    }));
    derive_seed(&salts)
}

/// One shard's physical state: its members' matrix columns (local ids),
/// per-feature local support lists and S-Index.
#[derive(Debug, Clone, PartialEq)]
struct ShardSegment {
    /// Occupied cells of this shard's members: `matrix.get(local, feature)`.
    matrix: SparseMatrix,
    /// Per feature (row) the local member ids (ascending) passing the α
    /// filter, packed into one flat offsets+values table.
    supports: FlatVecVec<u32>,
    /// Per-member structural summaries + signature posting lists.  `None`
    /// only inside a 1-shard index decoded from a format-v1 snapshot that has
    /// not been [re-derived](Pmi::ensure_sindex) yet.
    sindex: Option<StructuralIndex>,
}

/// Where a lazily-opened index finds its not-yet-materialized segments.
#[derive(Debug, Clone)]
struct LazySource {
    path: PathBuf,
    /// Per shard: absolute byte offset and length of its segment in the file
    /// (validated against the file size at open time).
    table: Vec<(u64, u64)>,
}

/// The probabilistic matrix index.
#[derive(Debug)]
pub struct Pmi {
    /// The mined features (row order).  Their `support` lists are empty: the
    /// per-shard segments hold the supports as local ids, and
    /// [`Pmi::feature_support`] reconstructs the global view on demand.
    features: Vec<Feature>,
    /// One content salt per database graph, in global (column) order.
    graph_salts: Vec<u64>,
    /// Global support-list sizes per feature (Σ over shards), kept eager so
    /// frequency refreshes never materialize foreign segments.
    support_counts: Vec<usize>,
    /// The parameters the index was built with; incremental column appends
    /// reuse the bounds configuration and seed so an appended column is
    /// byte-identical to the column a fresh build would produce.
    params: PmiBuildParams,
    build_seconds: f64,
    /// Per shard (row) the global graph ids it owns, ascending, packed into
    /// one flat offsets+values table.  Derived from the salts (never
    /// persisted) and kept eager.
    shard_members: FlatVecVec<u32>,
    /// Global graph id → (shard, local id).
    locator: Vec<(u32, u32)>,
    /// Per shard: columns appended/removed since the features were last
    /// mined.
    shard_churn: Vec<usize>,
    /// One segment per shard.  A lazily-opened index leaves these empty and
    /// fills each from `lazy` on first touch.
    segments: Vec<OnceLock<ShardSegment>>,
    /// `Some` only for an index created by [`Pmi::open`] on a v3 snapshot.
    lazy: Option<LazySource>,
    /// Whether the segments carry S-Indexes.  `false` only for an index
    /// decoded from a format-v1 snapshot (see [`Pmi::ensure_sindex`]).
    has_sindex: bool,
    /// One cached [`StructuralSummary`] per feature, row-aligned with
    /// `features`.  Derived (never persisted): features only change at
    /// build/decode time, so caching here keeps [`Pmi::append_graph`] from
    /// re-summarising every feature on every append.
    feature_summaries: Vec<StructuralSummary>,
}

impl Clone for Pmi {
    fn clone(&self) -> Pmi {
        Pmi {
            features: self.features.clone(),
            graph_salts: self.graph_salts.clone(),
            support_counts: self.support_counts.clone(),
            params: self.params,
            build_seconds: self.build_seconds,
            shard_members: self.shard_members.clone(),
            locator: self.locator.clone(),
            shard_churn: self.shard_churn.clone(),
            segments: self
                .segments
                .iter()
                .map(|s| {
                    let lock = OnceLock::new();
                    if let Some(seg) = s.get() {
                        let _ = lock.set(seg.clone());
                    }
                    lock
                })
                .collect(),
            lazy: self.lazy.clone(),
            has_sindex: self.has_sindex,
            feature_summaries: self.feature_summaries.clone(),
        }
    }
}

/// Wraps an already-materialized segment in its lock.
fn seg_lock(seg: ShardSegment) -> OnceLock<ShardSegment> {
    let lock = OnceLock::new();
    let _ = lock.set(seg);
    lock
}

/// Global graph id → (shard, local id), derived from the member lists.
fn locator_of(members: &FlatVecVec<u32>, n: usize) -> Vec<(u32, u32)> {
    let mut locator = vec![(0u32, 0u32); n];
    for (s, m) in members.iter().enumerate() {
        for (l, &g) in m.iter().enumerate() {
            locator[g as usize] = (s as u32, l as u32);
        }
    }
    locator
}

impl Pmi {
    /// Builds the classic single-shard PMI for a database of probabilistic
    /// graphs (including the S-Index: every per-graph structural summary is
    /// computed exactly once here and then shared by feature mining, the
    /// matrix fill and the structural query phase).  Equivalent to
    /// [`Pmi::build_sharded`] with one shard.
    pub fn build(db: &[ProbabilisticGraph], params: &PmiBuildParams) -> Pmi {
        Pmi::build_sharded(db, params, 1)
    }

    /// Builds the PMI partitioned into `shards` shards (clamped to
    /// `1..=`[`MAX_SHARDS`]).  Features are mined and every cell is computed
    /// *globally* — per-column RNGs are seeded from graph content, never from
    /// position — and only then scattered into per-shard segments, so every
    /// lookup returns exactly what the 1-shard build returns.
    pub fn build_sharded(db: &[ProbabilisticGraph], params: &PmiBuildParams, shards: usize) -> Pmi {
        let shards = shards.clamp(1, MAX_SHARDS);
        // pgs-lint: allow(wall-clock-in-query-path, build_seconds is snapshot-head metadata for reporting, never control flow)
        let start = Instant::now();
        let skeletons: Vec<Graph> = db.iter().map(|g| g.skeleton().clone()).collect();
        let sindex = StructuralIndex::build(&skeletons);
        let sindex_views: Vec<SummaryView<'_>> = sindex.summary_views().collect();
        let mut features = select_features_summarized(&skeletons, &sindex_views, &params.features);
        let feature_summaries: Vec<StructuralSummary> = features
            .iter()
            .map(|f| StructuralSummary::of(&f.graph))
            .collect();
        let rows = fill_matrix(db, &features, &feature_summaries, &sindex_views, params);
        let graph_salts: Vec<u64> = db.iter().map(graph_salt).collect();
        let support_counts: Vec<usize> = features.iter().map(|f| f.support.len()).collect();
        let shard_members = members_of(&graph_salts, shards);
        let locator = locator_of(&shard_members, graph_salts.len());
        let segments = if shards == 1 {
            // Fast path: the global layout IS shard 0 (local ids == global
            // ids) — move everything in without a scatter pass.
            let mut supports = FlatVecVec::with_capacity(
                features.len(),
                features.iter().map(|f| f.support.len()).sum(),
            );
            for f in features.iter_mut() {
                supports.push_row(std::mem::take(&mut f.support).into_iter().map(|g| g as u32));
            }
            vec![seg_lock(ShardSegment {
                matrix: SparseMatrix::from_dense(&rows),
                supports,
                sindex: Some(sindex),
            })]
        } else {
            scatter_segments(
                &rows,
                &mut features,
                &sindex_views,
                &shard_members,
                &locator,
            )
        };
        Pmi {
            features,
            graph_salts,
            support_counts,
            params: *params,
            build_seconds: start.elapsed().as_secs_f64(),
            shard_members,
            locator,
            shard_churn: vec![0; shards],
            segments,
            lazy: None,
            has_sindex: true,
            feature_summaries,
        }
    }

    /// The indexed features (row order).  Support lists live in the shard
    /// segments — use [`Pmi::feature_support`] for the global view.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of database graphs the index covers.
    pub fn graph_count(&self) -> usize {
        self.graph_salts.len()
    }

    /// The parameters the index was built with.
    pub fn build_params(&self) -> &PmiBuildParams {
        &self.params
    }

    /// The per-column content salts (one per database graph, in column order).
    pub fn graph_salts(&self) -> &[u64] {
        &self.graph_salts
    }

    /// Number of shards the index is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shard_members.len()
    }

    /// The global graph ids owned by shard `s`, ascending.
    pub fn shard_members(&self, s: usize) -> &[u32] {
        self.shard_members.row(s)
    }

    /// The shard owning graph `g`.
    pub fn shard_of_graph(&self, g: usize) -> usize {
        self.locator[g].0 as usize
    }

    /// Number of shard segments currently materialized in memory (equals
    /// [`Pmi::shard_count`] except for a lazily-[`open`](Pmi::open)ed index
    /// whose shards have not all been touched yet).
    pub fn materialized_shards(&self) -> usize {
        self.segments.iter().filter(|s| s.get().is_some()).count()
    }

    /// The S-Index of shard `s` (per-member summaries + posting lists).
    ///
    /// # Panics
    ///
    /// Panics if the index was decoded from a v1 snapshot and
    /// [`Pmi::ensure_sindex`] has not run yet — the query engine always pairs
    /// an index with its database before querying it.
    pub fn shard_sindex(&self, s: usize) -> &StructuralIndex {
        self.segment(s)
            .sindex
            .as_ref()
            // pgs-lint: allow(panic-in-library, engine invariant: ensure_sindex runs before any shard S-Index access)
            .expect("engine invariant: ensure_sindex runs before any shard S-Index access")
    }

    /// The S-Index of a single-shard index, or `None` when the index is
    /// multi-shard (use [`Pmi::shard_sindex`] per shard) or was decoded from
    /// a pre-S-Index (format v1) snapshot and has not been
    /// [re-derived](Pmi::ensure_sindex) yet.
    pub fn sindex(&self) -> Option<&StructuralIndex> {
        if self.shard_count() == 1 {
            self.segment(0).sindex.as_ref()
        } else {
            None
        }
    }

    /// Rebuilds the S-Indexes from the database skeletons when they are
    /// missing (the v1-snapshot migration path).  A no-op when they are
    /// already present — in particular it never materializes a lazy segment.
    ///
    /// # Panics
    ///
    /// Panics if `skeletons` does not have exactly one entry per PMI column —
    /// callers must pair the index with its own database first (the engine
    /// checks the content salts before calling this).
    pub fn ensure_sindex(&mut self, skeletons: &[Graph]) {
        assert_eq!(
            skeletons.len(),
            self.graph_count(),
            "ensure_sindex: {} skeletons for {} PMI columns",
            skeletons.len(),
            self.graph_count()
        );
        if self.has_sindex {
            return;
        }
        for s in 0..self.shard_count() {
            let member_graphs: Vec<Graph> = self
                .shard_members
                .row(s)
                .iter()
                .map(|&g| skeletons[g as usize].clone())
                .collect();
            let seg = self.segment_mut(s);
            if seg.sindex.is_none() {
                seg.sindex = Some(StructuralIndex::build(&member_graphs));
            }
        }
        self.has_sindex = true;
    }

    /// The SIP bounds of `feature` in `graph`, or `None` when the feature does
    /// not occur in the graph skeleton.
    pub fn bounds(&self, graph: usize, feature: usize) -> Option<SipBounds> {
        let &(s, l) = self.locator.get(graph)?;
        self.segment(s as usize).matrix.get(l as usize, feature)
    }

    /// All non-empty `(feature index, bounds)` entries of one graph column —
    /// the paper's `D_g`.
    pub fn graph_entries(&self, graph: usize) -> Vec<(usize, SipBounds)> {
        match self.locator.get(graph) {
            Some(&(s, l)) => self.segment(s as usize).matrix.column(l as usize).collect(),
            None => Vec::new(),
        }
    }

    /// The global support list of one feature (ascending graph ids),
    /// reconstructed from the shard-local lists.  Materializes every shard.
    pub fn feature_support(&self, feature: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.support_counts.get(feature).copied().unwrap_or(0));
        for (s, members) in self.shard_members.iter().enumerate() {
            out.extend(
                self.segment(s)
                    .supports
                    .row(feature)
                    .iter()
                    .map(|&l| members[l as usize] as usize),
            );
        }
        out.sort_unstable();
        out
    }

    /// Build statistics.  `size_bytes` is the exact snapshot payload size;
    /// `build_seconds` is the wall-clock time of the original [`Pmi::build`]
    /// (preserved across save/load, not counting incremental appends).
    /// Materializes every shard of a lazily-opened index.
    pub fn stats(&self) -> PmiStats {
        let occupied_cells = (0..self.shard_count())
            .map(|s| self.segment(s).matrix.entry_count())
            .sum();
        PmiStats {
            feature_count: self.features.len(),
            graph_count: self.graph_count(),
            occupied_cells,
            build_seconds: self.build_seconds,
            size_bytes: self.snapshot_payload_len(),
        }
    }

    /// Exact payload size of the snapshot [`Pmi::to_bytes`] would write.
    fn snapshot_payload_len(&self) -> usize {
        if self.has_sindex {
            // v3: shard count + table + salts + feature heads + segments.
            let mut len = 8
                + 24 * self.shard_count()
                + 8
                + 8 * self.graph_salts.len()
                + 8
                + self
                    .features
                    .iter()
                    .map(snapshot::feature_head_len)
                    .sum::<usize>();
            for s in 0..self.shard_count() {
                let seg = self.segment(s);
                len += 8 + seg.matrix.payload_bytes();
                len += seg
                    .supports
                    .iter()
                    .map(|sup| 4 + 4 * sup.len())
                    .sum::<usize>();
                len += 8 + seg
                    .sindex
                    .as_ref()
                    // pgs-lint: allow(panic-in-library, has_sindex was checked by the caller, and it implies every segment carries one)
                    .expect("has_sindex implies every segment carries one")
                    .summary_views()
                    .map(snapshot::summary_len)
                    .sum::<usize>();
            }
            len
        } else {
            // v1 fallback: one global segment, no S-Index section.
            8 + 8 * self.graph_salts.len()
                + 8
                + self
                    .features
                    .iter()
                    .zip(&self.support_counts)
                    .map(|(f, &c)| snapshot::feature_len_with(f, c))
                    .sum::<usize>()
                + 8
                + self.segment(0).matrix.payload_bytes()
        }
    }

    /// Shard `s`'s segment, materializing it from the snapshot on first touch.
    ///
    /// # Panics
    ///
    /// A lazily-opened index panics here if the snapshot file disappeared or
    /// was corrupted *after* [`Pmi::open`] validated its head — the segment
    /// table was checked against the file at open time, so this only fires on
    /// external interference with the file.
    fn segment(&self, s: usize) -> &ShardSegment {
        self.segments[s].get_or_init(|| {
            let src = self
                .lazy
                .as_ref()
                // pgs-lint: allow(panic-in-library, documented panic (see section above): only external interference with the snapshot file after open)
                .expect("segment neither materialized nor backed by a snapshot file");
            let (offset, len) = src.table[s];
            match snapshot::load_segment_from_file(
                &src.path,
                offset,
                len,
                s,
                self.shard_members.row_len(s),
                self.features.len(),
            ) {
                Ok(seg) => ShardSegment {
                    matrix: seg.matrix,
                    supports: seg.supports,
                    sindex: Some(seg.sindex),
                },
                Err(e) => panic!(
                    "failed to materialize shard {s} of the PMI snapshot {}: {e}",
                    src.path.display()
                ),
            }
        })
    }

    fn segment_mut(&mut self, s: usize) -> &mut ShardSegment {
        self.segment(s);
        self.segments[s]
            .get_mut()
            // pgs-lint: allow(panic-in-library, the segment(s) call on the previous line materialized this slot)
            .expect("segment was just materialized")
    }

    // -- incremental maintenance -------------------------------------------

    /// Appends one graph column: computes the SIP bounds of every existing
    /// feature in `pg` (no feature re-mining) and pushes the column, its
    /// content salt and the α-filtered support-list updates into the owning
    /// shard.  Only that shard's segment is touched (or materialized).
    ///
    /// The column is byte-identical to the one a fresh [`Pmi::build`] over the
    /// extended database would produce *for the same feature set*: the
    /// per-column RNG is seeded from the build seed and the graph's content
    /// hash, never from the column position or the shard layout.
    pub fn append_graph(&mut self, pg: &ProbabilisticGraph) {
        let skeleton_summary = StructuralSummary::of(pg.skeleton());
        let column = compute_column(
            pg,
            &self.features,
            &self.feature_summaries,
            skeleton_summary.view(),
            &self.params,
        );
        let salt = graph_salt(pg);
        let s = shard_of(salt, self.shard_count());
        let global = self.graph_salts.len() as u32;
        let local = self.shard_members.row_len(s) as u32;
        let fp = self.params.features;
        let supported: Vec<bool> = self
            .features
            .iter()
            .zip(&self.feature_summaries)
            .map(|(f, fs)| {
                column[f.id].is_some()
                    && alpha_supports(
                        &f.graph,
                        fs.view(),
                        pg.skeleton(),
                        skeleton_summary.view(),
                        &fp,
                    )
            })
            .collect();
        let seg = self.segment_mut(s);
        seg.matrix.push_column(
            column
                .iter()
                .enumerate()
                .filter_map(|(fi, c)| c.map(|b| (fi, b))),
        );
        for (fi, &sup) in supported.iter().enumerate() {
            if sup {
                seg.supports.push_into_row(fi, local);
            }
        }
        if let Some(sindex) = &mut seg.sindex {
            sindex.append_summary(skeleton_summary);
        }
        for (count, &sup) in self.support_counts.iter_mut().zip(&supported) {
            if sup {
                *count += 1;
            }
        }
        self.graph_salts.push(salt);
        self.shard_members.push_into_row(s, global);
        self.locator.push((s as u32, local));
        self.shard_churn[s] += 1;
        self.refresh_frequencies();
    }

    /// Removes graph column `index`, shifting every later global id down by
    /// one (mirroring `Vec::remove` on the database side).
    ///
    /// The splice is *shard-local*: only the owning shard's matrix, support
    /// lists and S-Index are rewritten (other shards' local ids are untouched
    /// by global renumbering — that is the point of storing supports as local
    /// ids).  The remaining work is one cheap pass over the member lists.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_graph(&mut self, index: usize) {
        assert!(
            index < self.graph_count(),
            "remove_graph: column {index} out of range ({} columns)",
            self.graph_count()
        );
        let (s, local) = self.locator[index];
        let (s, local) = (s as usize, local as usize);
        let seg = self.segment_mut(s);
        seg.matrix.remove_column(local);
        let local32 = local as u32;
        let mut lost = Vec::new();
        seg.supports.retain_mut(|fi, l| {
            if *l == local32 {
                lost.push(fi);
                false
            } else {
                if *l > local32 {
                    *l -= 1;
                }
                true
            }
        });
        if let Some(sindex) = &mut seg.sindex {
            sindex.remove(local);
        }
        for fi in lost {
            self.support_counts[fi] -= 1;
        }
        self.graph_salts.remove(index);
        self.shard_members.remove_from_row(s, local);
        let cut = index as u32;
        for g in self.shard_members.values_mut() {
            if *g > cut {
                *g -= 1;
            }
        }
        self.locator = locator_of(&self.shard_members, self.graph_salts.len());
        self.shard_churn[s] += 1;
        self.refresh_frequencies();
    }

    /// Total incremental column mutations since the features were last mined
    /// (reset by [`Pmi::build`] and by loading a freshly-built snapshot) —
    /// the sum of the per-shard counters.
    pub fn churn(&self) -> usize {
        self.shard_churn.iter().sum()
    }

    /// Per-shard churn counters (mutations since the last full mining).
    pub fn shard_churns(&self) -> &[usize] {
        &self.shard_churn
    }

    /// Staleness of the mined feature set: the *worst shard's* mutation count
    /// as a fraction of that shard's current size.  `0.0` right after a
    /// build; beyond ~`0.5` the features were mined from a database that
    /// shares little with the current one and a re-mine (full rebuild) is
    /// recommended — the bounds stay *correct* regardless (they are computed
    /// per column), only their pruning power degrades.  Identical to the
    /// classic `churn / graph_count` on a 1-shard index.
    pub fn staleness(&self) -> f64 {
        self.shard_staleness().into_iter().fold(0.0f64, f64::max)
    }

    /// Per-shard staleness: each shard's churn over its current member count.
    pub fn shard_staleness(&self) -> Vec<f64> {
        self.shard_churn
            .iter()
            .zip(self.shard_members.iter())
            .map(|(&c, m)| c as f64 / m.len().max(1) as f64)
            .collect()
    }

    // -- persistence --------------------------------------------------------

    /// Serializes the index to the versioned binary snapshot format (see
    /// [`crate::snapshot`]); materializes every lazy segment.  Writes format
    /// v3 (segmented); an index decoded from a v1 snapshot whose S-Index was
    /// never re-derived falls back to writing v1 again — it has no summaries
    /// to persist.
    pub fn to_bytes(&self) -> Vec<u8> {
        let version = if self.has_sindex {
            snapshot::FORMAT_VERSION
        } else {
            snapshot::FORMAT_V1
        };
        self.to_bytes_versioned(version)
            // pgs-lint: allow(panic-in-library, encoding current/v1 formats cannot fail; only unknown versions error)
            .expect("current/v1 versions are always encodable")
    }

    /// Serializes the index at an explicit format version: the current
    /// version 3, or versions 1/2 for readers that predate shards (the
    /// downgrade path — the global matrix, support lists and summaries are
    /// reconstructed from the shard segments).
    pub fn to_bytes_versioned(&self, version: u32) -> Result<Vec<u8>, SnapshotError> {
        if version == snapshot::FORMAT_VERSION {
            if !self.has_sindex {
                return Err(SnapshotError::Corrupt(
                    "cannot encode a v3 snapshot without an S-Index \
                     (pair the index with its database first)"
                        .into(),
                ));
            }
            let segs: Vec<&ShardSegment> =
                (0..self.shard_count()).map(|s| self.segment(s)).collect();
            let segments = segs
                .iter()
                .map(|seg| snapshot::SegmentRef {
                    matrix: &seg.matrix,
                    supports: &seg.supports,
                    sindex: seg
                        .sindex
                        .as_ref()
                        // pgs-lint: allow(panic-in-library, has_sindex was checked by the caller, and it implies every segment carries one)
                        .expect("has_sindex implies every segment carries one"),
                })
                .collect();
            Ok(snapshot::encode_v3(&snapshot::ShardedPartsRef {
                params: &self.params,
                build_seconds: self.build_seconds,
                graph_salts: &self.graph_salts,
                features: &self.features,
                support_counts: &self.support_counts,
                shard_churn: &self.shard_churn,
                segments,
            }))
        } else {
            let (matrix, features, sindex) = self.global_parts();
            snapshot::encode(
                &snapshot::PmiPartsRef {
                    params: &self.params,
                    build_seconds: self.build_seconds,
                    churn: self.churn(),
                    graph_salts: &self.graph_salts,
                    features: &features,
                    matrix: &matrix,
                    sindex: sindex.as_ref(),
                },
                version,
            )
        }
    }

    /// Reconstructs the global single-segment view (columns in global order,
    /// features with global support lists, merged S-Index) — the legacy
    /// encoder's input.
    fn global_parts(&self) -> (SparseMatrix, Vec<Feature>, Option<StructuralIndex>) {
        let mut matrix = SparseMatrix::new();
        for &(s, l) in &self.locator {
            matrix.push_column(self.segment(s as usize).matrix.column(l as usize));
        }
        let mut features = self.features.clone();
        for f in &mut features {
            f.support = self.feature_support(f.id);
        }
        let sindex = if self.has_sindex {
            let summaries = self
                .locator
                .iter()
                .map(|&(s, l)| {
                    self.segment(s as usize)
                        .sindex
                        .as_ref()
                        // pgs-lint: allow(panic-in-library, has_sindex was checked by the caller, and it implies every segment carries one)
                        .expect("has_sindex implies every segment carries one")
                        .summary(l as usize)
                        .to_owned_summary()
                })
                .collect();
            Some(StructuralIndex::from_summaries(summaries))
        } else {
            None
        };
        (matrix, features, sindex)
    }

    /// Deserializes an index from snapshot bytes (format v1, v2 or v3; a v1
    /// index carries no S-Index — pair it with its database via
    /// `QueryEngine::from_parts`, which re-derives the summaries).  Always
    /// eager; use [`Pmi::open`] for the lazy path.
    pub fn from_bytes(bytes: &[u8]) -> Result<Pmi, SnapshotError> {
        match snapshot::decode_any(bytes)? {
            snapshot::AnyParts::Legacy(parts) => Pmi::from_legacy_parts(*parts),
            snapshot::AnyParts::V3(parts) => Ok(Pmi::from_sharded_parts(*parts)),
        }
    }

    fn from_legacy_parts(mut parts: snapshot::PmiParts) -> Result<Pmi, SnapshotError> {
        if parts.matrix.column_count() != parts.graph_salts.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} matrix columns but {} graph salts",
                parts.matrix.column_count(),
                parts.graph_salts.len()
            )));
        }
        // (`decode` already guarantees a v2 S-Index section has exactly one
        // summary per graph salt.)
        let feature_summaries = parts
            .features
            .iter()
            .map(|f| StructuralSummary::of(&f.graph))
            .collect();
        let support_counts = parts.features.iter().map(|f| f.support.len()).collect();
        let mut supports = FlatVecVec::new();
        for f in parts.features.iter_mut() {
            supports.push_row(std::mem::take(&mut f.support).into_iter().map(|g| g as u32));
        }
        let n = parts.graph_salts.len();
        let has_sindex = parts.sindex.is_some();
        Ok(Pmi {
            features: parts.features,
            graph_salts: parts.graph_salts,
            support_counts,
            params: parts.params,
            build_seconds: parts.build_seconds,
            shard_members: FlatVecVec::from_rows(std::iter::once(0..n as u32)),
            locator: (0..n).map(|g| (0u32, g as u32)).collect(),
            shard_churn: vec![parts.churn],
            segments: vec![seg_lock(ShardSegment {
                matrix: parts.matrix,
                supports,
                sindex: parts.sindex,
            })],
            lazy: None,
            has_sindex,
            feature_summaries,
        })
    }

    fn from_sharded_parts(parts: snapshot::ShardedParts) -> Pmi {
        let feature_summaries = parts
            .features
            .iter()
            .map(|f| StructuralSummary::of(&f.graph))
            .collect();
        let shard_members = members_of(&parts.graph_salts, parts.segments.len());
        let locator = locator_of(&shard_members, parts.graph_salts.len());
        Pmi {
            features: parts.features,
            graph_salts: parts.graph_salts,
            support_counts: parts.support_counts,
            params: parts.params,
            build_seconds: parts.build_seconds,
            shard_members,
            locator,
            shard_churn: parts.shard_churn,
            segments: parts
                .segments
                .into_iter()
                .map(|seg| {
                    seg_lock(ShardSegment {
                        matrix: seg.matrix,
                        supports: seg.supports,
                        sindex: Some(seg.sindex),
                    })
                })
                .collect(),
            lazy: None,
            has_sindex: true,
            feature_summaries,
        }
    }

    /// Saves the index to `path`.  The file round-trips bit-exactly:
    /// [`Pmi::load`] yields an index with identical bounds, features, salts
    /// and statistics, and therefore byte-identical query answers.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        snapshot::write_file(path.as_ref(), &self.to_bytes())
    }

    /// Loads an index previously written by [`Pmi::save`], fully eagerly
    /// (every shard segment is decoded before this returns).
    pub fn load(path: impl AsRef<Path>) -> Result<Pmi, SnapshotError> {
        Pmi::from_bytes(&snapshot::read_file(path.as_ref())?)
    }

    /// Opens a snapshot *lazily*: only the head (parameters, salts, feature
    /// definitions, shard table) is read and validated — O(shards + graphs),
    /// not O(bytes) — and each shard's segment is materialized from the file
    /// on first touch.  The segment table is checked against the file size
    /// here, so a truncated snapshot fails at open time, not mid-query.
    ///
    /// v1/v2 snapshots have no segment table and fall back to the eager
    /// [`Pmi::load`] path.
    pub fn open(path: impl AsRef<Path>) -> Result<Pmi, SnapshotError> {
        let path = path.as_ref();
        match snapshot::open_head(path)? {
            snapshot::OpenedSnapshot::Legacy => Pmi::load(path),
            snapshot::OpenedSnapshot::V3(head) => {
                let feature_summaries = head
                    .features
                    .iter()
                    .map(|f| StructuralSummary::of(&f.graph))
                    .collect();
                let shard_members = members_of(&head.graph_salts, head.table.len());
                let locator = locator_of(&shard_members, head.graph_salts.len());
                Ok(Pmi {
                    features: head.features,
                    graph_salts: head.graph_salts,
                    support_counts: head.support_counts,
                    params: head.params,
                    build_seconds: head.build_seconds,
                    shard_members,
                    locator,
                    shard_churn: head.shard_churn,
                    segments: (0..head.table.len()).map(|_| OnceLock::new()).collect(),
                    lazy: Some(LazySource {
                        path: path.to_path_buf(),
                        table: head.table,
                    }),
                    has_sindex: true,
                    feature_summaries,
                })
            }
        }
    }

    /// Serializes the index to a plain-text form (one line per occupied cell).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "pmi features={} graphs={}",
            self.features.len(),
            self.graph_count()
        )
        // pgs-lint: allow(panic-in-library, fmt::Write into a String is infallible)
        .expect("writing to String cannot fail");
        for f in &self.features {
            writeln!(
                out,
                "feature {} edges={} frequency={:.4}",
                f.id,
                f.graph.edge_count(),
                f.frequency
            )
            // pgs-lint: allow(panic-in-library, fmt::Write into a String is infallible)
            .expect("writing to String cannot fail");
        }
        for gi in 0..self.graph_count() {
            for (fi, b) in self.graph_entries(gi) {
                writeln!(out, "cell {gi} {fi} {:.6} {:.6}", b.lower, b.upper)
                    // pgs-lint: allow(panic-in-library, fmt::Write into a String is infallible)
                    .expect("writing to String cannot fail");
            }
        }
        out
    }

    fn refresh_frequencies(&mut self) {
        let n = self.graph_count().max(1) as f64;
        for (f, &c) in self.features.iter_mut().zip(&self.support_counts) {
            f.frequency = c as f64 / n;
        }
    }
}

/// Scatters the globally computed rows/supports/summaries into per-shard
/// segments (the multi-shard build path).  Local orders inherit the global
/// ascending order, so every per-shard list is ascending too.
fn scatter_segments(
    rows: &[Vec<Option<SipBounds>>],
    features: &mut [Feature],
    summaries: &[SummaryView<'_>],
    members: &FlatVecVec<u32>,
    locator: &[(u32, u32)],
) -> Vec<OnceLock<ShardSegment>> {
    let feature_count = features.len();
    let mut scratch = vec![vec![Vec::new(); feature_count]; members.len()];
    for f in features.iter_mut() {
        for g in std::mem::take(&mut f.support) {
            let (s, l) = locator[g];
            scratch[s as usize][f.id].push(l);
        }
    }
    let supports: Vec<FlatVecVec<u32>> = scratch.into_iter().map(FlatVecVec::from_rows).collect();
    members
        .iter()
        .zip(supports)
        .map(|(m, sup)| {
            let mut matrix = SparseMatrix::new();
            for &g in m {
                matrix.push_column(
                    rows[g as usize]
                        .iter()
                        .enumerate()
                        .filter_map(|(fi, c)| c.map(|b| (fi, b))),
                );
            }
            let sindex = StructuralIndex::from_summaries(
                m.iter()
                    .map(|&g| summaries[g as usize].to_owned_summary())
                    .collect(),
            );
            seg_lock(ShardSegment {
                matrix,
                supports: sup,
                sindex: Some(sindex),
            })
        })
        .collect()
}

/// Fills the feature × graph matrix, parallelised over graphs with the shared
/// [`pgs_graph::parallel`] chunking helper.
///
/// Each row gets its own RNG seeded from the build seed and the *content* hash
/// of the graph skeleton (not the chunk offset), so any Monte-Carlo estimates
/// inside the bound computation are byte-identical regardless of thread count
/// and of where the graph sits in the database.
fn fill_matrix(
    db: &[ProbabilisticGraph],
    features: &[Feature],
    feature_summaries: &[StructuralSummary],
    skeleton_summaries: &[SummaryView<'_>],
    params: &PmiBuildParams,
) -> Vec<Vec<Option<SipBounds>>> {
    // A column runs VF2 containment and bound computations over every
    // feature — far beyond the dispatch floor, so two graphs already justify
    // fanning out to the pool.
    par_map_chunked_costed(db, params.threads, CostHint::HEAVY, |gi, pg| {
        compute_column(
            pg,
            features,
            feature_summaries,
            skeleton_summaries[gi],
            params,
        )
    })
}

/// One graph column of the matrix; shared by the parallel build and the
/// incremental [`Pmi::append_graph`] so both produce identical cells.  The
/// cached summaries (one per feature, one for the skeleton) keep the
/// per-feature containment prefilter allocation-free.
fn compute_column(
    pg: &ProbabilisticGraph,
    features: &[Feature],
    feature_summaries: &[StructuralSummary],
    skeleton_summary: SummaryView<'_>,
    params: &PmiBuildParams,
) -> Vec<Option<SipBounds>> {
    let mut rng =
        StdRng::seed_from_u64(derive_seed(&[params.seed, pg.skeleton().structural_hash()]));
    features
        .iter()
        .zip(feature_summaries)
        .map(|(f, fs)| {
            if contains_subgraph_summarized(&f.graph, fs.view(), pg.skeleton(), skeleton_summary) {
                Some(sip_bounds(pg, &f.graph, &params.bounds, &mut rng))
            } else {
                None
            }
        })
        .collect()
}

/// The α filter of Algorithm 4 for one `(feature, skeleton)` pair: true when
/// the ratio of disjoint embeddings among all (capped) embeddings reaches
/// `α`.  Used by [`Pmi::append_graph`] to keep the support lists consistent
/// with what a fresh selection run would record.
fn alpha_supports(
    feature: &Graph,
    feature_summary: SummaryView<'_>,
    skeleton: &Graph,
    skeleton_summary: SummaryView<'_>,
    fp: &FeatureSelectionParams,
) -> bool {
    let outcome = enumerate_embeddings_summarized(
        feature,
        feature_summary,
        skeleton,
        skeleton_summary,
        MatchOptions::capped(fp.max_embeddings),
    );
    if outcome.embeddings.is_empty() {
        return false;
    }
    let disjoint = disjoint_embedding_count(&outcome.embeddings);
    disjoint as f64 / outcome.embeddings.len() as f64 >= fp.alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_graph::vf2::{contains_subgraph, enumerate_embeddings, MatchOptions};
    use pgs_prob::exact::exact_sip;
    use pgs_prob::jpt::JointProbTable;

    /// A 3-graph database mirroring Figure 1/Figure 4: graph 001 (triangle
    /// a-b-d), graph 002 (the 5-edge graph) and a third graph without any a-b
    /// edge so some cells stay empty.
    fn database() -> Vec<ProbabilisticGraph> {
        let g001 = GraphBuilder::new()
            .name("001")
            .vertices(&[0, 1, 3])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build();
        let t001 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.6), (EdgeId(1), 0.5), (EdgeId(2), 0.7)])
                .unwrap();
        let pg001 = ProbabilisticGraph::new(g001, vec![t001], true).unwrap();

        let g002 = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        let pg002 = ProbabilisticGraph::new(g002, vec![t1, t2], true).unwrap();

        let g003 = GraphBuilder::new()
            .name("003")
            .vertices(&[3, 3, 3])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let t003 = JointProbTable::from_max_rule(&[(EdgeId(0), 0.9), (EdgeId(1), 0.2)]).unwrap();
        let pg003 = ProbabilisticGraph::new(g003, vec![t003], true).unwrap();

        vec![pg001, pg002, pg003]
    }

    fn params() -> PmiBuildParams {
        PmiBuildParams {
            features: FeatureSelectionParams {
                beta: 0.3,
                gamma: 0.0,
                alpha: 0.0,
                max_l: 3,
                max_features: 16,
                max_embeddings: 16,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 7,
        }
    }

    #[test]
    fn build_produces_a_consistent_matrix() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        assert!(pmi.features().len() >= 2);
        assert_eq!(pmi.graph_count(), 3);
        assert_eq!(pmi.shard_count(), 1);
        let stats = pmi.stats();
        assert_eq!(stats.graph_count, 3);
        assert_eq!(stats.feature_count, pmi.features().len());
        assert!(stats.occupied_cells > 0);
        assert!(stats.size_bytes > 0);
        assert!(stats.build_seconds >= 0.0);
        // Cells are present exactly when the feature embeds in the skeleton.
        for (gi, pg) in db.iter().enumerate() {
            for f in pmi.features() {
                let expect = contains_subgraph(&f.graph, pg.skeleton());
                assert_eq!(pmi.bounds(gi, f.id).is_some(), expect);
                if let Some(b) = pmi.bounds(gi, f.id) {
                    assert!(b.is_valid());
                }
            }
        }
        // Salts line up with the database contents.
        assert_eq!(pmi.graph_salts().len(), 3);
        for (s, pg) in pmi.graph_salts().iter().zip(&db) {
            assert_eq!(*s, graph_salt(pg));
        }
        assert_eq!(pmi.churn(), 0);
        assert_eq!(pmi.staleness(), 0.0);
    }

    #[test]
    fn every_cell_brackets_the_exact_sip() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        for (gi, pg) in db.iter().enumerate() {
            for f in pmi.features() {
                if let Some(b) = pmi.bounds(gi, f.id) {
                    let outcome =
                        enumerate_embeddings(&f.graph, pg.skeleton(), MatchOptions::default());
                    let sets: Vec<_> = outcome.embeddings.iter().map(|e| e.edges.clone()).collect();
                    let exact = exact_sip(pg, &sets).unwrap();
                    assert!(
                        b.lower <= exact + 1e-9 && exact <= b.upper + 1e-9,
                        "graph {gi} feature {}: [{}, {}] vs exact {exact}",
                        f.id,
                        b.lower,
                        b.upper
                    );
                }
            }
        }
    }

    #[test]
    fn graph_entries_return_dg() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let dg = pmi.graph_entries(1); // graph 002 contains every frequent feature
        assert!(!dg.is_empty());
        for (fi, b) in &dg {
            assert_eq!(pmi.bounds(1, *fi), Some(*b));
        }
        // Out-of-range graph index yields an empty Dg.
        assert!(pmi.graph_entries(99).is_empty());
        assert_eq!(pmi.bounds(99, 0), None);
    }

    #[test]
    fn single_threaded_and_multi_threaded_builds_agree() {
        let db = database();
        let mut p1 = params();
        p1.threads = 1;
        let mut p2 = params();
        p2.threads = 3;
        let a = Pmi::build(&db, &p1);
        let b = Pmi::build(&db, &p2);
        assert_eq!(a.features().len(), b.features().len());
        for gi in 0..db.len() {
            for fi in 0..a.features().len() {
                match (a.bounds(gi, fi), b.bounds(gi, fi)) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        // Bounds are computed exactly (no sampling) under the
                        // default config, so they must agree bit-for-bit.
                        assert!((x.lower - y.lower).abs() < 1e-12);
                        assert!((x.upper - y.upper).abs() < 1e-12);
                    }
                    other => panic!("occupancy mismatch at ({gi},{fi}): {other:?}"),
                }
            }
        }
    }

    #[test]
    fn sharded_builds_match_the_single_shard_build() {
        let db = database();
        let one = Pmi::build(&db, &params());
        for shards in [3usize, 8] {
            let pmi = Pmi::build_sharded(&db, &params(), shards);
            assert_eq!(pmi.shard_count(), shards);
            assert_eq!(pmi.graph_salts(), one.graph_salts());
            assert_eq!(pmi.features().len(), one.features().len());
            // Membership partitions the database and the locator inverts it.
            let mut all: Vec<u32> = (0..shards)
                .flat_map(|s| pmi.shard_members(s).to_vec())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..db.len() as u32).collect::<Vec<_>>());
            for g in 0..db.len() {
                assert!(pmi
                    .shard_members(pmi.shard_of_graph(g))
                    .contains(&(g as u32)));
            }
            // Every lookup is byte-identical to the unsharded index.
            for gi in 0..db.len() {
                assert_eq!(pmi.graph_entries(gi), one.graph_entries(gi));
            }
            for (a, b) in pmi.features().iter().zip(one.features()) {
                assert_eq!(pmi.feature_support(a.id), one.feature_support(b.id));
                assert_eq!(a.frequency, b.frequency);
                assert_eq!(a.discriminativity, b.discriminativity);
            }
            assert_eq!(pmi.stats().occupied_cells, one.stats().occupied_cells);
            assert_eq!(pmi.to_text(), one.to_text());
        }
    }

    #[test]
    fn text_serialization_mentions_every_occupied_cell() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let text = pmi.to_text();
        assert!(text.starts_with("pmi features="));
        let cell_lines = text.lines().filter(|l| l.starts_with("cell ")).count();
        assert_eq!(cell_lines, pmi.stats().occupied_cells);
    }

    #[test]
    fn empty_database_builds_an_empty_index() {
        let pmi = Pmi::build(&[], &PmiBuildParams::default());
        assert_eq!(pmi.graph_count(), 0);
        assert_eq!(pmi.features().len(), 0);
        assert_eq!(pmi.stats().occupied_cells, 0);
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let bytes = pmi.to_bytes();
        let back = Pmi::from_bytes(&bytes).unwrap();
        assert_eq!(back.stats(), pmi.stats());
        assert_eq!(back.graph_salts(), pmi.graph_salts());
        assert_eq!(back.build_params(), pmi.build_params());
        for gi in 0..db.len() {
            assert_eq!(back.graph_entries(gi), pmi.graph_entries(gi));
        }
        for (a, b) in back.features().iter().zip(pmi.features()) {
            assert_eq!(a.graph, b.graph);
            assert_eq!(back.feature_support(a.id), pmi.feature_support(b.id));
            assert_eq!(a.frequency, b.frequency);
            assert_eq!(a.discriminativity, b.discriminativity);
        }
        assert_eq!(back.to_text(), pmi.to_text());
        // Re-encoding is byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn sharded_snapshot_round_trips_bit_exactly() {
        let db = database();
        let pmi = Pmi::build_sharded(&db, &params(), 3);
        let bytes = pmi.to_bytes();
        let back = Pmi::from_bytes(&bytes).unwrap();
        assert_eq!(back.shard_count(), 3);
        assert_eq!(back.graph_salts(), pmi.graph_salts());
        assert_eq!(back.shard_churns(), pmi.shard_churns());
        for gi in 0..db.len() {
            assert_eq!(back.graph_entries(gi), pmi.graph_entries(gi));
        }
        for f in pmi.features() {
            assert_eq!(back.feature_support(f.id), pmi.feature_support(f.id));
        }
        for s in 0..3 {
            assert_eq!(back.shard_sindex(s), pmi.shard_sindex(s));
        }
        assert_eq!(back.stats(), pmi.stats());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn downgrading_to_v2_yields_the_global_single_shard_view() {
        let db = database();
        let sharded = Pmi::build_sharded(&db, &params(), 3);
        let one = Pmi::build(&db, &params());
        let v2 = sharded.to_bytes_versioned(snapshot::FORMAT_V2).unwrap();
        let back = Pmi::from_bytes(&v2).unwrap();
        assert_eq!(back.shard_count(), 1);
        for gi in 0..db.len() {
            assert_eq!(back.graph_entries(gi), one.graph_entries(gi));
        }
        for f in one.features() {
            assert_eq!(back.feature_support(f.id), one.feature_support(f.id));
        }
        assert_eq!(back.sindex(), one.sindex());
        // The downgrade is byte-identical to what the 1-shard index writes,
        // apart from the wall-clock `build_seconds` field right after the
        // params block (the two builds cannot share a clock reading).
        let mut a = v2.clone();
        let mut b = one.to_bytes_versioned(snapshot::FORMAT_V2).unwrap();
        let secs = 8 + 4 + 8 + snapshot::PARAMS_LEN;
        a[secs..secs + 8].fill(0);
        b[secs..secs + 8].fill(0);
        assert_eq!(a, b);
    }

    #[test]
    fn save_and_load_via_file() {
        let db = database();
        let pmi = Pmi::build(&db, &params());
        let path = std::env::temp_dir().join(format!("pgs-pmi-unit-{}.pmi", std::process::id()));
        pmi.save(&path).unwrap();
        let loaded = Pmi::load(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.stats(), pmi.stats());
        // The reported index size is the file size minus the fixed header.
        assert!(file_len > pmi.stats().size_bytes);
        assert!(file_len - pmi.stats().size_bytes < 256);
    }

    #[test]
    fn open_is_lazy_and_answers_match_load() {
        let db = database();
        let pmi = Pmi::build_sharded(&db, &params(), 3);
        let path = std::env::temp_dir().join(format!("pgs-pmi-lazy-{}.pmi", std::process::id()));
        pmi.save(&path).unwrap();
        let opened = Pmi::open(&path).unwrap();
        // Only the head was read: nothing is materialized yet.
        assert_eq!(opened.materialized_shards(), 0);
        assert_eq!(opened.graph_salts(), pmi.graph_salts());
        assert_eq!(opened.shard_count(), 3);
        assert_eq!(opened.features().len(), pmi.features().len());
        // Touching one graph materializes exactly its owning shard.
        let g = 0usize;
        assert_eq!(opened.graph_entries(g), pmi.graph_entries(g));
        assert_eq!(opened.materialized_shards(), 1);
        // Full comparison materializes the rest lazily and agrees everywhere.
        for gi in 0..db.len() {
            assert_eq!(opened.graph_entries(gi), pmi.graph_entries(gi));
        }
        assert_eq!(opened.stats(), pmi.stats());
        assert_eq!(opened.to_bytes(), pmi.to_bytes());
        // A legacy snapshot opens through the eager fallback.
        let v2 = pmi.to_bytes_versioned(snapshot::FORMAT_V2).unwrap();
        std::fs::write(&path, &v2).unwrap();
        let legacy = Pmi::open(&path).unwrap();
        assert_eq!(legacy.shard_count(), 1);
        assert_eq!(legacy.materialized_shards(), 1);
        for gi in 0..db.len() {
            assert_eq!(legacy.graph_entries(gi), pmi.graph_entries(gi));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_missing_file_is_an_io_error() {
        let err = Pmi::load("/nonexistent/definitely/missing.pmi").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        let err = Pmi::open("/nonexistent/definitely/missing.pmi").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }

    #[test]
    fn append_then_remove_restores_the_original_matrix() {
        let db = database();
        let full = Pmi::build(&db, &params());
        let mut pmi = Pmi::build(&db, &params());
        pmi.remove_graph(2);
        assert_eq!(pmi.graph_count(), 2);
        assert_eq!(pmi.churn(), 1);
        // Supports no longer mention the removed column.
        for f in pmi.features() {
            assert!(pmi.feature_support(f.id).iter().all(|&gi| gi < 2));
        }
        pmi.append_graph(&db[2]);
        assert_eq!(pmi.graph_count(), 3);
        assert_eq!(pmi.churn(), 2);
        assert!(pmi.staleness() > 0.0);
        // The re-appended column is byte-identical to the fresh build's.
        for gi in 0..3 {
            assert_eq!(pmi.graph_entries(gi), full.graph_entries(gi));
        }
        assert_eq!(pmi.graph_salts(), full.graph_salts());
        for (a, b) in pmi.features().iter().zip(full.features()) {
            assert_eq!(
                pmi.feature_support(a.id),
                full.feature_support(b.id),
                "support of feature {}",
                a.id
            );
            assert!((a.frequency - b.frequency).abs() < 1e-12);
        }
    }

    #[test]
    fn sharded_incremental_maintenance_matches_the_single_shard_index() {
        let db = database();
        let mut sharded = Pmi::build_sharded(&db, &params(), 3);
        let mut one = Pmi::build(&db, &params());
        for pmi in [&mut sharded, &mut one] {
            pmi.remove_graph(1);
            pmi.append_graph(&db[1]);
        }
        assert_eq!(sharded.graph_salts(), one.graph_salts());
        assert_eq!(sharded.churn(), one.churn());
        for gi in 0..db.len() {
            assert_eq!(sharded.graph_entries(gi), one.graph_entries(gi));
        }
        for f in one.features() {
            assert_eq!(sharded.feature_support(f.id), one.feature_support(f.id));
            let s = sharded
                .features()
                .iter()
                .find(|sf| sf.id == f.id)
                .expect("same feature set");
            assert!((s.frequency - f.frequency).abs() < 1e-12);
        }
        // Churn is attributed to the shard that owns the mutated graph (its
        // salt decides that, not its — now shifted — global id), and
        // staleness reports the worst shard.
        let owner = shard_of(graph_salt(&db[1]), sharded.shard_count());
        assert_eq!(sharded.shard_churns()[owner], 2);
        assert!(sharded.staleness() >= one.staleness());
        assert!(sharded.shard_staleness().iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn sindex_tracks_mutations_and_survives_snapshots() {
        let db = database();
        let full = Pmi::build(&db, &params());
        assert_eq!(full.sindex().expect("fresh build").graph_count(), 3);

        // Incremental maintenance mirrors a fresh build over the same state.
        let mut pmi = Pmi::build(&db, &params());
        pmi.remove_graph(1);
        pmi.append_graph(&db[1]);
        let reordered: Vec<Graph> = [0usize, 2, 1]
            .iter()
            .map(|&i| db[i].skeleton().clone())
            .collect();
        assert_eq!(pmi.sindex().unwrap(), &StructuralIndex::build(&reordered));

        // A snapshot round-trips the S-Index bit-for-bit.
        let back = Pmi::from_bytes(&full.to_bytes()).unwrap();
        assert_eq!(back.sindex(), full.sindex());
        assert_eq!(back.stats(), full.stats());

        // A v1 snapshot drops it; ensure_sindex re-derives an identical one.
        let v1 = full.to_bytes_versioned(snapshot::FORMAT_V1).unwrap();
        let mut old = Pmi::from_bytes(&v1).unwrap();
        assert!(old.sindex().is_none());
        // A v1-loaded index re-saves as v1 (nothing to persist).
        assert_eq!(old.to_bytes(), v1);
        let skeletons: Vec<Graph> = db.iter().map(|g| g.skeleton().clone()).collect();
        old.ensure_sindex(&skeletons);
        assert_eq!(old.sindex(), full.sindex());
    }

    #[test]
    fn removing_a_middle_column_shifts_support_indices() {
        let db = database();
        let mut pmi = Pmi::build(&db, &params());
        let full = Pmi::build(&db, &params());
        pmi.remove_graph(0);
        assert_eq!(pmi.graph_count(), 2);
        // Old column 1 is now column 0, old column 2 is now column 1.
        for gi in 0..2 {
            assert_eq!(pmi.graph_entries(gi), full.graph_entries(gi + 1));
        }
        assert_eq!(pmi.graph_salts(), &full.graph_salts()[1..]);
        for f in pmi.features() {
            for gi in pmi.feature_support(f.id) {
                assert!(gi < 2);
            }
        }
    }
}
