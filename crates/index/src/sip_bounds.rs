//! Lower and upper bounds of the subgraph-isomorphism probability (Section 4.1).
//!
//! For a feature `f` and a probabilistic graph `g`, the exact SIP
//! `Pr(f ⊆iso g)` is #P-complete, so the PMI stores bounds:
//!
//! * **Lower bound** (Section 4.1.1): pick a set `IN` of pairwise *disjoint*
//!   embeddings; then `Pr(f ⊆iso g) = Pr(∨ Bf_i) ≥ 1 − Π_{i∈IN}(1 − p_i)`
//!   where `p_i` is the (possibly conditional) probability of embedding `i`.
//!   The best `IN` maximises `Σ −ln(1 − p_i)`, i.e. a maximum-weight clique of
//!   the disjointness graph (Example 6).
//! * **Upper bound** (Section 4.1.2): pick a set `IN'` of pairwise disjoint
//!   *minimal embedding cuts*; then `Pr(f ⊆iso g) = Pr(∧ ¬Bc_j) ≤
//!   Π_{i∈IN'}(1 − p_i)` where `p_i` is the probability that cut `i` is fully
//!   absent.  The best `IN'` again comes from a maximum-weight clique.
//!
//! ## Disjointness rule
//!
//! The paper treats edge-disjoint embeddings as conditionally independent and
//! feeds the product formulas with the Algorithm 3 conditional probabilities
//! `Pr(Bf_i | COR)`.  Under the partitioned-JPT model of this workspace,
//! *table-disjoint* events (touching disjoint sets of JPTs) are exactly
//! independent, which makes both product bounds provably correct with plain
//! unconditional probabilities.  [`DisjointnessRule::TableDisjoint`] (default)
//! uses that sound rule; [`DisjointnessRule::EdgeDisjoint`] reproduces the
//! paper's rule verbatim and can be combined with `use_conditional` to obtain
//! the published formulas.  DESIGN.md §3 records this as a documented
//! substitution; the ablation bench compares the two.

use pgs_graph::clique::{max_weight_clique, BitMatrix, CliqueOptions};
use pgs_graph::cuts::{minimal_cuts, CutEnumOptions};
use pgs_graph::embeddings::{edge_sets_disjoint, EdgeSet};
use pgs_graph::model::Graph;
use pgs_graph::vf2::{enumerate_embeddings, MatchOptions};
use pgs_prob::conditional::{conditional_event_probability, EventKind};
use pgs_prob::model::ProbabilisticGraph;
use pgs_prob::montecarlo::MonteCarloConfig;
use rand::Rng;

/// Lower/upper bounds of `Pr(f ⊆iso g)` stored in one PMI cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SipBounds {
    /// Lower bound of the SIP.
    pub lower: f64,
    /// Upper bound of the SIP.
    pub upper: f64,
}

impl SipBounds {
    /// The zero entry used when the feature does not occur in the skeleton.
    pub const ABSENT: SipBounds = SipBounds {
        lower: 0.0,
        upper: 0.0,
    };

    /// True if the interval is non-empty and within `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.lower)
            && (0.0..=1.0).contains(&self.upper)
            && self.lower <= self.upper + 1e-9
    }
}

/// Which pairs of embeddings (or cuts) may be combined in the product bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisjointnessRule {
    /// Events must touch disjoint sets of JPT groups: they are then exactly
    /// independent under the partitioned model, so the product bounds are
    /// provably correct.  Default.
    TableDisjoint,
    /// The paper's rule: events must share no skeleton edge.  Combine with
    /// `use_conditional = true` for the exact published formulas.
    EdgeDisjoint,
}

/// Configuration of the bound computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsConfig {
    /// Cap on embeddings enumerated per (feature, graph).
    pub max_embeddings: usize,
    /// Cap on minimal cuts enumerated per (feature, graph).
    pub max_cuts: usize,
    /// Disjointness rule for selecting combinable events.
    pub disjointness: DisjointnessRule,
    /// Use Algorithm 3 conditional probabilities `Pr(Bf_i | COR)` instead of
    /// unconditional event probabilities.
    pub use_conditional: bool,
    /// Tighten the bounds with a maximum-weight clique search (the paper's
    /// "OPT" variants); `false` falls back to greedy first-fit selection.
    pub tighten_with_clique: bool,
    /// Monte-Carlo accuracy for the conditional estimator.
    pub mc: MonteCarloConfig,
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig {
            max_embeddings: 24,
            max_cuts: 64,
            disjointness: DisjointnessRule::TableDisjoint,
            use_conditional: false,
            tighten_with_clique: true,
            mc: MonteCarloConfig::coarse(),
        }
    }
}

impl BoundsConfig {
    /// The configuration reproducing the paper's formulas verbatim
    /// (edge-disjointness + Algorithm 3 conditional probabilities).
    pub fn paper_faithful() -> Self {
        BoundsConfig {
            disjointness: DisjointnessRule::EdgeDisjoint,
            use_conditional: true,
            ..Self::default()
        }
    }

    /// Greedy (non-clique) variant used by the SIPBound baseline and the
    /// ablation bench.
    pub fn greedy() -> Self {
        BoundsConfig {
            tighten_with_clique: false,
            ..Self::default()
        }
    }
}

/// Computes the SIP bounds of feature `f` in probabilistic graph `g`.
pub fn sip_bounds<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    feature: &Graph,
    config: &BoundsConfig,
    rng: &mut R,
) -> SipBounds {
    if feature.edge_count() == 0 {
        // The empty feature is contained in every possible world.
        return SipBounds {
            lower: 1.0,
            upper: 1.0,
        };
    }
    let outcome = enumerate_embeddings(
        feature,
        pg.skeleton(),
        MatchOptions::capped(config.max_embeddings),
    );
    let embeddings: Vec<EdgeSet> = outcome.embeddings.iter().map(|e| e.edges.clone()).collect();
    if embeddings.is_empty() {
        return SipBounds::ABSENT;
    }
    let lower = lower_bound(pg, &embeddings, config, rng);
    let upper = upper_bound(pg, &embeddings, outcome.complete, config, rng);
    let upper = upper.clamp(0.0, 1.0);
    let lower = lower.clamp(0.0, upper);
    SipBounds { lower, upper }
}

/// Lower bound from disjoint embeddings (Equation 17 / Example 6).
fn lower_bound<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    embeddings: &[EdgeSet],
    config: &BoundsConfig,
    rng: &mut R,
) -> f64 {
    let probs = event_probabilities(pg, embeddings, EventKind::Embedding, config, rng);
    let total_weight = best_disjoint_weight(pg, embeddings, &probs, config);
    1.0 - (-total_weight).exp()
}

/// Upper bound from disjoint minimal embedding cuts (Equation 20).
fn upper_bound<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    embeddings: &[EdgeSet],
    embeddings_complete: bool,
    config: &BoundsConfig,
    rng: &mut R,
) -> f64 {
    // If the embedding enumeration was truncated, the cut family would miss
    // embeddings and the "upper bound" could undercut the true SIP; stay
    // conservative.
    if !embeddings_complete {
        return 1.0;
    }
    let (cuts, _complete) = minimal_cuts(
        embeddings,
        CutEnumOptions {
            max_cuts: config.max_cuts,
            ..CutEnumOptions::default()
        },
    );
    if cuts.is_empty() {
        return 1.0;
    }
    let probs = event_probabilities(pg, &cuts, EventKind::Cut, config, rng);
    let total_weight = best_disjoint_weight(pg, &cuts, &probs, config);
    (-total_weight).exp()
}

/// Event probabilities `p_i` (conditional per Algorithm 3, or unconditional).
fn event_probabilities<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    sets: &[EdgeSet],
    kind: EventKind,
    config: &BoundsConfig,
    rng: &mut R,
) -> Vec<f64> {
    sets.iter()
        .enumerate()
        .map(|(i, set)| {
            if config.use_conditional {
                let competitors: Vec<EdgeSet> = sets
                    .iter()
                    .enumerate()
                    .filter(|&(j, other)| j != i && !edge_sets_disjoint(set, other))
                    .map(|(_, other)| other.clone())
                    .collect();
                conditional_event_probability(pg, set, &competitors, kind, &config.mc, rng)
            } else {
                match kind {
                    EventKind::Embedding => pg.prob_all_present(set),
                    EventKind::Cut => pg.prob_all_absent(set),
                }
            }
        })
        .collect()
}

/// Picks the best family of pairwise-disjoint events and returns its total
/// weight `Σ −ln(1 − p_i)`.
fn best_disjoint_weight(
    pg: &ProbabilisticGraph,
    sets: &[EdgeSet],
    probs: &[f64],
    config: &BoundsConfig,
) -> f64 {
    let weights: Vec<f64> = probs
        .iter()
        .map(|&p| -(1.0 - p.clamp(0.0, 1.0 - 1e-12)).ln())
        .collect();
    let adjacent = compatibility_matrix(pg, sets, config.disjointness);
    if config.tighten_with_clique {
        let result = max_weight_clique(&weights, &adjacent, CliqueOptions::default());
        result.weight
    } else {
        // Greedy first-fit in index order (the untightened SIPBound variant).
        let mut chosen: Vec<usize> = Vec::new();
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if chosen.iter().all(|&j| adjacent.get(i, j)) {
                chosen.push(i);
                total += w;
            }
        }
        total
    }
}

/// Pairwise compatibility of the events under the configured disjointness rule.
fn compatibility_matrix(
    pg: &ProbabilisticGraph,
    sets: &[EdgeSet],
    rule: DisjointnessRule,
) -> BitMatrix {
    let n = sets.len();
    let tables: Vec<Vec<usize>> = match rule {
        DisjointnessRule::TableDisjoint => sets.iter().map(|s| pg.tables_touched(s)).collect(),
        DisjointnessRule::EdgeDisjoint => Vec::new(),
    };
    let mut adj = BitMatrix::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let ok = match rule {
                DisjointnessRule::EdgeDisjoint => edge_sets_disjoint(&sets[i], &sets[j]),
                DisjointnessRule::TableDisjoint => disjoint_sorted(&tables[i], &tables[j]),
            };
            if ok {
                adj.set_pair(i, j);
            }
        }
    }
    adj
}

fn disjoint_sorted(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::generate::{
        random_connected_graph, random_connected_subgraph, RandomGraphConfig,
    };
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_prob::exact::exact_sip;
    use pgs_prob::jpt::JointProbTable;
    use pgs_prob::neighbor::partition_with_triangles;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Figure-1 graph 002 with max-rule tables.
    fn fixture_002() -> ProbabilisticGraph {
        let skeleton = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        ProbabilisticGraph::new(skeleton, vec![t1, t2], true).unwrap()
    }

    fn exact_sip_of(pg: &ProbabilisticGraph, feature: &pgs_graph::model::Graph) -> f64 {
        let outcome = enumerate_embeddings(feature, pg.skeleton(), MatchOptions::default());
        let sets: Vec<EdgeSet> = outcome.embeddings.iter().map(|e| e.edges.clone()).collect();
        exact_sip(pg, &sets).unwrap()
    }

    #[test]
    fn bounds_bracket_the_exact_sip_on_the_fixture() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(1);
        let features = vec![
            GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build(), // a-b
            GraphBuilder::new().vertices(&[1, 2]).edge(0, 1, 9).build(), // b-c
            GraphBuilder::new()
                .vertices(&[0, 0, 1])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .build(), // triangle a-a-b
            GraphBuilder::new()
                .vertices(&[0, 1, 1])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .build(), // path a-b-b
        ];
        for f in &features {
            let bounds = sip_bounds(&pg, f, &BoundsConfig::default(), &mut rng);
            let exact = exact_sip_of(&pg, f);
            assert!(bounds.is_valid(), "bounds {bounds:?} invalid");
            assert!(
                bounds.lower <= exact + 1e-9,
                "lower {} must not exceed exact {exact}",
                bounds.lower
            );
            assert!(
                bounds.upper + 1e-9 >= exact,
                "upper {} must not undercut exact {exact}",
                bounds.upper
            );
        }
    }

    #[test]
    fn absent_feature_has_zero_bounds() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(2);
        let missing = GraphBuilder::new().vertices(&[5, 6]).edge(0, 1, 9).build();
        let bounds = sip_bounds(&pg, &missing, &BoundsConfig::default(), &mut rng);
        assert_eq!(bounds, SipBounds::ABSENT);
    }

    #[test]
    fn empty_feature_is_certain() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(3);
        let empty = pgs_graph::model::Graph::new();
        let bounds = sip_bounds(&pg, &empty, &BoundsConfig::default(), &mut rng);
        assert_eq!(bounds.lower, 1.0);
        assert_eq!(bounds.upper, 1.0);
    }

    #[test]
    fn clique_tightening_is_at_least_as_good_as_greedy() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(4);
        let feature = GraphBuilder::new()
            .vertices(&[0, 1, 1])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let tight = sip_bounds(&pg, &feature, &BoundsConfig::default(), &mut rng);
        let greedy = sip_bounds(&pg, &feature, &BoundsConfig::greedy(), &mut rng);
        assert!(tight.lower + 1e-9 >= greedy.lower);
        assert!(tight.upper <= greedy.upper + 1e-9);
    }

    #[test]
    fn paper_faithful_config_produces_valid_intervals_on_fixture() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(5);
        let feature = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build();
        let bounds = sip_bounds(&pg, &feature, &BoundsConfig::paper_faithful(), &mut rng);
        assert!(bounds.is_valid());
        assert!(bounds.upper > 0.0);
    }

    #[test]
    fn bounds_bracket_exact_sip_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for case in 0..10 {
            let skeleton = random_connected_graph(
                &RandomGraphConfig {
                    vertices: 8,
                    edges: 12,
                    vertex_labels: 3,
                    edge_labels: 1,
                    preferential: false,
                },
                &mut rng,
            );
            let groups = partition_with_triangles(&skeleton, 3);
            let tables: Vec<JointProbTable> = groups
                .iter()
                .map(|grp| {
                    let edge_probs: Vec<(EdgeId, f64)> = grp
                        .iter()
                        .map(|&e| (e, 0.2 + 0.6 * rand::Rng::gen::<f64>(&mut rng)))
                        .collect();
                    JointProbTable::from_max_rule(&edge_probs).unwrap()
                })
                .collect();
            let pg = ProbabilisticGraph::new(skeleton.clone(), tables, true).unwrap();
            let feature = random_connected_subgraph(&skeleton, 2, &mut rng)
                .expect("feature extraction succeeds");
            let bounds = sip_bounds(&pg, &feature, &BoundsConfig::default(), &mut rng);
            let exact = exact_sip_of(&pg, &feature);
            assert!(
                bounds.lower <= exact + 1e-9 && exact <= bounds.upper + 1e-9,
                "case {case}: bounds [{}, {}] do not bracket exact {exact}",
                bounds.lower,
                bounds.upper
            );
        }
    }

    #[test]
    fn compatibility_matrix_rules_differ() {
        let pg = fixture_002();
        // Edges 0 and 1 are edge-disjoint but share table 0; edges 0 and 3 are
        // both edge- and table-disjoint.
        let sets = vec![vec![EdgeId(0)], vec![EdgeId(1)], vec![EdgeId(3)]];
        let edge_adj = compatibility_matrix(&pg, &sets, DisjointnessRule::EdgeDisjoint);
        let table_adj = compatibility_matrix(&pg, &sets, DisjointnessRule::TableDisjoint);
        assert!(edge_adj.get(0, 1));
        assert!(!table_adj.get(0, 1));
        assert!(edge_adj.get(0, 2) && table_adj.get(0, 2));
    }
}
