//! Versioned binary snapshot of the PMI (`Pmi::save` / `Pmi::load`).
//!
//! The paper builds the PMI offline precisely so query time never pays the
//! feature-mining + SIP-bound cost; a process that rebuilds the index on every
//! start pays it anyway.  The snapshot makes the index build-once/load-many.
//!
//! The current format (**v3**) is segmented: a fixed-width prefix and an
//! eagerly-readable head (per-shard churn/offset/length table, graph salts,
//! feature definitions) followed by one self-contained segment per shard
//! (that shard's sparse matrix columns, local support lists and member
//! summaries).  `Pmi::open` reads only the head — O(shards + graphs), not
//! O(bytes) — and materializes a segment the first time its shard is touched;
//! `Pmi::load` stays fully eager.  See the layout comment above the v3
//! section below.
//!
//! The legacy single-segment layout (v1/v2) is still read and written:
//!
//! ```text
//! magic   8  b"PGS-PMI\0"
//! version 4  u32 (1 or 2)
//! fprint  8  u64 fingerprint of the build parameters (threads excluded)
//! params  …  every PmiBuildParams field, fixed-width little-endian
//! build_seconds f64, churn u64
//! ─────────── payload (this part is what PmiStats::size_bytes measures) ───
//! salts    u64 count + one u64 content salt per database graph
//! features u64 count + per feature: name, vertex labels, edges,
//!          support list, frequency, discriminativity
//! matrix   u64 entry count + CSR arrays of the sparse matrix verbatim
//!          (offsets u64, feature ids u32, lower/upper bounds f64)
//! sindex   (v2 only) u64 summary count + per graph: vertex/edge counts,
//!          vertex-label histogram, edge-signature histogram, degree
//!          sequence (posting lists are a deterministic function of the
//!          summaries and are rebuilt on load)
//! ```
//!
//! All multi-byte values are little-endian; `f64`s are written as their IEEE
//! bit patterns, so bounds, frequencies and parameters round-trip exactly and
//! a loaded index answers queries byte-identically to the index that was
//! saved.  The build environment has no serde, hence the hand-rolled codec.
//!
//! Version 1 snapshots (pre-S-Index) still load: they decode to an index
//! without summaries, and `QueryEngine::from_parts` rebuilds the S-Index from
//! the database skeletons it pairs the index with.  `Pmi::to_bytes_versioned`
//! can also *write* version 1 or 2 for old readers (the downgrade path).
//!
//! The salt list in the head ties a snapshot to the database contents it was
//! built from: `QueryEngine::from_parts` recomputes the salts of the database
//! it is given and refuses an index whose columns would not line up.  In v3
//! the salts also carry the shard layout — membership is re-derived via
//! [`crate::shard::members_of`], never stored.

use crate::feature::Feature;
use crate::pmi::PmiBuildParams;
use crate::sindex::StructuralIndex;
use crate::sip_bounds::DisjointnessRule;
use crate::storage::SparseMatrix;
use pgs_graph::arena::FlatVecVec;
use pgs_graph::model::{Graph, Label, VertexId};
use pgs_graph::parallel::derive_seed;
use pgs_graph::summary::{EdgeSignature, StructuralSummary, SummaryView};
use pgs_prob::montecarlo::MonteCarloConfig;
use std::fmt;
use std::path::Path;

/// Magic bytes opening every PMI snapshot.
pub const MAGIC: [u8; 8] = *b"PGS-PMI\0";

/// Current snapshot format version (v3: sharded segments behind a
/// fixed-width head + per-shard offset/length table, so `Pmi::open` can
/// materialize shards lazily).
pub const FORMAT_VERSION: u32 = 3;

/// The single-segment format with an S-Index section; still readable, and
/// writable via `Pmi::to_bytes_versioned` for downgrade scenarios.
pub const FORMAT_V2: u32 = 2;

/// The pre-S-Index format version; still readable, and writable via
/// `Pmi::to_bytes_versioned` for downgrade scenarios.
pub const FORMAT_V1: u32 = 1;

/// Errors surfaced by [`crate::pmi::Pmi::save`] / [`crate::pmi::Pmi::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io(String),
    /// The file does not start with the PMI magic bytes.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file is structurally invalid (truncated, inconsistent counts,
    /// fingerprint mismatch, malformed feature graph, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a PMI snapshot (bad magic bytes)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (expected {FORMAT_VERSION})"
                )
            }
            SnapshotError::Corrupt(why) => write!(f, "corrupt PMI snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The decoded parts of a snapshot, consumed by `Pmi`'s constructor.
pub(crate) struct PmiParts {
    pub params: PmiBuildParams,
    pub build_seconds: f64,
    pub churn: usize,
    pub graph_salts: Vec<u64>,
    pub features: Vec<Feature>,
    pub matrix: SparseMatrix,
    /// `None` for format-v1 snapshots (pre-S-Index).
    pub sindex: Option<StructuralIndex>,
}

/// A borrowed view of the same parts, used by the encoder so serialization
/// never clones the index.
pub(crate) struct PmiPartsRef<'a> {
    pub params: &'a PmiBuildParams,
    pub build_seconds: f64,
    pub churn: usize,
    pub graph_salts: &'a [u64],
    pub features: &'a [Feature],
    pub matrix: &'a SparseMatrix,
    pub sindex: Option<&'a StructuralIndex>,
}

/// A deterministic fingerprint of the build parameters (the query-relevant
/// ones: feature selection, bounds and seed; `threads` only affects wall-clock
/// time and is excluded).  Stored in the header and re-derived on load as a
/// corruption check; callers can also compare it against their own
/// configuration before trusting a foreign index.
pub fn params_fingerprint(params: &PmiBuildParams) -> u64 {
    params_fingerprint_at(params, FORMAT_VERSION)
}

/// The fingerprint as computed by a specific format version: the version
/// constant is mixed into the hash, so a v1 snapshot's stored fingerprint
/// must be verified with the v1 formula.
fn params_fingerprint_at(params: &PmiBuildParams, version: u32) -> u64 {
    let f = &params.features;
    let b = &params.bounds;
    derive_seed(&[
        u64::from(version),
        f.max_l as u64,
        f.alpha.to_bits(),
        f.beta.to_bits(),
        f.gamma.to_bits(),
        f.max_features as u64,
        f.max_embeddings as u64,
        b.max_embeddings as u64,
        b.max_cuts as u64,
        disjointness_tag(b.disjointness) as u64,
        u64::from(b.use_conditional),
        u64::from(b.tighten_with_clique),
        b.mc.tau.to_bits(),
        b.mc.xi.to_bits(),
        b.mc.max_samples as u64,
        params.seed,
    ])
}

fn disjointness_tag(rule: DisjointnessRule) -> u8 {
    match rule {
        DisjointnessRule::TableDisjoint => 0,
        DisjointnessRule::EdgeDisjoint => 1,
    }
}

fn disjointness_from_tag(tag: u8) -> Result<DisjointnessRule, SnapshotError> {
    match tag {
        0 => Ok(DisjointnessRule::TableDisjoint),
        1 => Ok(DisjointnessRule::EdgeDisjoint),
        other => Err(SnapshotError::Corrupt(format!(
            "unknown disjointness rule tag {other}"
        ))),
    }
}

/// Exact byte length of the payload sections (salts + features + matrix +
/// the S-Index section when present) — the real index size reported by
/// `PmiStats::size_bytes`.  Everything before the payload is a fixed-size
/// header of [`header_len`] bytes.
pub(crate) fn payload_len(
    salts: &[u64],
    features: &[Feature],
    matrix: &SparseMatrix,
    sindex: Option<&StructuralIndex>,
) -> usize {
    let salts_len = 8 + 8 * salts.len();
    let features_len: usize = 8 + features.iter().map(feature_len).sum::<usize>();
    let matrix_len = 8 + matrix.payload_bytes();
    let sindex_len = sindex.map_or(0, |s| 8 + s.summary_views().map(summary_len).sum::<usize>());
    salts_len + features_len + matrix_len + sindex_len
}

/// Encoded size of one structural summary.
pub(crate) fn summary_len(s: SummaryView<'_>) -> usize {
    4 + 4
        + 4
        + 8 * s.vertex_labels().len()
        + 4
        + 16 * s.edge_signatures().len()
        + 4
        + 4 * s.degree_sequence().len()
}

/// Byte length of the fixed header (magic + version + fingerprint + params +
/// build seconds + churn counter).
pub(crate) fn header_len() -> usize {
    8 + 4 + 8 + PARAMS_LEN + 8 + 8
}

/// Fixed encoded size of `PmiBuildParams`.
pub(crate) const PARAMS_LEN: usize = 6 * 8 /* feature params */
    + 2 * 8 + 3 /* bounds caps + three flag bytes */
    + 2 * 8 + 8 /* monte-carlo */
    + 2 * 8 /* threads + seed */;

fn feature_len(f: &Feature) -> usize {
    feature_graph_len(f) + 4 + 4 * f.support.len() + 8 + 8
}

/// Encoded size of a v3 feature head record (the graph, a global support
/// *count* instead of the per-graph support list, frequency and
/// discriminativity).
pub(crate) fn feature_head_len(f: &Feature) -> usize {
    feature_graph_len(f) + 4 + 8 + 8
}

fn feature_graph_len(f: &Feature) -> usize {
    4 + f.graph.name().len() + 4 + 4 * f.graph.vertex_count() + 4 + 12 * f.graph.edge_count()
}

/// Encoded size of one v1/v2 feature record when its support list would hold
/// `support` entries — lets the v1 size estimate work on an index whose
/// supports live in shard segments.
pub(crate) fn feature_len_with(f: &Feature, support: usize) -> usize {
    feature_graph_len(f) + 4 + 4 * support + 8 + 8
}

pub(crate) fn encode(parts: &PmiPartsRef<'_>, version: u32) -> Result<Vec<u8>, SnapshotError> {
    if version != FORMAT_V2 && version != FORMAT_V1 {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let sindex = if version >= FORMAT_V2 {
        match parts.sindex {
            Some(s) => Some(s),
            None => {
                return Err(SnapshotError::Corrupt(
                    "cannot encode a v2 snapshot without an S-Index \
                     (pair the index with its database first)"
                        .into(),
                ))
            }
        }
    } else {
        // v1 predates the S-Index section.
        None
    };
    let mut w = Writer::with_capacity(
        header_len() + payload_len(parts.graph_salts, parts.features, parts.matrix, sindex),
    );
    w.bytes(&MAGIC);
    w.u32(version);
    w.u64(params_fingerprint_at(parts.params, version));
    encode_params(&mut w, parts.params);
    w.f64(parts.build_seconds);
    w.u64(parts.churn as u64);

    w.u64(parts.graph_salts.len() as u64);
    for &s in parts.graph_salts {
        w.u64(s);
    }

    w.u64(parts.features.len() as u64);
    for f in parts.features {
        encode_feature(&mut w, f);
    }

    let m = &parts.matrix;
    w.u64(m.feature_ids().len() as u64);
    for &o in m.offsets() {
        w.u64(o as u64);
    }
    for &fi in m.feature_ids() {
        w.u32(fi);
    }
    for &l in m.lowers() {
        w.f64(l);
    }
    for &u in m.uppers() {
        w.f64(u);
    }

    if let Some(s) = sindex {
        w.u64(s.graph_count() as u64);
        for summary in s.summary_views() {
            encode_summary(&mut w, summary);
        }
    }
    Ok(w.out)
}

pub(crate) fn decode(bytes: &[u8]) -> Result<PmiParts, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.bytes(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_V2 && version != FORMAT_V1 {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let stored_fingerprint = r.u64()?;
    let params = decode_params(&mut r)?;
    if params_fingerprint_at(&params, version) != stored_fingerprint {
        return Err(SnapshotError::Corrupt(
            "build-parameter fingerprint does not match the stored parameters".into(),
        ));
    }
    let build_seconds = r.f64()?;
    let churn = r.u64()? as usize;

    let salt_count = r.len_prefixed(8)?;
    let mut graph_salts = Vec::with_capacity(salt_count);
    for _ in 0..salt_count {
        graph_salts.push(r.u64()?);
    }

    // The smallest possible encoded feature (empty name/vertices/edges/support)
    // is 32 bytes; using that as the per-element floor keeps a corrupt count
    // from pre-allocating far beyond the file size.
    let feature_count = r.len_prefixed(32)?;
    let mut features = Vec::with_capacity(feature_count);
    for id in 0..feature_count {
        features.push(decode_feature(&mut r, id, graph_salts.len())?);
    }

    let entry_count = r.len_prefixed(20)?;
    let mut offsets = Vec::with_capacity(graph_salts.len() + 1);
    for _ in 0..graph_salts.len() + 1 {
        offsets.push(r.u64()? as usize);
    }
    let mut feature_ids = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let fi = r.u32()?;
        if fi as usize >= feature_count {
            return Err(SnapshotError::Corrupt(format!(
                "matrix entry references feature {fi} but only {feature_count} features exist"
            )));
        }
        feature_ids.push(fi);
    }
    let mut lowers = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        lowers.push(r.f64()?);
    }
    let mut uppers = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        uppers.push(r.f64()?);
    }

    let sindex = if version >= FORMAT_V2 {
        // The smallest encoded summary (empty graph) is 20 bytes.
        let summary_count = r.len_prefixed(20)?;
        if summary_count != graph_salts.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{summary_count} S-Index summaries but {} graph salts",
                graph_salts.len()
            )));
        }
        let mut summaries = Vec::with_capacity(summary_count);
        for gi in 0..summary_count {
            summaries.push(decode_summary(&mut r, gi)?);
        }
        Some(StructuralIndex::from_summaries(summaries))
    } else {
        None
    };

    if !r.is_empty() {
        return Err(SnapshotError::Corrupt(
            "trailing bytes after the final section".into(),
        ));
    }
    let matrix = SparseMatrix::from_raw(offsets, feature_ids, lowers, uppers)
        .map_err(SnapshotError::Corrupt)?;
    Ok(PmiParts {
        params,
        build_seconds,
        churn,
        graph_salts,
        features,
        matrix,
        sindex,
    })
}

// ---------------------------------------------------------------------------
// Format v3: sharded segments behind an eagerly-readable head.
//
// ```text
// magic 8 | version u32 = 3 | fingerprint u64 | head_len u64
// params (fixed width) | build_seconds f64
// ── head payload ──────────────────────────────────────────────────────────
// shard_count u64
// table: per shard { churn u64, offset u64, length u64 }   (absolute bytes)
// salts:    u64 count + u64 content salt per graph
// features: u64 count + per feature: graph, global support COUNT u32,
//           frequency f64, discriminativity f64
// ── segments (contiguous, tiling [head_len, file_len)) ────────────────────
// per shard: matrix (entry count, CSR offsets over LOCAL columns, ids,
//            bounds), per-feature LOCAL support lists, member summaries
// ```
//
// Shard membership is not stored: it is re-derived from the salts via
// `shard::members_of`, which is exactly how the index assigned it.  The head
// is everything `Pmi::open` reads; a segment is only decoded when its shard
// is first touched.

/// One decoded shard segment of a v3 snapshot.
pub(crate) struct SegmentParts {
    pub matrix: SparseMatrix,
    /// Per feature (row) the local member ids (ascending) passing the α
    /// filter, packed flat.
    pub supports: FlatVecVec<u32>,
    pub sindex: StructuralIndex,
}

/// A borrowed view of one shard segment, used by the v3 encoder.
pub(crate) struct SegmentRef<'a> {
    pub matrix: &'a SparseMatrix,
    pub supports: &'a FlatVecVec<u32>,
    pub sindex: &'a StructuralIndex,
}

/// The fully decoded parts of a v3 snapshot (the eager `Pmi::load` path).
pub(crate) struct ShardedParts {
    pub params: PmiBuildParams,
    pub build_seconds: f64,
    pub graph_salts: Vec<u64>,
    /// Support lists are empty: the per-shard segments hold them.
    pub features: Vec<Feature>,
    pub support_counts: Vec<usize>,
    pub shard_churn: Vec<usize>,
    pub segments: Vec<SegmentParts>,
}

/// A borrowed view of a sharded index, consumed by [`encode_v3`].
pub(crate) struct ShardedPartsRef<'a> {
    pub params: &'a PmiBuildParams,
    pub build_seconds: f64,
    pub graph_salts: &'a [u64],
    pub features: &'a [Feature],
    pub support_counts: &'a [usize],
    pub shard_churn: &'a [usize],
    pub segments: Vec<SegmentRef<'a>>,
}

/// The eagerly-read head of a v3 snapshot: everything except the segments,
/// plus the table telling a lazy reader where each segment lives.
pub(crate) struct V3Head {
    pub params: PmiBuildParams,
    pub build_seconds: f64,
    pub graph_salts: Vec<u64>,
    pub features: Vec<Feature>,
    pub support_counts: Vec<usize>,
    pub shard_churn: Vec<usize>,
    /// Per shard: absolute byte offset and length of its segment.
    pub table: Vec<(u64, u64)>,
}

/// Result of decoding a snapshot of any readable version.  Both variants are
/// boxed: the parts structs are hundreds of bytes and the value is
/// destructured exactly once per load.
pub(crate) enum AnyParts {
    /// Format v1/v2: one global segment.
    Legacy(Box<PmiParts>),
    /// Format v3: per-shard segments.
    V3(Box<ShardedParts>),
}

/// Result of peeking a snapshot file's head without touching segment bytes.
pub(crate) enum OpenedSnapshot {
    /// A v1/v2 file — no segment table, the caller must load it eagerly.
    Legacy,
    /// A v3 file: the decoded head, ready for lazy segment materialization.
    /// Boxed so the no-data `Legacy` variant stays pointer-sized.
    V3(Box<V3Head>),
}

/// Byte length of the fixed v3 prefix (magic + version + fingerprint +
/// head-length field + params + build seconds); everything after it counts
/// as payload for `PmiStats::size_bytes`.
pub(crate) fn header_len_v3() -> usize {
    8 + 4 + 8 + 8 + PARAMS_LEN + 8
}

pub(crate) fn encode_v3(parts: &ShardedPartsRef<'_>) -> Vec<u8> {
    let shard_count = parts.segments.len();
    debug_assert_eq!(parts.shard_churn.len(), shard_count);
    debug_assert_eq!(parts.support_counts.len(), parts.features.len());
    let mut w = Writer::with_capacity(header_len_v3() + 256);
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(params_fingerprint_at(parts.params, FORMAT_VERSION));
    let head_len_pos = w.out.len();
    w.u64(0); // head_len, patched once the head is complete
    encode_params(&mut w, parts.params);
    w.f64(parts.build_seconds);

    w.u64(shard_count as u64);
    let table_pos = w.out.len();
    for &churn in parts.shard_churn {
        w.u64(churn as u64);
        w.u64(0); // offset, patched per segment
        w.u64(0); // length, patched per segment
    }
    w.u64(parts.graph_salts.len() as u64);
    for &s in parts.graph_salts {
        w.u64(s);
    }
    w.u64(parts.features.len() as u64);
    for (f, &count) in parts.features.iter().zip(parts.support_counts) {
        encode_feature_graph(&mut w, &f.graph);
        w.u32(count as u32);
        w.f64(f.frequency);
        w.f64(f.discriminativity);
    }
    let head_len = w.out.len() as u64;
    w.out[head_len_pos..head_len_pos + 8].copy_from_slice(&head_len.to_le_bytes());

    for (s, seg) in parts.segments.iter().enumerate() {
        let start = w.out.len();
        encode_segment(&mut w, seg);
        let len = (w.out.len() - start) as u64;
        let entry = table_pos + s * 24;
        w.out[entry + 8..entry + 16].copy_from_slice(&(start as u64).to_le_bytes());
        w.out[entry + 16..entry + 24].copy_from_slice(&len.to_le_bytes());
    }
    w.out
}

fn encode_segment(w: &mut Writer, seg: &SegmentRef<'_>) {
    let m = seg.matrix;
    w.u64(m.feature_ids().len() as u64);
    for &o in m.offsets() {
        w.u64(o as u64);
    }
    for &fi in m.feature_ids() {
        w.u32(fi);
    }
    for &l in m.lowers() {
        w.f64(l);
    }
    for &u in m.uppers() {
        w.f64(u);
    }
    for sup in seg.supports.iter() {
        w.u32(sup.len() as u32);
        for &l in sup {
            w.u32(l);
        }
    }
    w.u64(seg.sindex.graph_count() as u64);
    for summary in seg.sindex.summary_views() {
        encode_summary(w, summary);
    }
}

fn encode_summary(w: &mut Writer, s: SummaryView<'_>) {
    w.u32(s.vertex_count() as u32);
    w.u32(s.edge_count() as u32);
    w.u32(s.vertex_labels().len() as u32);
    for &(l, c) in s.vertex_labels() {
        w.u32(l.0);
        w.u32(c);
    }
    w.u32(s.edge_signatures().len() as u32);
    for &((el, la, lb), c) in s.edge_signatures() {
        w.u32(el.0);
        w.u32(la.0);
        w.u32(lb.0);
        w.u32(c);
    }
    w.u32(s.degree_sequence().len() as u32);
    for &d in s.degree_sequence() {
        w.u32(d);
    }
}

fn decode_summary(r: &mut Reader, gi: usize) -> Result<StructuralSummary, SnapshotError> {
    let corrupt = |why: String| SnapshotError::Corrupt(format!("S-Index summary {gi}: {why}"));
    let vertex_count = r.u32()?;
    let edge_count = r.u32()?;
    let label_count = r.len_prefixed32(8)?;
    let mut vertex_labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        let l = Label(r.u32()?);
        let c = r.u32()?;
        vertex_labels.push((l, c));
    }
    let sig_count = r.len_prefixed32(16)?;
    let mut edge_signatures: Vec<(EdgeSignature, u32)> = Vec::with_capacity(sig_count);
    for _ in 0..sig_count {
        let sig = (Label(r.u32()?), Label(r.u32()?), Label(r.u32()?));
        let c = r.u32()?;
        edge_signatures.push((sig, c));
    }
    let degree_count = r.len_prefixed32(4)?;
    let mut degree_sequence = Vec::with_capacity(degree_count);
    for _ in 0..degree_count {
        degree_sequence.push(r.u32()?);
    }
    StructuralSummary::from_parts(
        vertex_count,
        edge_count,
        vertex_labels,
        edge_signatures,
        degree_sequence,
    )
    .map_err(corrupt)
}

/// Decodes a snapshot of any readable format version.
pub(crate) fn decode_any(bytes: &[u8]) -> Result<AnyParts, SnapshotError> {
    match peek_version(bytes)? {
        FORMAT_VERSION => decode_v3(bytes).map(|parts| AnyParts::V3(Box::new(parts))),
        _ => decode(bytes).map(|parts| AnyParts::Legacy(Box::new(parts))),
    }
}

/// The format version of a snapshot byte string (after checking the magic).
fn peek_version(bytes: &[u8]) -> Result<u32, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.bytes(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION && version != FORMAT_V2 && version != FORMAT_V1 {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Decodes the v3 head from a reader positioned at byte 0.  On success the
/// reader sits exactly at `head_len` (the start of the first segment).
fn decode_v3_head(r: &mut Reader) -> Result<V3Head, SnapshotError> {
    if r.bytes(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let stored_fingerprint = r.u64()?;
    let head_len = r.u64()? as usize;
    let params = decode_params(r)?;
    if params_fingerprint_at(&params, FORMAT_VERSION) != stored_fingerprint {
        return Err(SnapshotError::Corrupt(
            "build-parameter fingerprint does not match the stored parameters".into(),
        ));
    }
    let build_seconds = r.f64()?;
    let shard_count = r.len_prefixed(24)?;
    if shard_count == 0 || shard_count > crate::shard::MAX_SHARDS {
        return Err(SnapshotError::Corrupt(format!(
            "shard count {shard_count} outside 1..={}",
            crate::shard::MAX_SHARDS
        )));
    }
    let mut shard_churn = Vec::with_capacity(shard_count);
    let mut table = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shard_churn.push(r.u64()? as usize);
        let offset = r.u64()?;
        let len = r.u64()?;
        table.push((offset, len));
    }
    let salt_count = r.len_prefixed(8)?;
    let mut graph_salts = Vec::with_capacity(salt_count);
    for _ in 0..salt_count {
        graph_salts.push(r.u64()?);
    }
    // The smallest v3 feature head record (empty name/vertices/edges) is
    // 32 bytes.
    let feature_count = r.len_prefixed(32)?;
    let mut features = Vec::with_capacity(feature_count);
    let mut support_counts = Vec::with_capacity(feature_count);
    for id in 0..feature_count {
        let graph = decode_feature_graph(r, id)?;
        let count = r.u32()? as usize;
        if count > salt_count {
            return Err(SnapshotError::Corrupt(format!(
                "feature {id}: support count {count} exceeds {salt_count} graphs"
            )));
        }
        let frequency = r.f64()?;
        let discriminativity = r.f64()?;
        features.push(Feature {
            id,
            graph,
            support: Vec::new(),
            frequency,
            discriminativity,
        });
        support_counts.push(count);
    }
    if r.pos != head_len {
        return Err(SnapshotError::Corrupt(format!(
            "head ends at byte {} but the header claims {head_len}",
            r.pos
        )));
    }
    Ok(V3Head {
        params,
        build_seconds,
        graph_salts,
        features,
        support_counts,
        shard_churn,
        table,
    })
}

/// Eagerly decodes a complete v3 snapshot (the `Pmi::load`/`from_bytes`
/// path): head first, then every segment in table order.
pub(crate) fn decode_v3(bytes: &[u8]) -> Result<ShardedParts, SnapshotError> {
    let mut r = Reader::new(bytes);
    let head = decode_v3_head(&mut r)?;
    let members = crate::shard::members_of(&head.graph_salts, head.table.len());
    let mut expected = r.pos as u64;
    let mut segments = Vec::with_capacity(head.table.len());
    for (s, &(offset, len)) in head.table.iter().enumerate() {
        if offset != expected {
            return Err(SnapshotError::Corrupt(format!(
                "segment {s} starts at byte {offset}, expected {expected} \
                 (segments must tile the file contiguously)"
            )));
        }
        let end = offset.checked_add(len).filter(|&e| e <= bytes.len() as u64);
        let Some(end) = end else {
            return Err(SnapshotError::Corrupt(format!(
                "segment {s} ({offset}+{len} bytes) overruns the {}-byte snapshot",
                bytes.len()
            )));
        };
        segments.push(decode_segment(
            &bytes[offset as usize..end as usize],
            s,
            members.row_len(s),
            head.features.len(),
        )?);
        expected = end;
    }
    if expected != bytes.len() as u64 {
        return Err(SnapshotError::Corrupt(
            "trailing bytes after the final segment".into(),
        ));
    }
    Ok(ShardedParts {
        params: head.params,
        build_seconds: head.build_seconds,
        graph_salts: head.graph_salts,
        features: head.features,
        support_counts: head.support_counts,
        shard_churn: head.shard_churn,
        segments,
    })
}

/// Decodes one shard segment from its byte slice.  `member_count` and
/// `feature_count` come from the (already validated) head.
pub(crate) fn decode_segment(
    bytes: &[u8],
    shard: usize,
    member_count: usize,
    feature_count: usize,
) -> Result<SegmentParts, SnapshotError> {
    let corrupt = |why: String| SnapshotError::Corrupt(format!("shard {shard}: {why}"));
    let mut r = Reader::new(bytes);
    let entry_count = r.len_prefixed(20)?;
    let mut offsets = Vec::with_capacity(member_count + 1);
    for _ in 0..member_count + 1 {
        offsets.push(r.u64()? as usize);
    }
    let mut feature_ids = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let fi = r.u32()?;
        if fi as usize >= feature_count {
            return Err(corrupt(format!(
                "matrix entry references feature {fi} but only {feature_count} features exist"
            )));
        }
        feature_ids.push(fi);
    }
    let mut lowers = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        lowers.push(r.f64()?);
    }
    let mut uppers = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        uppers.push(r.f64()?);
    }
    let mut supports = FlatVecVec::with_capacity(feature_count, 0);
    for fi in 0..feature_count {
        let n = r.len_prefixed32(4)?;
        let mut sup = Vec::with_capacity(n);
        for _ in 0..n {
            let l = r.u32()?;
            if l as usize >= member_count {
                return Err(corrupt(format!(
                    "feature {fi} support references member {l} of {member_count}"
                )));
            }
            sup.push(l);
        }
        supports.push_row(sup);
    }
    let summary_count = r.len_prefixed(20)?;
    if summary_count != member_count {
        return Err(corrupt(format!(
            "{summary_count} summaries but {member_count} members"
        )));
    }
    let mut summaries = Vec::with_capacity(summary_count);
    for gi in 0..summary_count {
        summaries.push(decode_summary(&mut r, gi)?);
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after the segment".into()));
    }
    let matrix = SparseMatrix::from_raw(offsets, feature_ids, lowers, uppers).map_err(corrupt)?;
    Ok(SegmentParts {
        matrix,
        supports,
        sindex: StructuralIndex::from_summaries(summaries),
    })
}

/// Reads a snapshot file's head without touching any segment bytes: the
/// O(head) part of `Pmi::open`.  Returns [`OpenedSnapshot::Legacy`] for v1/v2
/// files (no segment table — the caller falls back to an eager load, which
/// also produces the right error for garbage files too short to classify).
pub(crate) fn open_head(path: &Path) -> Result<OpenedSnapshot, SnapshotError> {
    use std::io::Read as _;
    let io_err = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
    let mut file = std::fs::File::open(path).map_err(io_err)?;
    let file_len = file.metadata().map_err(io_err)?.len();
    let mut prefix = vec![0u8; (file_len.min(28)) as usize];
    file.read_exact(&mut prefix).map_err(io_err)?;
    if prefix.len() < 12 || prefix[..8] != MAGIC {
        return Ok(OpenedSnapshot::Legacy);
    }
    let version = u32::from_le_bytes(fixed::<4>(&prefix[8..12])?);
    if version != FORMAT_VERSION {
        return Ok(OpenedSnapshot::Legacy);
    }
    if prefix.len() < 28 {
        return Err(SnapshotError::Corrupt(
            "v3 snapshot truncated inside the fixed prefix".into(),
        ));
    }
    let head_len = u64::from_le_bytes(fixed::<8>(&prefix[20..28])?);
    if head_len < 28 || head_len > file_len {
        return Err(SnapshotError::Corrupt(format!(
            "head length {head_len} outside the {file_len}-byte file"
        )));
    }
    let mut head_bytes = prefix;
    head_bytes.resize(head_len as usize, 0);
    file.read_exact(&mut head_bytes[28..]).map_err(io_err)?;
    let mut r = Reader::new(&head_bytes);
    let head = decode_v3_head(&mut r)?;
    // Validate the table against the real file size now, so a truncated v3
    // file fails at open time rather than panicking at first shard touch.
    let mut expected = head_len;
    for (s, &(offset, len)) in head.table.iter().enumerate() {
        if offset != expected {
            return Err(SnapshotError::Corrupt(format!(
                "segment {s} starts at byte {offset}, expected {expected} \
                 (segments must tile the file contiguously)"
            )));
        }
        expected = offset
            .checked_add(len)
            .ok_or_else(|| SnapshotError::Corrupt(format!("segment {s} offset overflow")))?;
    }
    if expected != file_len {
        return Err(SnapshotError::Corrupt(format!(
            "segments end at byte {expected} but the file is {file_len} bytes"
        )));
    }
    Ok(OpenedSnapshot::V3(Box::new(head)))
}

/// Reads and decodes one shard segment straight from the file — the lazy
/// materialization path behind `Pmi::open`.
pub(crate) fn load_segment_from_file(
    path: &Path,
    offset: u64,
    len: u64,
    shard: usize,
    member_count: usize,
    feature_count: usize,
) -> Result<SegmentParts, SnapshotError> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    let io_err = |e: std::io::Error| SnapshotError::Io(format!("{}: {e}", path.display()));
    let mut file = std::fs::File::open(path).map_err(io_err)?;
    file.seek(SeekFrom::Start(offset)).map_err(io_err)?;
    let mut buf = vec![0u8; len as usize];
    file.read_exact(&mut buf).map_err(io_err)?;
    decode_segment(&buf, shard, member_count, feature_count)
}

/// Writes `bytes` to `path` atomically enough for our purposes (truncate +
/// write + flush via `std::fs::write`).
pub(crate) fn write_file(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    std::fs::write(path, bytes).map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
}

pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    std::fs::read(path).map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))
}

fn encode_params(w: &mut Writer, p: &PmiBuildParams) {
    let f = &p.features;
    w.u64(f.max_l as u64);
    w.f64(f.alpha);
    w.f64(f.beta);
    w.f64(f.gamma);
    w.u64(f.max_features as u64);
    w.u64(f.max_embeddings as u64);
    let b = &p.bounds;
    w.u64(b.max_embeddings as u64);
    w.u64(b.max_cuts as u64);
    w.u8(disjointness_tag(b.disjointness));
    w.u8(u8::from(b.use_conditional));
    w.u8(u8::from(b.tighten_with_clique));
    w.f64(b.mc.tau);
    w.f64(b.mc.xi);
    w.u64(b.mc.max_samples as u64);
    w.u64(p.threads as u64);
    w.u64(p.seed);
}

fn decode_params(r: &mut Reader) -> Result<PmiBuildParams, SnapshotError> {
    let mut params = PmiBuildParams::default();
    let f = &mut params.features;
    f.max_l = r.u64()? as usize;
    f.alpha = r.f64()?;
    f.beta = r.f64()?;
    f.gamma = r.f64()?;
    f.max_features = r.u64()? as usize;
    f.max_embeddings = r.u64()? as usize;
    let b = &mut params.bounds;
    b.max_embeddings = r.u64()? as usize;
    b.max_cuts = r.u64()? as usize;
    b.disjointness = disjointness_from_tag(r.u8()?)?;
    b.use_conditional = r.u8()? != 0;
    b.tighten_with_clique = r.u8()? != 0;
    b.mc = MonteCarloConfig {
        tau: r.f64()?,
        xi: r.f64()?,
        max_samples: r.u64()? as usize,
    };
    params.threads = r.u64()? as usize;
    params.seed = r.u64()?;
    Ok(params)
}

fn encode_feature_graph(w: &mut Writer, g: &Graph) {
    w.u32(g.name().len() as u32);
    w.bytes(g.name().as_bytes());
    w.u32(g.vertex_count() as u32);
    for &l in g.vertex_labels() {
        w.u32(l.0);
    }
    w.u32(g.edge_count() as u32);
    for (_, e) in g.edge_entries() {
        w.u32(e.u.0);
        w.u32(e.v.0);
        w.u32(e.label.0);
    }
}

fn encode_feature(w: &mut Writer, f: &Feature) {
    encode_feature_graph(w, &f.graph);
    w.u32(f.support.len() as u32);
    for &gi in &f.support {
        w.u32(gi as u32);
    }
    w.f64(f.frequency);
    w.f64(f.discriminativity);
}

fn decode_feature_graph(r: &mut Reader, id: usize) -> Result<Graph, SnapshotError> {
    let name_len = r.len_prefixed32(1)?;
    let name = String::from_utf8(r.bytes(name_len)?.to_vec())
        .map_err(|_| SnapshotError::Corrupt(format!("feature {id}: name is not UTF-8")))?;
    let mut graph = Graph::with_name(name);
    let vertex_count = r.len_prefixed32(4)?;
    for _ in 0..vertex_count {
        graph.add_vertex(Label(r.u32()?));
    }
    let edge_count = r.len_prefixed32(12)?;
    for _ in 0..edge_count {
        let (u, v, l) = (r.u32()?, r.u32()?, r.u32()?);
        graph
            .add_edge(VertexId(u), VertexId(v), Label(l))
            .map_err(|e| SnapshotError::Corrupt(format!("feature {id}: invalid edge: {e}")))?;
    }
    Ok(graph)
}

fn decode_feature(r: &mut Reader, id: usize, graph_count: usize) -> Result<Feature, SnapshotError> {
    let graph = decode_feature_graph(r, id)?;
    let support_len = r.len_prefixed32(4)?;
    let mut support = Vec::with_capacity(support_len);
    for _ in 0..support_len {
        let gi = r.u32()? as usize;
        if gi >= graph_count {
            return Err(SnapshotError::Corrupt(format!(
                "feature {id}: support references graph {gi} of {graph_count}"
            )));
        }
        support.push(gi);
    }
    let frequency = r.f64()?;
    let discriminativity = r.f64()?;
    Ok(Feature {
        id,
        graph,
        support,
        frequency,
        discriminativity,
    })
}

// ---------------------------------------------------------------------------
// Little-endian writer/reader primitives.

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn with_capacity(n: usize) -> Writer {
        Writer {
            out: Vec::with_capacity(n),
        }
    }
    fn u8(&mut self, x: u8) {
        self.out.push(x);
    }
    fn u32(&mut self, x: u32) {
        self.out.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.out.extend_from_slice(&x.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
}

/// Converts a length-checked slice into a fixed-size array with a typed
/// error instead of a panic path.  The mismatch arm is unreachable as long as
/// every caller pairs `fixed::<N>` with an `N`-byte slice, but snapshot
/// loading is a hard no-panic zone (`panic-in-library`): a future refactor
/// that breaks the pairing must surface as a [`SnapshotError::Corrupt`] a
/// caller can handle, never as a process abort mid-load.
fn fixed<const N: usize>(b: &[u8]) -> Result<[u8; N], SnapshotError> {
    b.try_into().map_err(|_| {
        SnapshotError::Corrupt(format!(
            "internal: expected a {N}-byte field, got {} bytes",
            b.len()
        ))
    })
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes(fixed::<4>(b)?))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(fixed::<8>(b)?))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` length prefix and sanity-checks it against the remaining
    /// bytes (each element needs at least `min_elem_bytes`), so a corrupt
    /// length cannot trigger a giant allocation.
    fn len_prefixed(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "length prefix {n} exceeds the remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// `u32` variant of [`Reader::len_prefixed`].
    fn len_prefixed32(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "length prefix {n} exceeds the remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sip_bounds::SipBounds;
    use pgs_graph::model::GraphBuilder;

    fn encode_parts_at(parts: &PmiParts, version: u32) -> Result<Vec<u8>, SnapshotError> {
        encode(
            &PmiPartsRef {
                params: &parts.params,
                build_seconds: parts.build_seconds,
                churn: parts.churn,
                graph_salts: &parts.graph_salts,
                features: &parts.features,
                matrix: &parts.matrix,
                sindex: parts.sindex.as_ref(),
            },
            version,
        )
    }

    fn encode_parts(parts: &PmiParts) -> Vec<u8> {
        encode_parts_at(parts, FORMAT_V2).unwrap()
    }

    fn sample_parts() -> PmiParts {
        let fg = GraphBuilder::new()
            .name("f0")
            .vertices(&[0, 1])
            .edge(0, 1, 9)
            .build();
        let g0 = GraphBuilder::new()
            .name("g0")
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let g1 = GraphBuilder::new().name("g1").vertices(&[4, 4]).build();
        let mut matrix = SparseMatrix::new();
        matrix.push_column(vec![(
            0,
            SipBounds {
                lower: 0.25,
                upper: 0.75,
            },
        )]);
        matrix.push_column(vec![]);
        PmiParts {
            params: PmiBuildParams::default(),
            build_seconds: 0.125,
            churn: 3,
            graph_salts: vec![11, 22],
            features: vec![Feature {
                id: 0,
                graph: fg,
                support: vec![0],
                frequency: 0.5,
                discriminativity: 1.0,
            }],
            matrix,
            sindex: Some(StructuralIndex::build(&[g0, g1])),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let parts = sample_parts();
        let bytes = encode_parts(&parts);
        assert_eq!(
            bytes.len(),
            header_len()
                + payload_len(
                    &parts.graph_salts,
                    &parts.features,
                    &parts.matrix,
                    parts.sindex.as_ref()
                )
        );
        let back = decode(&bytes).unwrap();
        assert_eq!(back.build_seconds, parts.build_seconds);
        assert_eq!(back.churn, parts.churn);
        assert_eq!(back.graph_salts, parts.graph_salts);
        assert_eq!(back.matrix, parts.matrix);
        assert_eq!(back.features.len(), 1);
        assert_eq!(back.features[0].graph, parts.features[0].graph);
        assert_eq!(back.features[0].graph.name(), "f0");
        assert_eq!(back.features[0].support, vec![0]);
        assert_eq!(back.features[0].frequency, 0.5);
        assert_eq!(back.sindex, parts.sindex);
        assert_eq!(
            params_fingerprint(&back.params),
            params_fingerprint(&parts.params)
        );
    }

    #[test]
    fn v1_snapshots_encode_and_decode_without_an_sindex() {
        let parts = sample_parts();
        let v1 = encode_parts_at(&parts, FORMAT_V1).unwrap();
        assert!(v1.len() < encode_parts(&parts).len());
        let back = decode(&v1).unwrap();
        assert!(back.sindex.is_none());
        assert_eq!(back.graph_salts, parts.graph_salts);
        assert_eq!(back.matrix, parts.matrix);
        // The v1 fingerprint is the v1 formula, not the current one.
        assert_eq!(
            u64::from_le_bytes(v1[12..20].try_into().unwrap()),
            params_fingerprint_at(&parts.params, FORMAT_V1)
        );
    }

    #[test]
    fn encoding_rejects_unknown_versions_and_a_missing_sindex() {
        let mut parts = sample_parts();
        assert!(matches!(
            encode_parts_at(&parts, 7),
            Err(SnapshotError::UnsupportedVersion(7))
        ));
        parts.sindex = None;
        match encode_parts_at(&parts, FORMAT_V2) {
            Err(SnapshotError::Corrupt(why)) => assert!(why.contains("S-Index")),
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
        // ...but v1 encoding works without one.
        assert!(encode_parts_at(&parts, FORMAT_V1).is_ok());
    }

    #[test]
    fn summary_count_mismatch_is_rejected() {
        let mut parts = sample_parts();
        let extra = GraphBuilder::new().vertices(&[0]).build();
        if let Some(s) = &mut parts.sindex {
            s.append(&extra);
        }
        let bytes = encode_parts(&parts);
        match decode(&bytes) {
            Err(SnapshotError::Corrupt(why)) => assert!(why.contains("summaries")),
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_parts(&sample_parts());
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode_parts(&sample_parts());
        bytes[8] = 0xEE;
        match decode(&bytes) {
            Err(SnapshotError::UnsupportedVersion(_)) => {}
            other => panic!("expected UnsupportedVersion, got {:?}", other.err()),
        }
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let bytes = encode_parts(&sample_parts());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).err().expect("truncation must fail");
            assert!(
                matches!(err, SnapshotError::Corrupt(_) | SnapshotError::BadMagic),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn fixed_width_fields_error_instead_of_panicking() {
        // Regression: the fixed-width LE field reads (`Reader::u32`/`u64`,
        // the v3 prefix in `open_head`) used to be `try_into().expect(…)`
        // panic paths; malformed input must surface as typed errors instead.
        match fixed::<4>(&[1, 2, 3]) {
            Err(SnapshotError::Corrupt(why)) => assert!(why.contains("4-byte")),
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
        assert!(matches!(
            Reader::new(&[0; 3]).u32(),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(matches!(
            Reader::new(&[0; 7]).u64(),
            Err(SnapshotError::Corrupt(_))
        ));

        // A v3 file cut anywhere inside its fixed prefix must come back from
        // `open_head` as a typed error (or the legacy fallback for cuts too
        // short to classify) — never a panic.
        let bytes = sample_v3();
        let dir = std::env::temp_dir().join("pgs-snapshot-fixed-width-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        for cut in [0, 5, 9, 12, 13, 20, 27] {
            let path = dir.join(format!("cut{cut}.bin"));
            std::fs::write(&path, &bytes[..cut]).expect("write truncated snapshot");
            match open_head(&path) {
                Ok(OpenedSnapshot::Legacy) | Err(SnapshotError::Corrupt(_)) => {}
                Ok(OpenedSnapshot::V3(_)) => panic!("cut at {cut}: classified as v3"),
                Err(e) => panic!("cut at {cut}: unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let mut bytes = encode_parts(&sample_parts());
        // Flip a bit inside the stored parameters (after magic+version+fprint).
        let off = 8 + 4 + 8 + 2;
        bytes[off] ^= 0x01;
        match decode(&bytes) {
            Err(SnapshotError::Corrupt(why)) => assert!(why.contains("fingerprint")),
            other => panic!("expected Corrupt(fingerprint), got {:?}", other.err()),
        }
    }

    #[test]
    fn fingerprint_ignores_threads() {
        let a = PmiBuildParams {
            threads: 1,
            ..PmiBuildParams::default()
        };
        let mut b = PmiBuildParams {
            threads: 8,
            ..PmiBuildParams::default()
        };
        assert_eq!(params_fingerprint(&a), params_fingerprint(&b));
        b.seed = 999;
        assert_ne!(params_fingerprint(&a), params_fingerprint(&b));
    }

    /// A hand-built 3-shard v3 snapshot over 4 graphs: membership is derived
    /// from the salts exactly the way the codec re-derives it.
    fn sample_v3() -> Vec<u8> {
        let salts = vec![11u64, 22, 33, 44];
        let shards = 3;
        let members = crate::shard::members_of(&salts, shards);
        let feature = Feature {
            id: 0,
            graph: GraphBuilder::new()
                .name("f0")
                .vertices(&[0, 1])
                .edge(0, 1, 9)
                .build(),
            support: Vec::new(),
            frequency: 0.5,
            discriminativity: 1.0,
        };
        let mut matrices = Vec::new();
        let mut supports = Vec::new();
        let mut sindexes = Vec::new();
        for m in members.iter() {
            let mut matrix = SparseMatrix::new();
            for l in 0..m.len() {
                if l == 0 {
                    matrix.push_column(vec![(
                        0,
                        SipBounds {
                            lower: 0.25,
                            upper: 0.75,
                        },
                    )]);
                } else {
                    matrix.push_column(vec![]);
                }
            }
            supports.push(FlatVecVec::from_rows(vec![if m.is_empty() {
                vec![]
            } else {
                vec![0u32]
            }]));
            let graphs: Vec<_> = m
                .iter()
                .map(|_| GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build())
                .collect();
            sindexes.push(StructuralIndex::build(&graphs));
            matrices.push(matrix);
        }
        let support_counts = vec![members.iter().filter(|m| !m.is_empty()).count()];
        encode_v3(&ShardedPartsRef {
            params: &PmiBuildParams::default(),
            build_seconds: 0.5,
            graph_salts: &salts,
            features: std::slice::from_ref(&feature),
            support_counts: &support_counts,
            shard_churn: &[0, 2, 0],
            segments: (0..shards)
                .map(|s| SegmentRef {
                    matrix: &matrices[s],
                    supports: &supports[s],
                    sindex: &sindexes[s],
                })
                .collect(),
        })
    }

    #[test]
    fn v3_round_trips_through_decode_any() {
        let bytes = sample_v3();
        let parts = match decode_any(&bytes).unwrap() {
            AnyParts::V3(p) => p,
            AnyParts::Legacy(_) => panic!("expected a v3 decode"),
        };
        assert_eq!(parts.graph_salts, vec![11, 22, 33, 44]);
        assert_eq!(parts.shard_churn, vec![0, 2, 0]);
        assert_eq!(parts.build_seconds, 0.5);
        assert_eq!(parts.features.len(), 1);
        assert!(parts.features[0].support.is_empty());
        let members = crate::shard::members_of(&parts.graph_salts, 3);
        let mut total_members = 0;
        for (seg, m) in parts.segments.iter().zip(members.iter()) {
            assert_eq!(seg.matrix.column_count(), m.len());
            assert_eq!(seg.sindex.graph_count(), m.len());
            assert_eq!(seg.supports.len(), 1);
            total_members += m.len();
        }
        assert_eq!(total_members, 4);
        // Re-encoding the decoded parts is byte-identical.
        let again = encode_v3(&ShardedPartsRef {
            params: &parts.params,
            build_seconds: parts.build_seconds,
            graph_salts: &parts.graph_salts,
            features: &parts.features,
            support_counts: &parts.support_counts,
            shard_churn: &parts.shard_churn,
            segments: parts
                .segments
                .iter()
                .map(|s| SegmentRef {
                    matrix: &s.matrix,
                    supports: &s.supports,
                    sindex: &s.sindex,
                })
                .collect(),
        });
        assert_eq!(again, bytes);
    }

    #[test]
    fn v3_truncation_is_rejected_everywhere() {
        let bytes = sample_v3();
        for cut in 0..bytes.len() {
            let err = decode_any(&bytes[..cut])
                .err()
                .expect("truncation must fail");
            assert!(
                matches!(err, SnapshotError::Corrupt(_) | SnapshotError::BadMagic),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn v3_rejects_a_zero_shard_count() {
        let mut bytes = sample_v3();
        // shard_count sits right after the fixed prefix.
        let off = header_len_v3();
        bytes[off..off + 8].copy_from_slice(&0u64.to_le_bytes());
        match decode_any(&bytes) {
            Err(SnapshotError::Corrupt(why)) => assert!(why.contains("shard count")),
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
    }

    #[test]
    fn v3_rejects_a_non_contiguous_segment_table() {
        let mut bytes = sample_v3();
        // First segment offset sits 8 bytes into the first table entry.
        let off = header_len_v3() + 8 + 8;
        let stored = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        bytes[off..off + 8].copy_from_slice(&(stored + 1).to_le_bytes());
        match decode_any(&bytes) {
            Err(SnapshotError::Corrupt(why)) => assert!(why.contains("contiguous")),
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
    }

    #[test]
    fn display_messages() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
        assert!(SnapshotError::Io("x".into()).to_string().contains('x'));
        assert!(SnapshotError::Corrupt("y".into()).to_string().contains('y'));
    }
}
