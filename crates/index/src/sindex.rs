//! The S-Index: a persistent structural candidate index.
//!
//! Phase 1 of the query pipeline (structural pruning, Theorem 1) is a
//! Grafil-style feature-count filter followed by an exact subgraph-distance
//! check.  The original implementation scanned the whole database per query
//! and rebuilt `edge_signature_histogram()` for every candidate skeleton on
//! every query — O(queries × graphs) histogram allocations.  Grafil and later
//! filter–verify systems precompute per-graph feature summaries plus an
//! inverted index exactly to avoid this; the S-Index is that structure:
//!
//! * one immutable [`StructuralSummary`] per database graph (edge-signature
//!   histogram, vertex-label multiset, vertex/edge counts, degree sequence),
//!   computed once at index build time, and
//! * an inverted **posting list** `edge signature → [(graph, count)]` over
//!   those summaries.
//!
//! Candidate generation walks only the posting lists of the *query's*
//! signatures and accumulates, per touched graph, the matched occurrence mass
//! `Σ_sig min(count_q(sig), count_g(sig))`.  The Grafil deficit
//! `Σ_sig max(0, count_q − count_g)` equals `|E(q)| −` that mass, so a graph
//! passes the filter iff its mass reaches `|E(q)| − δ` — graphs sharing no
//! signature with the query are never touched at all, which makes phase 1
//! sublinear in the database size for selective queries.  The returned set is
//! *identical* to brute-forcing `passes_feature_count_filter` over every
//! graph (a property test pins this).
//!
//! The S-Index is persisted as a versioned section of the PMI snapshot
//! (format v2, see [`crate::snapshot`]); only the summaries are written —
//! posting lists are a deterministic function of the summaries and are
//! rebuilt on load.

use pgs_graph::model::Graph;
use pgs_graph::summary::{EdgeSignature, StructuralSummary};
use std::collections::BTreeMap;

/// One posting entry: a graph containing the signature, with its multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingEntry {
    /// Index of the graph (database/PMI column order).
    pub graph: u32,
    /// Number of occurrences of the signature in that graph.
    pub count: u32,
}

/// Outcome of posting-list candidate generation
/// ([`StructuralIndex::filter_candidates`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Graphs passing the deficit filter, ascending — exactly the set the
    /// brute-force per-graph filter would keep.
    pub candidates: Vec<usize>,
    /// Posting entries walked while accumulating (the work the filter
    /// actually did; reported in `PhaseStats`).
    pub posting_entries_scanned: usize,
}

/// The structural candidate index (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StructuralIndex {
    summaries: Vec<StructuralSummary>,
    /// `signature → postings`, graph indices ascending within each list.
    postings: BTreeMap<EdgeSignature, Vec<PostingEntry>>,
}

impl StructuralIndex {
    /// Builds the index over database skeletons.
    pub fn build(skeletons: &[Graph]) -> StructuralIndex {
        StructuralIndex::from_summaries(skeletons.iter().map(StructuralSummary::of).collect())
    }

    /// Rebuilds the index from per-graph summaries (the snapshot decode path);
    /// posting lists are derived deterministically from the summaries.
    pub fn from_summaries(summaries: Vec<StructuralSummary>) -> StructuralIndex {
        let mut index = StructuralIndex {
            summaries: Vec::new(),
            postings: BTreeMap::new(),
        };
        for summary in summaries {
            index.append_summary(summary);
        }
        index
    }

    /// Number of indexed graphs.
    pub fn graph_count(&self) -> usize {
        self.summaries.len()
    }

    /// The per-graph summaries, in graph order.
    pub fn summaries(&self) -> &[StructuralSummary] {
        &self.summaries
    }

    /// The summary of graph `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn summary(&self, g: usize) -> &StructuralSummary {
        &self.summaries[g]
    }

    /// Number of distinct edge signatures across the index.
    pub fn signature_count(&self) -> usize {
        self.postings.len()
    }

    /// Total posting entries (Σ per-signature list lengths).
    pub fn posting_entry_count(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// Appends one graph at the next index.
    pub fn append(&mut self, skeleton: &Graph) {
        self.append_summary(StructuralSummary::of(skeleton));
    }

    /// Appends one precomputed summary at the next index.
    pub fn append_summary(&mut self, summary: StructuralSummary) {
        let graph = self.summaries.len() as u32;
        for &(sig, count) in summary.edge_signatures() {
            self.postings
                .entry(sig)
                .or_default()
                .push(PostingEntry { graph, count });
        }
        self.summaries.push(summary);
    }

    /// Removes graph `index`, shifting every later graph down by one
    /// (mirroring `Vec::remove` on the database and PMI side).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove(&mut self, index: usize) {
        assert!(
            index < self.summaries.len(),
            "remove: graph {index} out of range ({} graphs)",
            self.summaries.len()
        );
        let removed = self.summaries.remove(index);
        let gi = index as u32;
        for &(sig, _) in removed.edge_signatures() {
            let list = self
                .postings
                .get_mut(&sig)
                .expect("posting list of a summarised signature exists");
            list.retain(|e| e.graph != gi);
            if list.is_empty() {
                self.postings.remove(&sig);
            }
        }
        for list in self.postings.values_mut() {
            for e in list.iter_mut() {
                if e.graph > gi {
                    e.graph -= 1;
                }
            }
        }
    }

    /// Posting-list candidate generation: all graphs whose Grafil
    /// edge-signature deficit against `query` is at most `delta`, ascending.
    ///
    /// When `|E(q)| ≤ δ` the filter is vacuous (every graph passes — the
    /// cheap residual set); otherwise only graphs appearing in at least one
    /// of the query's posting lists are touched.
    pub fn filter_candidates(&self, query: &StructuralSummary, delta: usize) -> FilterOutcome {
        let m = query.edge_count();
        if m <= delta {
            return FilterOutcome {
                candidates: (0..self.summaries.len()).collect(),
                posting_entries_scanned: 0,
            };
        }
        let need = (m - delta) as u32;
        let mut matched: BTreeMap<u32, u32> = BTreeMap::new();
        let mut scanned = 0usize;
        for &(sig, qc) in query.edge_signatures() {
            if let Some(list) = self.postings.get(&sig) {
                scanned += list.len();
                for e in list {
                    *matched.entry(e.graph).or_insert(0) += qc.min(e.count);
                }
            }
        }
        FilterOutcome {
            candidates: matched
                .into_iter()
                .filter(|&(_, mass)| mass >= need)
                .map(|(g, _)| g as usize)
                .collect(),
            posting_entries_scanned: scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::GraphBuilder;
    use pgs_graph::summary::StructuralSummary;

    fn skeletons() -> Vec<Graph> {
        vec![
            // 0: triangle a-b-d.
            GraphBuilder::new()
                .vertices(&[0, 1, 3])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .build(),
            // 1: the 5-edge graph 002.
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 2])
                .edge(0, 1, 9)
                .edge(0, 2, 9)
                .edge(1, 2, 9)
                .edge(2, 3, 9)
                .edge(2, 4, 9)
                .build(),
            // 2: exact super-graph of the a-b-c triangle.
            GraphBuilder::new()
                .vertices(&[0, 1, 2, 5])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .edge(2, 3, 9)
                .build(),
            // 3: unrelated labels entirely.
            GraphBuilder::new()
                .vertices(&[7, 8, 9])
                .edge(0, 1, 1)
                .edge(1, 2, 1)
                .build(),
        ]
    }

    fn query() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    /// The brute-force reference: graph indices passing the per-graph Grafil
    /// deficit filter.
    fn brute(skeletons: &[Graph], q: &Graph, delta: usize) -> Vec<usize> {
        let qs = StructuralSummary::of(q);
        skeletons
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                q.edge_count() <= delta
                    || qs.signature_deficit(&StructuralSummary::of(g), delta) <= delta
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn filter_matches_the_bruteforce_reference() {
        let db = skeletons();
        let index = StructuralIndex::build(&db);
        let q = query();
        let qs = StructuralSummary::of(&q);
        for delta in 0..=4 {
            let outcome = index.filter_candidates(&qs, delta);
            assert_eq!(outcome.candidates, brute(&db, &q, delta), "delta = {delta}");
        }
        // δ ≥ |E(q)|: the vacuous residual set, no postings touched.
        let all = index.filter_candidates(&qs, 3);
        assert_eq!(all.candidates, vec![0, 1, 2, 3]);
        assert_eq!(all.posting_entries_scanned, 0);
        // Selective δ: the unrelated graph 3 is never touched.
        let tight = index.filter_candidates(&qs, 0);
        assert_eq!(tight.candidates, vec![2]);
        assert!(tight.posting_entries_scanned > 0);
    }

    #[test]
    fn append_and_remove_mirror_a_fresh_build() {
        let db = skeletons();
        let full = StructuralIndex::build(&db);
        // Build incrementally.
        let mut incremental = StructuralIndex::default();
        for g in &db {
            incremental.append(g);
        }
        assert_eq!(incremental, full);
        // Remove a middle graph: equals a build without it.
        let mut removed = full.clone();
        removed.remove(1);
        let without: Vec<Graph> = db
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, g)| g.clone())
            .collect();
        assert_eq!(removed, StructuralIndex::build(&without));
        // Re-append restores a permuted-equal index of the same summaries.
        removed.append(&db[1]);
        assert_eq!(removed.graph_count(), db.len());
        assert_eq!(removed.posting_entry_count(), full.posting_entry_count());
    }

    #[test]
    fn from_summaries_round_trips() {
        let db = skeletons();
        let full = StructuralIndex::build(&db);
        let rebuilt = StructuralIndex::from_summaries(full.summaries().to_vec());
        assert_eq!(rebuilt, full);
        assert_eq!(rebuilt.signature_count(), full.signature_count());
    }

    #[test]
    fn empty_index() {
        let index = StructuralIndex::build(&[]);
        assert_eq!(index.graph_count(), 0);
        assert_eq!(index.posting_entry_count(), 0);
        let qs = StructuralSummary::of(&query());
        assert!(index.filter_candidates(&qs, 1).candidates.is_empty());
    }
}
