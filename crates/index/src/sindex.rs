//! The S-Index: a persistent structural candidate index.
//!
//! Phase 1 of the query pipeline (structural pruning, Theorem 1) is a
//! Grafil-style feature-count filter followed by an exact subgraph-distance
//! check.  The original implementation scanned the whole database per query
//! and rebuilt `edge_signature_histogram()` for every candidate skeleton on
//! every query — O(queries × graphs) histogram allocations.  Grafil and later
//! filter–verify systems precompute per-graph feature summaries plus an
//! inverted index exactly to avoid this; the S-Index is that structure:
//!
//! * one immutable structural summary per database graph (edge-signature
//!   histogram, vertex-label multiset, vertex/edge counts, degree sequence),
//!   computed once at index build time, and
//! * an inverted **posting list** `edge signature → [(graph, count)]` over
//!   those summaries.
//!
//! Candidate generation walks only the posting lists of the *query's*
//! signatures and accumulates, per touched graph, the matched occurrence mass
//! `Σ_sig min(count_q(sig), count_g(sig))`.  The Grafil deficit
//! `Σ_sig max(0, count_q − count_g)` equals `|E(q)| −` that mass, so a graph
//! passes the filter iff its mass reaches `|E(q)| − δ` — graphs sharing no
//! signature with the query are never touched at all, which makes phase 1
//! sublinear in the database size for selective queries.  The returned set is
//! *identical* to brute-forcing `passes_feature_count_filter` over every
//! graph (a property test pins this).
//!
//! # Columnar layout
//!
//! The whole index lives in flat arenas ([`FlatVecVec`]): one arena per
//! database for each summary column (vertex-label histograms, edge-signature
//! histograms, degree sequences) and one for the posting lists (a sorted
//! signature-key table plus an offsets+entries pair).  Per-graph summaries
//! are handed out as borrowed [`SummaryView`]s — no per-graph `Vec`s exist
//! anywhere — and the posting scan walks one contiguous entry slice per query
//! signature.  Mutation (append/remove, the churn path) rebuilds the affected
//! arenas in a single O(total) pass; queries dominate churn by orders of
//! magnitude, so the flat read path wins.
//!
//! The S-Index is persisted as a versioned section of the PMI snapshot
//! (format v2, see [`crate::snapshot`]); only the summaries are written —
//! posting lists are a deterministic function of the summaries and are
//! rebuilt on load.

use pgs_graph::arena::FlatVecVec;
use pgs_graph::model::{Graph, Label};
use pgs_graph::summary::{EdgeSignature, StructuralSummary, SummaryView};

/// One posting entry: a graph containing the signature, with its multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingEntry {
    /// Index of the graph (database/PMI column order).
    pub graph: u32,
    /// Number of occurrences of the signature in that graph.
    pub count: u32,
}

/// Outcome of posting-list candidate generation
/// ([`StructuralIndex::filter_candidates`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterOutcome {
    /// Graphs passing the deficit filter, ascending — exactly the set the
    /// brute-force per-graph filter would keep.
    pub candidates: Vec<usize>,
    /// Posting entries walked while accumulating (the work the filter
    /// actually did; reported in `PhaseStats`).
    pub posting_entries_scanned: usize,
}

/// Reusable scratch for [`StructuralIndex::filter_into`]: a dense per-graph
/// mass accumulator plus the list of graphs touched this query.  After the
/// first few queries warm it up, a filter pass performs no allocations at
/// all (`mass == 0` marks "untouched", which is sound because every posting
/// accumulation adds at least 1).
#[derive(Debug, Default)]
pub struct FilterScratch {
    mass: Vec<u32>,
    touched: Vec<u32>,
    candidates: Vec<usize>,
}

impl FilterScratch {
    /// The candidates produced by the last [`StructuralIndex::filter_into`]
    /// call, ascending.
    pub fn candidates(&self) -> &[usize] {
        &self.candidates
    }
}

/// The structural candidate index (see the module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StructuralIndex {
    /// `(vertex_count, edge_count)` per graph.
    metas: Vec<(u32, u32)>,
    /// Per-graph vertex-label histograms, one arena for the database.
    vertex_labels: FlatVecVec<(Label, u32)>,
    /// Per-graph edge-signature histograms, one arena for the database.
    edge_signatures: FlatVecVec<(EdgeSignature, u32)>,
    /// Per-graph degree sequences (descending), one arena for the database.
    degrees: FlatVecVec<u32>,
    /// Distinct signatures, ascending; row `i` of `postings` belongs to
    /// `sig_keys[i]`.
    sig_keys: Vec<EdgeSignature>,
    /// Posting entries per signature, graph indices ascending within a row.
    postings: FlatVecVec<PostingEntry>,
}

impl StructuralIndex {
    /// Builds the index over database skeletons.
    pub fn build(skeletons: &[Graph]) -> StructuralIndex {
        StructuralIndex::from_summaries(skeletons.iter().map(StructuralSummary::of).collect())
    }

    /// Rebuilds the index from per-graph summaries (the snapshot decode path);
    /// posting lists are derived deterministically from the summaries.
    pub fn from_summaries(summaries: Vec<StructuralSummary>) -> StructuralIndex {
        let mut index = StructuralIndex::default();
        for summary in &summaries {
            index.push_columns(summary.view());
        }
        index.rebuild_postings();
        index
    }

    /// Appends one summary's columns to the arenas (postings not updated).
    fn push_columns(&mut self, s: SummaryView<'_>) {
        self.metas
            .push((s.vertex_count() as u32, s.edge_count() as u32));
        self.vertex_labels
            .push_row(s.vertex_labels().iter().copied());
        self.edge_signatures
            .push_row(s.edge_signatures().iter().copied());
        self.degrees.push_row(s.degree_sequence().iter().copied());
    }

    /// Rebuilds the inverted posting lists from the summary arenas in one
    /// O(total log total) pass.  A stable sort by signature keeps graph
    /// indices ascending within each row, matching what per-graph appends in
    /// index order would have produced.
    fn rebuild_postings(&mut self) {
        let mut triples: Vec<(EdgeSignature, PostingEntry)> =
            Vec::with_capacity(self.edge_signatures.total_len());
        for g in 0..self.metas.len() {
            for &(sig, count) in self.edge_signatures.row(g) {
                triples.push((
                    sig,
                    PostingEntry {
                        graph: g as u32,
                        count,
                    },
                ));
            }
        }
        triples.sort_by_key(|&(sig, _)| sig);
        self.sig_keys.clear();
        let mut postings = FlatVecVec::with_capacity(self.sig_keys.len(), triples.len());
        let mut i = 0;
        while i < triples.len() {
            let sig = triples[i].0;
            let mut j = i;
            while j < triples.len() && triples[j].0 == sig {
                j += 1;
            }
            self.sig_keys.push(sig);
            postings.push_row(triples[i..j].iter().map(|&(_, e)| e));
            i = j;
        }
        self.postings = postings;
    }

    /// Number of indexed graphs.
    pub fn graph_count(&self) -> usize {
        self.metas.len()
    }

    /// The summary of graph `g`, borrowed from the arenas.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn summary(&self, g: usize) -> SummaryView<'_> {
        SummaryView::from_raw_parts(
            self.metas[g].0,
            self.metas[g].1,
            self.vertex_labels.row(g),
            self.edge_signatures.row(g),
            self.degrees.row(g),
        )
    }

    /// The per-graph summaries, in graph order.
    pub fn summary_views(&self) -> impl ExactSizeIterator<Item = SummaryView<'_>> + '_ {
        (0..self.metas.len()).map(move |g| self.summary(g))
    }

    /// Number of distinct edge signatures across the index.
    pub fn signature_count(&self) -> usize {
        self.sig_keys.len()
    }

    /// Total posting entries (Σ per-signature list lengths).
    pub fn posting_entry_count(&self) -> usize {
        self.postings.total_len()
    }

    /// Appends one graph at the next index.
    pub fn append(&mut self, skeleton: &Graph) {
        self.append_summary(StructuralSummary::of(skeleton));
    }

    /// Appends one precomputed summary at the next index (rebuilds the
    /// posting arena — the churn path is O(total)).
    pub fn append_summary(&mut self, summary: StructuralSummary) {
        self.push_columns(summary.view());
        self.rebuild_postings();
    }

    /// Removes graph `index`, shifting every later graph down by one
    /// (mirroring `Vec::remove` on the database and PMI side).  Rebuilds the
    /// arenas in one O(total) pass.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove(&mut self, index: usize) {
        assert!(
            index < self.metas.len(),
            "remove: graph {index} out of range ({} graphs)",
            self.metas.len()
        );
        let kept: Vec<StructuralSummary> = self
            .summary_views()
            .enumerate()
            .filter(|&(g, _)| g != index)
            .map(|(_, v)| v.to_owned_summary())
            .collect();
        *self = StructuralIndex::from_summaries(kept);
    }

    /// Posting-list candidate generation: all graphs whose Grafil
    /// edge-signature deficit against `query` is at most `delta`, ascending.
    ///
    /// When `|E(q)| ≤ δ` the filter is vacuous (every graph passes — the
    /// cheap residual set); otherwise only graphs appearing in at least one
    /// of the query's posting lists are touched.
    pub fn filter_candidates(&self, query: SummaryView<'_>, delta: usize) -> FilterOutcome {
        let mut scratch = FilterScratch::default();
        let posting_entries_scanned = self.filter_into(query, delta, &mut scratch);
        FilterOutcome {
            candidates: scratch.candidates,
            posting_entries_scanned,
        }
    }

    /// [`StructuralIndex::filter_candidates`] into caller-owned scratch;
    /// returns the posting entries scanned and leaves the candidate set in
    /// [`FilterScratch::candidates`].  With warm scratch the whole pass is
    /// allocation-free.
    pub fn filter_into(
        &self,
        query: SummaryView<'_>,
        delta: usize,
        scratch: &mut FilterScratch,
    ) -> usize {
        let m = query.edge_count();
        scratch.candidates.clear();
        if m <= delta {
            scratch.candidates.extend(0..self.metas.len());
            return 0;
        }
        let need = (m - delta) as u32;
        if scratch.mass.len() < self.metas.len() {
            scratch.mass.resize(self.metas.len(), 0);
        }
        debug_assert!(scratch.touched.is_empty());
        let mut scanned = 0usize;
        for &(sig, qc) in query.edge_signatures() {
            if let Ok(i) = self.sig_keys.binary_search(&sig) {
                let row = self.postings.row(i);
                scanned += row.len();
                for e in row {
                    let slot = &mut scratch.mass[e.graph as usize];
                    if *slot == 0 {
                        scratch.touched.push(e.graph);
                    }
                    *slot += qc.min(e.count);
                }
            }
        }
        scratch.touched.sort_unstable();
        for i in 0..scratch.touched.len() {
            let g = scratch.touched[i] as usize;
            if scratch.mass[g] >= need {
                scratch.candidates.push(g);
            }
            scratch.mass[g] = 0;
        }
        scratch.touched.clear();
        scanned
    }

    /// Accumulates this index's posting masses into a *global* (database-wide)
    /// accumulator, mapping shard-local graph ids through `members` — the
    /// fused phase-1 scan of the sequential sharded path
    /// (`pgs_query::structural`).  A graph's postings live entirely in its
    /// owning shard, so across a whole shard fan-in each graph is
    /// first-touched at most once; its `(global id, shard, local id)` triple
    /// is recorded in `touched` at that moment.  Thresholding and the
    /// `mass` reset are the caller's job (it sees all shards); the
    /// accumulated values equal what per-shard [`StructuralIndex::filter_into`]
    /// calls would produce.  Returns the posting entries scanned.
    pub fn accumulate_mass_into(
        &self,
        query: SummaryView<'_>,
        shard: u32,
        members: &[u32],
        mass: &mut [u32],
        touched: &mut Vec<(u32, u32, u32)>,
    ) -> usize {
        debug_assert_eq!(members.len(), self.metas.len());
        let mut scanned = 0usize;
        for &(sig, qc) in query.edge_signatures() {
            if let Ok(i) = self.sig_keys.binary_search(&sig) {
                let row = self.postings.row(i);
                scanned += row.len();
                for e in row {
                    let g = members[e.graph as usize];
                    let slot = &mut mass[g as usize];
                    if *slot == 0 {
                        touched.push((g, shard, e.graph));
                    }
                    *slot += qc.min(e.count);
                }
            }
        }
        scanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::GraphBuilder;
    use pgs_graph::summary::StructuralSummary;

    fn skeletons() -> Vec<Graph> {
        vec![
            // 0: triangle a-b-d.
            GraphBuilder::new()
                .vertices(&[0, 1, 3])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .build(),
            // 1: the 5-edge graph 002.
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 2])
                .edge(0, 1, 9)
                .edge(0, 2, 9)
                .edge(1, 2, 9)
                .edge(2, 3, 9)
                .edge(2, 4, 9)
                .build(),
            // 2: exact super-graph of the a-b-c triangle.
            GraphBuilder::new()
                .vertices(&[0, 1, 2, 5])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .edge(2, 3, 9)
                .build(),
            // 3: unrelated labels entirely.
            GraphBuilder::new()
                .vertices(&[7, 8, 9])
                .edge(0, 1, 1)
                .edge(1, 2, 1)
                .build(),
        ]
    }

    fn query() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    /// The brute-force reference: graph indices passing the per-graph Grafil
    /// deficit filter.
    fn brute(skeletons: &[Graph], q: &Graph, delta: usize) -> Vec<usize> {
        let qs = StructuralSummary::of(q);
        skeletons
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                q.edge_count() <= delta
                    || qs.signature_deficit(&StructuralSummary::of(g), delta) <= delta
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn filter_matches_the_bruteforce_reference() {
        let db = skeletons();
        let index = StructuralIndex::build(&db);
        let q = query();
        let qs = StructuralSummary::of(&q);
        for delta in 0..=4 {
            let outcome = index.filter_candidates(qs.view(), delta);
            assert_eq!(outcome.candidates, brute(&db, &q, delta), "delta = {delta}");
        }
        // δ ≥ |E(q)|: the vacuous residual set, no postings touched.
        let all = index.filter_candidates(qs.view(), 3);
        assert_eq!(all.candidates, vec![0, 1, 2, 3]);
        assert_eq!(all.posting_entries_scanned, 0);
        // Selective δ: the unrelated graph 3 is never touched.
        let tight = index.filter_candidates(qs.view(), 0);
        assert_eq!(tight.candidates, vec![2]);
        assert!(tight.posting_entries_scanned > 0);
    }

    /// Reused scratch gives the same answers as fresh-scratch calls, across
    /// interleaved queries and deltas.
    #[test]
    fn filter_scratch_reuse_is_sound() {
        let db = skeletons();
        let index = StructuralIndex::build(&db);
        let mut scratch = FilterScratch::default();
        let summaries: Vec<StructuralSummary> = db.iter().map(StructuralSummary::of).collect();
        for delta in [0usize, 2, 1, 4, 0, 3] {
            for qs in &summaries {
                let scanned = index.filter_into(qs.view(), delta, &mut scratch);
                let fresh = index.filter_candidates(qs.view(), delta);
                assert_eq!(scratch.candidates(), fresh.candidates.as_slice());
                assert_eq!(scanned, fresh.posting_entries_scanned);
            }
        }
    }

    #[test]
    fn summaries_round_trip_through_views() {
        let db = skeletons();
        let index = StructuralIndex::build(&db);
        for (g, skeleton) in db.iter().enumerate() {
            let want = StructuralSummary::of(skeleton);
            assert_eq!(index.summary(g).to_owned_summary(), want, "graph {g}");
        }
        assert_eq!(index.summary_views().len(), db.len());
    }

    #[test]
    fn append_and_remove_mirror_a_fresh_build() {
        let db = skeletons();
        let full = StructuralIndex::build(&db);
        // Build incrementally.
        let mut incremental = StructuralIndex::default();
        for g in &db {
            incremental.append(g);
        }
        assert_eq!(incremental, full);
        // Remove a middle graph: equals a build without it.
        let mut removed = full.clone();
        removed.remove(1);
        let without: Vec<Graph> = db
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, g)| g.clone())
            .collect();
        assert_eq!(removed, StructuralIndex::build(&without));
        // Re-append restores a permuted-equal index of the same summaries.
        removed.append(&db[1]);
        assert_eq!(removed.graph_count(), db.len());
        assert_eq!(removed.posting_entry_count(), full.posting_entry_count());
    }

    #[test]
    fn from_summaries_round_trips() {
        let db = skeletons();
        let full = StructuralIndex::build(&db);
        let rebuilt = StructuralIndex::from_summaries(
            full.summary_views().map(|v| v.to_owned_summary()).collect(),
        );
        assert_eq!(rebuilt, full);
        assert_eq!(rebuilt.signature_count(), full.signature_count());
    }

    #[test]
    fn empty_index() {
        let index = StructuralIndex::build(&[]);
        assert_eq!(index.graph_count(), 0);
        assert_eq!(index.posting_entry_count(), 0);
        let qs = StructuralSummary::of(&query());
        assert!(index.filter_candidates(qs.view(), 1).candidates.is_empty());
    }
}
