//! Synthetic STRING/BioGRID-style probabilistic PPI dataset generation.
//!
//! Each dataset graph is derived from one of a handful of "organism" template
//! graphs (perturbed copy: extracted connected subgraph + fresh random edges +
//! label noise), which gives the cluster structure the Figure 14 quality
//! experiment needs ("the query returns probabilistic graphs if the
//! probabilistic graphs and the query belong to the same organism").  Edge
//! existence probabilities follow a bell-shaped distribution centred on the
//! configured mean (0.383 for STRING), and joint probability tables over the
//! neighbor-edge partition are built with the paper's max rule, as independent
//! products, or as a mixture.

use pgs_graph::generate::{random_connected_graph, random_connected_subgraph, RandomGraphConfig};
use pgs_graph::model::{EdgeId, Graph, Label, VertexId};
use pgs_prob::jpt::JointProbTable;
use pgs_prob::model::ProbabilisticGraph;
use pgs_prob::neighbor::partition_with_triangles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the per-group joint probability tables are constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrelationModel {
    /// The paper's STRING construction: `Pr(x_ne) = max_i Pr(x_i)`, normalised.
    MaxRule,
    /// Independent edges (the classical uncertain-graph model, `IND`).
    Independent,
    /// Strong pairwise correlation: a mixture that puts extra mass on the
    /// all-present and all-absent assignments (stress-tests the bounds).
    StrongPositive,
}

/// Configuration of the synthetic PPI dataset.
#[derive(Debug, Clone, Copy)]
pub struct PpiDatasetConfig {
    /// Number of probabilistic graphs.
    pub graph_count: usize,
    /// Vertices per graph (mean; individual graphs vary by ±25%).
    pub vertices_per_graph: usize,
    /// Edges per graph (mean; individual graphs vary by ±25%).
    pub edges_per_graph: usize,
    /// Size of the vertex label alphabet (COG functional categories).
    pub vertex_label_count: u32,
    /// Size of the edge label alphabet (interaction types).
    pub edge_label_count: u32,
    /// Mean edge existence probability (0.383 for STRING).
    pub mean_edge_probability: f64,
    /// Spread of the edge probability distribution.
    pub probability_spread: f64,
    /// Maximum number of edges per neighbor-edge group / JPT.
    pub max_group_size: usize,
    /// Number of organism clusters.
    pub organism_count: usize,
    /// Fraction of each graph's edges re-sampled away from its organism
    /// template (0 = identical copies, 1 = unrelated graphs).
    pub perturbation: f64,
    /// Correlation model for the JPTs.
    pub correlation: CorrelationModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PpiDatasetConfig {
    fn default() -> Self {
        PpiDatasetConfig {
            graph_count: 60,
            vertices_per_graph: 24,
            edges_per_graph: 38,
            vertex_label_count: 12,
            edge_label_count: 2,
            mean_edge_probability: 0.383,
            probability_spread: 0.18,
            max_group_size: 3,
            organism_count: 4,
            perturbation: 0.35,
            correlation: CorrelationModel::MaxRule,
            seed: 0x5eed,
        }
    }
}

/// A generated dataset: the probabilistic graphs plus the organism (cluster)
/// each graph belongs to.
#[derive(Debug, Clone)]
pub struct PpiDataset {
    /// The probabilistic graphs.
    pub graphs: Vec<ProbabilisticGraph>,
    /// `organism_of[i]` is the cluster index of `graphs[i]`.
    pub organism_of: Vec<usize>,
    /// The configuration used to generate the dataset.
    pub config: PpiDatasetConfig,
}

impl PpiDataset {
    /// Deterministic skeletons of all graphs.
    pub fn skeletons(&self) -> Vec<Graph> {
        self.graphs.iter().map(|g| g.skeleton().clone()).collect()
    }

    /// Mean edge existence probability across the whole dataset.
    pub fn mean_edge_probability(&self) -> f64 {
        let (sum, count) = self.graphs.iter().fold((0.0, 0usize), |(s, c), g| {
            (s + g.expected_edge_count(), c + g.edge_count())
        });
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// Generates a synthetic PPI-style dataset.
pub fn generate_ppi_dataset(config: &PpiDatasetConfig) -> PpiDataset {
    // pgs-lint: allow(unseeded-rng, dataset generators are seeded by the scenario config, outside the engine's derive_seed tree)
    let mut rng = StdRng::seed_from_u64(config.seed);
    let organism_count = config.organism_count.max(1);
    // Organism templates are larger than the member graphs so members can be
    // extracted as subgraphs.
    let template_cfg = RandomGraphConfig {
        vertices: (config.vertices_per_graph * 2).max(4),
        edges: (config.edges_per_graph * 2).max(4),
        vertex_labels: config.vertex_label_count.max(1),
        edge_labels: config.edge_label_count.max(1),
        preferential: true,
    };
    let templates: Vec<Graph> = (0..organism_count)
        .map(|_| random_connected_graph(&template_cfg, &mut rng))
        .collect();

    let mut graphs = Vec::with_capacity(config.graph_count);
    let mut organism_of = Vec::with_capacity(config.graph_count);
    for gi in 0..config.graph_count {
        let organism = gi % organism_count;
        let skeleton = derive_member_graph(&templates[organism], config, gi, &mut rng);
        let pg = attach_probabilities(skeleton, config, &mut rng);
        graphs.push(pg);
        organism_of.push(organism);
    }
    PpiDataset {
        graphs,
        organism_of,
        config: *config,
    }
}

/// Builds one member graph of an organism: extract a connected subgraph of the
/// template, then rewire a `perturbation` fraction of its edges and relabel a
/// few vertices.
fn derive_member_graph(
    template: &Graph,
    config: &PpiDatasetConfig,
    index: usize,
    rng: &mut StdRng,
) -> Graph {
    let jitter = |mean: usize, rng: &mut StdRng| -> usize {
        let lo = (mean as f64 * 0.75).round() as usize;
        let hi = (mean as f64 * 1.25).round() as usize;
        if hi > lo {
            rng.gen_range(lo..=hi)
        } else {
            mean
        }
    };
    let target_edges = jitter(config.edges_per_graph, rng).max(1);
    let base = random_connected_subgraph(template, target_edges.min(template.edge_count()), rng)
        .unwrap_or_else(|| template.clone());

    // Perturb: copy the base, dropping a fraction of edges and adding fresh
    // random edges between existing vertices.
    let mut g = Graph::with_name(format!("ppi-{index:05}"));
    for v in base.vertices() {
        let mut label = base.vertex_label(v);
        if rng.gen::<f64>() < config.perturbation * 0.2 {
            label = Label(rng.gen_range(0..config.vertex_label_count.max(1)));
        }
        g.add_vertex(label);
    }
    let mut kept = 0usize;
    for (_, e) in base.edge_entries() {
        if rng.gen::<f64>() < config.perturbation * 0.5 {
            continue; // drop this edge
        }
        if g.add_edge(e.u, e.v, e.label).is_ok() {
            kept += 1;
        }
    }
    // Top up with random edges to roughly restore the edge budget.
    let n = g.vertex_count();
    let mut attempts = 0;
    while kept < target_edges && n >= 2 && attempts < target_edges * 20 {
        attempts += 1;
        let u = VertexId(rng.gen_range(0..n as u32));
        let v = VertexId(rng.gen_range(0..n as u32));
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let label = Label(rng.gen_range(0..config.edge_label_count.max(1)));
        if g.add_edge(u, v, label).is_ok() {
            kept += 1;
        }
    }
    g
}

/// Attaches JPTs to a skeleton according to the configured correlation model.
fn attach_probabilities(
    skeleton: Graph,
    config: &PpiDatasetConfig,
    rng: &mut StdRng,
) -> ProbabilisticGraph {
    let groups = partition_with_triangles(&skeleton, config.max_group_size.max(1));
    let tables: Vec<JointProbTable> = groups
        .iter()
        .map(|grp| build_table(grp, config, rng))
        .collect();
    ProbabilisticGraph::new(skeleton, tables, true)
        // pgs-lint: allow(panic-in-library, generator invariant: the neighbor-edge grouping partitions each vertex's edges)
        .expect("generated grouping is a valid neighbor-edge partition")
}

fn build_table(group: &[EdgeId], config: &PpiDatasetConfig, rng: &mut StdRng) -> JointProbTable {
    let edge_probs: Vec<(EdgeId, f64)> = group
        .iter()
        .map(|&e| (e, sample_edge_probability(config, rng)))
        .collect();
    match config.correlation {
        CorrelationModel::MaxRule => {
            // pgs-lint: allow(panic-in-library, sample_edge_probability clamps every probability into (0, 1))
            JointProbTable::from_max_rule(&edge_probs).expect("valid max-rule table")
        }
        CorrelationModel::Independent => {
            // pgs-lint: allow(panic-in-library, sample_edge_probability clamps every probability into (0, 1))
            JointProbTable::independent(&edge_probs).expect("valid independent table")
        }
        CorrelationModel::StrongPositive => strong_positive_table(&edge_probs),
    }
}

/// A mixture table: with weight `w` all edges share one Bernoulli draw (perfect
/// correlation), with weight `1 − w` they are independent.  Marginals stay at
/// the sampled per-edge probabilities' mean.
fn strong_positive_table(edge_probs: &[(EdgeId, f64)]) -> JointProbTable {
    let k = edge_probs.len();
    let mean_p: f64 = edge_probs.iter().map(|&(_, p)| p).sum::<f64>() / k as f64;
    let w = 0.6;
    // pgs-lint: allow(panic-in-library, sample_edge_probability clamps every probability into (0, 1))
    let independent = JointProbTable::independent(edge_probs).expect("valid independent table");
    let mut probs: Vec<f64> = independent
        .row_probabilities()
        .iter()
        .map(|&p| p * (1.0 - w))
        .collect();
    let all_mask = (1usize << k) - 1;
    probs[all_mask] += w * mean_p;
    probs[0] += w * (1.0 - mean_p);
    // pgs-lint: allow(panic-in-library, the mixture re-normalises row mass, so the table stays a distribution)
    JointProbTable::new(independent.edges().to_vec(), probs).expect("mixture table is normalised")
}

/// Bell-shaped edge probability around the configured mean (sum of three
/// uniforms ≈ normal), clamped away from 0 and 1.
fn sample_edge_probability(config: &PpiDatasetConfig, rng: &mut StdRng) -> f64 {
    let z: f64 = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) / 1.5 - 1.0; // ≈ N(0, 0.33)
    (config.mean_edge_probability + config.probability_spread * z).clamp(0.02, 0.98)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_requested_shape() {
        let config = PpiDatasetConfig {
            graph_count: 20,
            vertices_per_graph: 15,
            edges_per_graph: 22,
            organism_count: 4,
            ..PpiDatasetConfig::default()
        };
        let ds = generate_ppi_dataset(&config);
        assert_eq!(ds.graphs.len(), 20);
        assert_eq!(ds.organism_of.len(), 20);
        assert!(ds.organism_of.iter().all(|&o| o < 4));
        // Every organism has members.
        for o in 0..4 {
            assert!(ds.organism_of.contains(&o));
        }
        for g in &ds.graphs {
            assert!(g.vertex_count() > 0);
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    fn mean_edge_probability_is_close_to_target() {
        // Under the independent model the configured probabilities are the
        // marginals, so the dataset mean must track the 0.383 target closely.
        let config = PpiDatasetConfig {
            graph_count: 30,
            mean_edge_probability: 0.383,
            correlation: CorrelationModel::Independent,
            ..PpiDatasetConfig::default()
        };
        let ds = generate_ppi_dataset(&config);
        let mean = ds.mean_edge_probability();
        assert!(
            (mean - 0.383).abs() < 0.05,
            "dataset mean edge probability {mean} too far from 0.383"
        );
        // The max rule re-normalises the joint tables, which shifts marginals a
        // bit (the paper's construction has the same effect); stay in a looser
        // band around the target.
        let cor = generate_ppi_dataset(&PpiDatasetConfig {
            correlation: CorrelationModel::MaxRule,
            ..config
        });
        let cor_mean = cor.mean_edge_probability();
        assert!(
            (cor_mean - 0.383).abs() < 0.15,
            "max-rule mean edge probability {cor_mean} drifted too far from 0.383"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = PpiDatasetConfig {
            graph_count: 8,
            ..PpiDatasetConfig::default()
        };
        let a = generate_ppi_dataset(&config);
        let b = generate_ppi_dataset(&config);
        assert_eq!(a.graphs.len(), b.graphs.len());
        for (x, y) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(x.skeleton(), y.skeleton());
        }
        let c = generate_ppi_dataset(&PpiDatasetConfig {
            seed: 999,
            ..config
        });
        assert!(a
            .graphs
            .iter()
            .zip(&c.graphs)
            .any(|(x, y)| x.skeleton() != y.skeleton()));
    }

    #[test]
    fn correlation_models_produce_valid_graphs() {
        for model in [
            CorrelationModel::MaxRule,
            CorrelationModel::Independent,
            CorrelationModel::StrongPositive,
        ] {
            let config = PpiDatasetConfig {
                graph_count: 5,
                correlation: model,
                ..PpiDatasetConfig::default()
            };
            let ds = generate_ppi_dataset(&config);
            for g in &ds.graphs {
                // Every table is normalised (checked by construction) and every
                // edge has a sensible marginal.
                for e in g.skeleton().edges() {
                    let p = g.edge_presence_prob(e);
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }

    #[test]
    fn strong_positive_model_is_more_correlated_than_independent() {
        let mk = |model| PpiDatasetConfig {
            graph_count: 6,
            correlation: model,
            seed: 42,
            ..PpiDatasetConfig::default()
        };
        let pos = generate_ppi_dataset(&mk(CorrelationModel::StrongPositive));
        // Find a table with ≥ 2 edges and check joint > product of marginals.
        let mut found = false;
        for g in &pos.graphs {
            for t in g.tables() {
                if t.arity() >= 2 {
                    let edges = t.edges().to_vec();
                    let joint = t.marginal_all_present(&edges);
                    let product: f64 = edges.iter().map(|&e| t.edge_marginal(e)).product();
                    assert!(joint + 1e-9 >= product);
                    if joint > product + 1e-6 {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "expected at least one positively correlated table");
    }

    #[test]
    fn same_organism_graphs_share_more_structure() {
        // Members of the same organism are perturbed copies of one template, so
        // graphs of the same organism should on average share more frequent
        // edge signatures than graphs of different organisms.
        let config = PpiDatasetConfig {
            graph_count: 12,
            organism_count: 3,
            perturbation: 0.2,
            ..PpiDatasetConfig::default()
        };
        let ds = generate_ppi_dataset(&config);
        let signature_overlap = |a: &Graph, b: &Graph| -> usize {
            let ha = a.edge_signature_histogram();
            let hb = b.edge_signature_histogram();
            ha.iter()
                .map(|(sig, ca)| hb.get(sig).copied().unwrap_or(0).min(*ca))
                .sum()
        };
        let skeletons = ds.skeletons();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..skeletons.len() {
            for j in (i + 1)..skeletons.len() {
                let overlap = signature_overlap(&skeletons[i], &skeletons[j]) as f64;
                if ds.organism_of[i] == ds.organism_of[j] {
                    same.push(overlap);
                } else {
                    diff.push(overlap);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            avg(&same) > avg(&diff),
            "same-organism overlap {} should exceed cross-organism overlap {}",
            avg(&same),
            avg(&diff)
        );
    }
}
