//! Predefined dataset scales.
//!
//! The paper's dataset is 5K graphs with ~385 vertices and ~612 edges each —
//! far beyond what a test suite or a CI benchmark should chew on.  The scales
//! below keep the *ratios* (edges ≈ 1.6 × vertices, mean probability 0.383,
//! label alphabet comparable to the COG categories) while shrinking absolute
//! sizes.  `DatasetScale::Paper` exists for completeness and is only meant for
//! long offline runs.

use crate::ppi::{CorrelationModel, PpiDatasetConfig};
use pgs_graph::generate::{random_connected_graph, RandomGraphConfig};
use pgs_prob::model::ProbabilisticGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named dataset scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// A few dozen small graphs; unit/integration tests.
    Tiny,
    /// Hundreds of graphs with tens of edges; default benchmark scale.
    Small,
    /// Around a thousand graphs; the scalability sweep's upper end.
    Medium,
    /// The paper's published scale (5K graphs, ~385 vertices, ~612 edges).
    Paper,
}

/// Returns the dataset configuration for a named scale.
pub fn paper_scale(scale: DatasetScale) -> PpiDatasetConfig {
    match scale {
        DatasetScale::Tiny => PpiDatasetConfig {
            graph_count: 24,
            vertices_per_graph: 14,
            edges_per_graph: 22,
            vertex_label_count: 10,
            edge_label_count: 2,
            organism_count: 3,
            ..PpiDatasetConfig::default()
        },
        DatasetScale::Small => PpiDatasetConfig {
            graph_count: 200,
            vertices_per_graph: 25,
            edges_per_graph: 40,
            vertex_label_count: 14,
            edge_label_count: 2,
            organism_count: 5,
            ..PpiDatasetConfig::default()
        },
        DatasetScale::Medium => PpiDatasetConfig {
            graph_count: 1_000,
            vertices_per_graph: 30,
            edges_per_graph: 48,
            vertex_label_count: 16,
            edge_label_count: 3,
            organism_count: 8,
            ..PpiDatasetConfig::default()
        },
        DatasetScale::Paper => PpiDatasetConfig {
            graph_count: 5_000,
            vertices_per_graph: 385,
            edges_per_graph: 612,
            vertex_label_count: 25,
            edge_label_count: 3,
            organism_count: 12,
            mean_edge_probability: 0.383,
            correlation: CorrelationModel::MaxRule,
            ..PpiDatasetConfig::default()
        },
    }
}

/// A bulk skeleton corpus for index-snapshot benchmarks: `count` tiny
/// independent probabilistic graphs (6 vertices, 7–9 edges, small label
/// alphabets) that are cheap to generate, index and persist even at 100 000
/// graphs.  Unlike [`paper_scale`] this trades realism for volume — the
/// point is to exercise snapshot *size* (one PMI column and one structural
/// summary per graph), not query selectivity.
pub fn bulk_skeletons(count: usize, seed: u64) -> Vec<ProbabilisticGraph> {
    // pgs-lint: allow(unseeded-rng, dataset generators are seeded by the scenario config, outside the engine's derive_seed tree)
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let cfg = RandomGraphConfig {
                vertices: 6,
                edges: 7 + (i % 3),
                vertex_labels: 5,
                edge_labels: 2,
                preferential: false,
            };
            let mut skeleton = random_connected_graph(&cfg, &mut rng);
            skeleton.set_name(format!("bulk-{i}"));
            let probs: Vec<f64> = (0..skeleton.edge_count())
                .map(|_| rng.gen_range(0.15..0.95))
                .collect();
            // pgs-lint: allow(panic-in-library, generated probabilities are fixed inside (0, 1) by the formula above)
            ProbabilisticGraph::independent(skeleton, &probs).expect("probabilities are in (0, 1)")
        })
        .collect()
}

/// A fixed deterministic query workload over the [`bulk_skeletons`] label
/// alphabet: `count` three-vertex paths cycling through the five vertex
/// labels and two edge labels, so each query matches a different slice of a
/// bulk corpus.  Shared by the `bench-topk` harness and the top-k
/// integration tests.
pub fn bulk_path_queries(count: usize) -> Vec<pgs_graph::model::Graph> {
    use pgs_graph::model::GraphBuilder;
    (0..count as u32)
        .map(|i| {
            GraphBuilder::new()
                .name(format!("path-query-{i}"))
                .vertices(&[i % 5, (i + 1) % 5, (i + 2) % 5])
                .edge(0, 1, i % 2)
                .edge(1, 2, (i + 1) % 2)
                .build()
        })
        .collect()
}

/// A verification-phase candidate shared by the `bench-verify` harness and
/// the verifier's test suite: a labelled triangle region (vertex labels 0/1/2,
/// edge label 9, one correlated max-rule JPT) the returned query embeds into
/// exactly, plus `extra` pendant edges (vertex label 7, edge label 4) each in
/// its own single-edge JPT the embedding union never touches.
///
/// With `extra ≥ 4` the graph has ≥ 4× more JPT tables than the union of the
/// query's embeddings touches — the shape the `UnionSampler`'s table
/// projection exploits and the full-world baseline loop pays for.
pub fn verification_candidate(
    extra: usize,
) -> (pgs_prob::model::ProbabilisticGraph, pgs_graph::model::Graph) {
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_prob::jpt::JointProbTable;
    let mut labels = vec![0u32, 1, 2];
    labels.extend(std::iter::repeat_n(7, extra));
    let mut b = GraphBuilder::new()
        .name("verify-candidate")
        .vertices(&labels)
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9);
    for i in 0..extra {
        b = b.edge(i as u32 % 3, 3 + i as u32, 4);
    }
    let skeleton = b.build();
    let mut tables = vec![JointProbTable::from_max_rule(&[
        (EdgeId(0), 0.7),
        (EdgeId(1), 0.6),
        (EdgeId(2), 0.8),
    ])
    // pgs-lint: allow(panic-in-library, hard-coded row masses sum to 1, a valid JPT by construction)
    .expect("valid triangle JPT")];
    for i in 0..extra {
        tables.push(
            JointProbTable::independent(&[(EdgeId(3 + i as u32), 0.2 + 0.05 * (i % 10) as f64)])
                // pgs-lint: allow(panic-in-library, hard-coded probabilities lie inside (0, 1))
                .expect("valid pendant JPT"),
        );
    }
    let pg = pgs_prob::model::ProbabilisticGraph::new(skeleton, tables, true)
        // pgs-lint: allow(panic-in-library, generator invariant: pendant tables partition the neighbor edges)
        .expect("pendant tables are neighbor-edge sets");
    let query = GraphBuilder::new()
        .vertices(&[0, 1, 2])
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9)
        .build();
    (pg, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppi::generate_ppi_dataset;

    #[test]
    fn scales_are_ordered_by_size() {
        let tiny = paper_scale(DatasetScale::Tiny);
        let small = paper_scale(DatasetScale::Small);
        let medium = paper_scale(DatasetScale::Medium);
        let paper = paper_scale(DatasetScale::Paper);
        assert!(tiny.graph_count < small.graph_count);
        assert!(small.graph_count < medium.graph_count);
        assert!(medium.graph_count < paper.graph_count);
        assert_eq!(paper.graph_count, 5_000);
        assert_eq!(paper.vertices_per_graph, 385);
        assert_eq!(paper.edges_per_graph, 612);
        assert!((paper.mean_edge_probability - 0.383).abs() < 1e-12);
    }

    #[test]
    fn tiny_scale_generates_quickly() {
        let ds = generate_ppi_dataset(&paper_scale(DatasetScale::Tiny));
        assert_eq!(ds.graphs.len(), 24);
    }

    #[test]
    fn bulk_skeletons_are_tiny_deterministic_and_named() {
        let a = bulk_skeletons(50, 0xB17);
        let b = bulk_skeletons(50, 0xB17);
        assert_eq!(a.len(), 50);
        for (i, pg) in a.iter().enumerate() {
            assert_eq!(pg.name(), format!("bulk-{i}"));
            assert_eq!(pg.skeleton().vertex_count(), 6);
            assert!((7..=9).contains(&pg.edge_count()));
        }
        // Deterministic in the seed, distinct across seeds.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.skeleton().structural_hash(),
                y.skeleton().structural_hash()
            );
        }
        assert_ne!(
            bulk_skeletons(1, 1)[0].skeleton().structural_hash(),
            bulk_skeletons(1, 2)[0].skeleton().structural_hash()
        );
    }

    #[test]
    fn bulk_path_queries_cycle_the_bulk_label_alphabet() {
        let qs = bulk_path_queries(16);
        assert_eq!(qs.len(), 16);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.name(), format!("path-query-{i}"));
            assert_eq!(q.vertex_count(), 3);
            assert_eq!(q.edge_count(), 2);
        }
        // Deterministic: the workload is a pure function of the count.
        assert_eq!(
            qs[3].structural_hash(),
            bulk_path_queries(16)[3].structural_hash()
        );
        // Distinct queries hit distinct label combinations.
        assert_ne!(qs[0].structural_hash(), qs[1].structural_hash());
    }

    #[test]
    fn verification_candidate_has_the_advertised_shape() {
        let (pg, q) = verification_candidate(12);
        assert_eq!(pg.tables().len(), 13);
        assert_eq!(pg.edge_count(), 3 + 12);
        assert_eq!(q.edge_count(), 3);
        // The query's only embedding is the triangle: the union touches one
        // table, so the graph has > 4x more tables than the union.
        let triangle: Vec<_> = (0..3).map(pgs_graph::model::EdgeId).collect();
        assert_eq!(pg.tables_touched(&triangle).len(), 1);
    }
}
