//! Predefined dataset scales.
//!
//! The paper's dataset is 5K graphs with ~385 vertices and ~612 edges each —
//! far beyond what a test suite or a CI benchmark should chew on.  The scales
//! below keep the *ratios* (edges ≈ 1.6 × vertices, mean probability 0.383,
//! label alphabet comparable to the COG categories) while shrinking absolute
//! sizes.  `DatasetScale::Paper` exists for completeness and is only meant for
//! long offline runs.

use crate::ppi::{CorrelationModel, PpiDatasetConfig};

/// Named dataset scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// A few dozen small graphs; unit/integration tests.
    Tiny,
    /// Hundreds of graphs with tens of edges; default benchmark scale.
    Small,
    /// Around a thousand graphs; the scalability sweep's upper end.
    Medium,
    /// The paper's published scale (5K graphs, ~385 vertices, ~612 edges).
    Paper,
}

/// Returns the dataset configuration for a named scale.
pub fn paper_scale(scale: DatasetScale) -> PpiDatasetConfig {
    match scale {
        DatasetScale::Tiny => PpiDatasetConfig {
            graph_count: 24,
            vertices_per_graph: 14,
            edges_per_graph: 22,
            vertex_label_count: 10,
            edge_label_count: 2,
            organism_count: 3,
            ..PpiDatasetConfig::default()
        },
        DatasetScale::Small => PpiDatasetConfig {
            graph_count: 200,
            vertices_per_graph: 25,
            edges_per_graph: 40,
            vertex_label_count: 14,
            edge_label_count: 2,
            organism_count: 5,
            ..PpiDatasetConfig::default()
        },
        DatasetScale::Medium => PpiDatasetConfig {
            graph_count: 1_000,
            vertices_per_graph: 30,
            edges_per_graph: 48,
            vertex_label_count: 16,
            edge_label_count: 3,
            organism_count: 8,
            ..PpiDatasetConfig::default()
        },
        DatasetScale::Paper => PpiDatasetConfig {
            graph_count: 5_000,
            vertices_per_graph: 385,
            edges_per_graph: 612,
            vertex_label_count: 25,
            edge_label_count: 3,
            organism_count: 12,
            mean_edge_probability: 0.383,
            correlation: CorrelationModel::MaxRule,
            ..PpiDatasetConfig::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppi::generate_ppi_dataset;

    #[test]
    fn scales_are_ordered_by_size() {
        let tiny = paper_scale(DatasetScale::Tiny);
        let small = paper_scale(DatasetScale::Small);
        let medium = paper_scale(DatasetScale::Medium);
        let paper = paper_scale(DatasetScale::Paper);
        assert!(tiny.graph_count < small.graph_count);
        assert!(small.graph_count < medium.graph_count);
        assert!(medium.graph_count < paper.graph_count);
        assert_eq!(paper.graph_count, 5_000);
        assert_eq!(paper.vertices_per_graph, 385);
        assert_eq!(paper.edges_per_graph, 612);
        assert!((paper.mean_edge_probability - 0.383).abs() < 1e-12);
    }

    #[test]
    fn tiny_scale_generates_quickly() {
        let ds = generate_ppi_dataset(&paper_scale(DatasetScale::Tiny));
        assert_eq!(ds.graphs.len(), 24);
    }
}
