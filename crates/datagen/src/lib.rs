//! # pgs-datagen — synthetic probabilistic graph datasets and query workloads
//!
//! The paper evaluates on 5K protein–protein interaction networks extracted
//! from the STRING database (average 385 vertices / 612 edges per graph, COG
//! functional annotations as vertex labels, average edge existence probability
//! 0.383, joint probability tables built with the "max rule" over neighbor
//! edges).  STRING/BioGRID extracts are not redistributable here, so this crate
//! synthesises datasets with the same statistical knobs — graph/vertex/edge
//! counts, label alphabet, edge-probability distribution, correlation model and
//! an "organism" cluster structure used by the Figure 14 quality experiment.
//! See `DESIGN.md` §3 for the substitution rationale.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ppi;
pub mod queries;
pub mod scenarios;

pub use ppi::{generate_ppi_dataset, CorrelationModel, PpiDataset, PpiDatasetConfig};
pub use queries::{generate_queries, generate_query_workload, QueryWorkloadConfig};
pub use scenarios::{paper_scale, DatasetScale};
