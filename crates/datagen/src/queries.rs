//! Query workload generation.
//!
//! Section 6: "Each query set q_i has 100 connected query graphs and query
//! graphs in q_i are size-i graphs (the edge number in each query is i), which
//! are extracted from corresponding deterministic graphs of probabilistic
//! graphs randomly".  [`generate_query_workload`] reproduces this, also
//! recording which database graph each query was extracted from (needed by the
//! Figure 14 organism-quality experiment).

use crate::ppi::PpiDataset;
use pgs_graph::generate::random_connected_subgraph;
use pgs_graph::model::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a query workload.
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkloadConfig {
    /// Number of edges per query (the paper's query size `i`).
    pub query_size: usize,
    /// Number of queries.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            query_size: 6,
            count: 20,
            seed: 0xbeef,
        }
    }
}

/// One generated query with its provenance.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The query graph (connected, `query_size` edges).
    pub graph: Graph,
    /// Index of the database graph it was extracted from.
    pub source_graph: usize,
    /// Organism (cluster) of the source graph.
    pub source_organism: usize,
}

/// Generates `count` connected queries of `query_size` edges, extracted from
/// random dataset graphs.
pub fn generate_query_workload(
    dataset: &PpiDataset,
    config: &QueryWorkloadConfig,
) -> Vec<WorkloadQuery> {
    // pgs-lint: allow(unseeded-rng, dataset generators are seeded by the scenario config, outside the engine's derive_seed tree)
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.count);
    if dataset.graphs.is_empty() || config.count == 0 {
        return out;
    }
    let mut guard = 0usize;
    while out.len() < config.count && guard < config.count * 50 {
        guard += 1;
        let source = rng.gen_range(0..dataset.graphs.len());
        let skeleton = dataset.graphs[source].skeleton();
        if skeleton.edge_count() < config.query_size {
            continue;
        }
        if let Some(q) = random_connected_subgraph(skeleton, config.query_size, &mut rng) {
            let mut q = q;
            q.set_name(format!("q{}-{}", config.query_size, out.len()));
            out.push(WorkloadQuery {
                graph: q,
                source_graph: source,
                source_organism: dataset.organism_of[source],
            });
        }
    }
    out
}

/// Convenience wrapper returning only the query graphs.
pub fn generate_queries(dataset: &PpiDataset, config: &QueryWorkloadConfig) -> Vec<Graph> {
    generate_query_workload(dataset, config)
        .into_iter()
        .map(|w| w.graph)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppi::{generate_ppi_dataset, PpiDatasetConfig};
    use pgs_graph::vf2::contains_subgraph;

    fn dataset() -> PpiDataset {
        generate_ppi_dataset(&PpiDatasetConfig {
            graph_count: 10,
            vertices_per_graph: 16,
            edges_per_graph: 24,
            ..PpiDatasetConfig::default()
        })
    }

    #[test]
    fn queries_have_requested_size_and_embed_in_their_source() {
        let ds = dataset();
        let workload = generate_query_workload(
            &ds,
            &QueryWorkloadConfig {
                query_size: 5,
                count: 12,
                seed: 3,
            },
        );
        assert_eq!(workload.len(), 12);
        for wq in &workload {
            assert_eq!(wq.graph.edge_count(), 5);
            assert!(wq.graph.is_connected());
            assert!(wq.source_graph < ds.graphs.len());
            assert_eq!(ds.organism_of[wq.source_graph], wq.source_organism);
            assert!(contains_subgraph(
                &wq.graph,
                ds.graphs[wq.source_graph].skeleton()
            ));
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let ds = dataset();
        let cfg = QueryWorkloadConfig {
            query_size: 4,
            count: 6,
            seed: 11,
        };
        let a = generate_queries(&ds, &cfg);
        let b = generate_queries(&ds, &cfg);
        assert_eq!(a, b);
        let c = generate_queries(&ds, &QueryWorkloadConfig { seed: 12, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn oversized_queries_yield_fewer_results() {
        let ds = dataset();
        let workload = generate_query_workload(
            &ds,
            &QueryWorkloadConfig {
                query_size: 10_000,
                count: 5,
                seed: 1,
            },
        );
        assert!(workload.is_empty());
    }

    #[test]
    fn empty_dataset_or_zero_count() {
        let ds = dataset();
        assert!(generate_query_workload(
            &ds,
            &QueryWorkloadConfig {
                count: 0,
                ..QueryWorkloadConfig::default()
            }
        )
        .is_empty());
        let empty = PpiDataset {
            graphs: Vec::new(),
            organism_of: Vec::new(),
            config: PpiDatasetConfig::default(),
        };
        assert!(generate_query_workload(&empty, &QueryWorkloadConfig::default()).is_empty());
    }
}
