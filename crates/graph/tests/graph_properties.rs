//! Property-based tests of the deterministic graph substrate.

use pgs_graph::clique::{max_weight_clique, CliqueOptions};
use pgs_graph::cuts::{minimal_cuts, CutEnumOptions};
use pgs_graph::dfs_code::{are_isomorphic, canonical_code};
use pgs_graph::embeddings::{disjoint_embedding_count, edge_sets_disjoint};
use pgs_graph::mcs::{mcs_size, subgraph_distance};
use pgs_graph::model::{EdgeId, Graph, Label, VertexId};
use pgs_graph::relax::{delete_edge_subsets, relax_query, RelaxOptions};
use pgs_graph::serialize::{read_database, write_database};
use pgs_graph::traversal::{connected_components, triangles};
use pgs_graph::vf2::{contains_subgraph, enumerate_embeddings, MatchOptions};
use proptest::prelude::*;

/// Strategy: a random labelled graph (not necessarily connected).
fn arb_graph(max_vertices: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (1..=max_vertices)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..labels, n),
                proptest::collection::vec((0..n, 0..n, 0..labels), 0..(n * 2)),
            )
        })
        .prop_map(|(vlabels, edges)| {
            let mut g = Graph::new();
            for &l in &vlabels {
                g.add_vertex(Label(l));
            }
            for (u, v, l) in edges {
                if u != v {
                    let _ = g.add_edge(VertexId(u as u32), VertexId(v as u32), Label(l));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn serialization_round_trips(graphs in proptest::collection::vec(arb_graph(7, 4), 1..4)) {
        let text = write_database(&graphs);
        let back = read_database(&text).unwrap();
        prop_assert_eq!(graphs, back);
    }

    #[test]
    fn graph_is_its_own_subgraph_and_mcs(g in arb_graph(7, 3)) {
        prop_assert!(contains_subgraph(&g, &g));
        prop_assert_eq!(mcs_size(&g, &g), g.edge_count());
        prop_assert_eq!(subgraph_distance(&g, &g), 0);
        prop_assert!(are_isomorphic(&g, &g));
        let code = canonical_code(&g);
        prop_assert_eq!(code.clone(), canonical_code(&g));
        prop_assert_eq!(code.digest(), canonical_code(&g).digest());
    }

    #[test]
    fn mcs_is_bounded_and_symmetric_in_overlap(a in arb_graph(5, 2), b in arb_graph(6, 2)) {
        let m = mcs_size(&a, &b);
        prop_assert!(m <= a.edge_count().min(b.edge_count()));
        // The common-subgraph size is symmetric.
        prop_assert_eq!(m, mcs_size(&b, &a));
        // Distance is edge count minus the common size.
        prop_assert_eq!(subgraph_distance(&a, &b), a.edge_count() - m);
    }

    #[test]
    fn embedding_enumeration_agrees_with_containment(a in arb_graph(4, 2), b in arb_graph(6, 2)) {
        let exists = contains_subgraph(&a, &b);
        let outcome = enumerate_embeddings(&a, &b, MatchOptions::default());
        prop_assert_eq!(exists, !outcome.embeddings.is_empty());
        // Every embedding covers exactly the pattern's edges (as distinct data edges).
        for emb in &outcome.embeddings {
            prop_assert_eq!(emb.edges.len(), a.edge_count());
            // Mapped vertices are distinct.
            let mut seen = emb.vertex_map.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), a.vertex_count());
        }
    }

    #[test]
    fn relaxations_partition_by_edge_count(q in arb_graph(6, 2), delta in 0usize..3) {
        let delta = delta.min(q.edge_count());
        let relaxed = relax_query(&q, delta);
        for rq in &relaxed {
            prop_assert_eq!(rq.edge_count(), q.edge_count() - delta);
        }
        // Without dedup the count is exactly C(|E|, delta).
        let all = delete_edge_subsets(
            &q,
            &RelaxOptions {
                deletions: delta,
                dedup: false,
                ..RelaxOptions::default()
            },
        );
        let mut expected = 1usize;
        for i in 0..delta {
            expected = expected * (q.edge_count() - i) / (i + 1);
        }
        prop_assert_eq!(all.len(), expected);
        prop_assert!(relaxed.len() <= all.len());
    }

    #[test]
    fn triangles_are_consistent_with_components(g in arb_graph(8, 2)) {
        let tris = triangles(&g);
        for t in &tris {
            // The three edges of a triangle touch exactly three vertices.
            let mut vs: Vec<VertexId> = t
                .iter()
                .flat_map(|&e| {
                    let edge = g.edge(e);
                    [edge.u, edge.v]
                })
                .collect();
            vs.sort_unstable();
            vs.dedup();
            prop_assert_eq!(vs.len(), 3);
        }
        // Components partition the vertex set.
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, g.vertex_count());
    }

    #[test]
    fn clique_members_are_pairwise_adjacent(weights in proptest::collection::vec(0.0f64..3.0, 1..12), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let n = weights.len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut adj = pgs_graph::BitMatrix::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.5) {
                    adj.set_pair(i, j);
                }
            }
        }
        let result = max_weight_clique(&weights, &adj, CliqueOptions::default());
        for (x, &a) in result.members.iter().enumerate() {
            for &b in &result.members[x + 1..] {
                prop_assert!(adj.get(a, b));
            }
        }
        let total: f64 = result.members.iter().map(|&i| weights[i]).sum();
        prop_assert!((total - result.weight).abs() < 1e-9);
        // Singleton cliques are always available: the result cannot be worse
        // than the heaviest node.
        let best_single = weights.iter().cloned().fold(0.0, f64::max);
        prop_assert!(result.weight + 1e-9 >= best_single);
    }

    #[test]
    fn minimal_cuts_hit_every_embedding_and_are_minimal(
        sets in proptest::collection::vec(proptest::collection::vec(0u32..8, 1..4), 1..5)
    ) {
        let embeddings: Vec<Vec<EdgeId>> = sets
            .iter()
            .map(|s| {
                let mut v: Vec<EdgeId> = s.iter().map(|&e| EdgeId(e)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let (cuts, complete) = minimal_cuts(&embeddings, CutEnumOptions::default());
        if complete {
            prop_assert!(!cuts.is_empty());
        }
        for cut in &cuts {
            for emb in &embeddings {
                prop_assert!(emb.iter().any(|e| cut.contains(e)), "cut misses an embedding");
            }
            for drop in cut {
                let reduced: Vec<EdgeId> = cut.iter().copied().filter(|e| e != drop).collect();
                let still_hits = embeddings
                    .iter()
                    .all(|emb| emb.iter().any(|e| reduced.contains(e)));
                prop_assert!(!still_hits, "cut {cut:?} is not minimal");
            }
        }
    }

    #[test]
    fn disjoint_embedding_count_is_consistent(
        sets in proptest::collection::vec(proptest::collection::vec(0u32..10, 1..4), 0..6)
    ) {
        let embeddings: Vec<pgs_graph::embeddings::Embedding> = sets
            .iter()
            .map(|s| pgs_graph::embeddings::Embedding::new(vec![], s.iter().map(|&e| EdgeId(e)).collect()))
            .collect();
        let k = disjoint_embedding_count(&embeddings);
        prop_assert!(k <= embeddings.len());
        if !embeddings.is_empty() {
            prop_assert!(k >= 1);
        }
        // Pairwise disjointness helper is symmetric.
        for a in &embeddings {
            for b in &embeddings {
                prop_assert_eq!(
                    edge_sets_disjoint(&a.edges, &b.edges),
                    edge_sets_disjoint(&b.edges, &a.edges)
                );
            }
        }
    }
}
