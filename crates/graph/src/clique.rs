//! Maximum weight clique search.
//!
//! Section 4.1 turns "pick the best set of pairwise-disjoint embeddings (resp.
//! cuts)" into a **maximum weight clique** problem on a compatibility graph
//! `fG` whose nodes are embeddings/cuts, whose links connect disjoint pairs and
//! whose node weights are `-ln(1 - Pr(Bf_i | COR))` (resp. `-ln(1 - Pr(Bc_i |
//! COM))`).  The paper uses the Balas–Xue branch-and-bound \[7\]; the instances
//! here are tiny (at most a few dozen embeddings per feature/graph pair), so we
//! implement a Carraghan–Pardalos style weighted branch-and-bound with a
//! sum-of-remaining-weights upper bound, which is exact and more than fast
//! enough.
//!
//! The compatibility graph is passed as an adjacency matrix to keep this module
//! independent of the labelled [`crate::model::Graph`] type (the clique instance
//! is not a labelled data graph).

/// Options for the clique search.
#[derive(Debug, Clone, Copy)]
pub struct CliqueOptions {
    /// Abort after this many search nodes and return the best clique found so
    /// far (the result is then a valid clique but possibly not maximum).
    pub max_steps: u64,
}

impl Default for CliqueOptions {
    fn default() -> Self {
        CliqueOptions {
            max_steps: 2_000_000,
        }
    }
}

/// Result of a maximum weight clique search.
#[derive(Debug, Clone, PartialEq)]
pub struct CliqueResult {
    /// Indices of the chosen nodes (sorted ascending).
    pub members: Vec<usize>,
    /// Total weight of the clique.
    pub weight: f64,
    /// True if the search ran to completion (result is provably maximum).
    pub optimal: bool,
}

/// A symmetric boolean adjacency matrix with word-packed rows: row `i` is
/// `words_per_row` `u64` words, bit `j` of the row is the `(i, j)` entry.
/// One flat allocation for the whole matrix instead of `n` heap rows, and a
/// pairwise predicate that is one shift/AND.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-false `n × n` matrix.
    pub fn new(n: usize) -> BitMatrix {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0u64; n * words_per_row],
        }
    }

    /// Number of nodes (rows).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets entry `(i, j)` (one direction only).
    pub fn set(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] |= 1u64 << (j % 64);
    }

    /// Sets both `(i, j)` and `(j, i)` — the symmetric-matrix builder.
    pub fn set_pair(&mut self, i: usize, j: usize) {
        self.set(i, j);
        self.set(j, i);
    }

    /// The `(i, j)` entry.
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.bits[i * self.words_per_row + j / 64] & (1u64 << (j % 64)) != 0
    }
}

/// Finds a maximum weight clique of the compatibility graph.
///
/// * `weights[i]` — non-negative weight of node `i` (nodes with non-positive
///   weight are never selected: they cannot improve a clique).
/// * `adjacent.get(i, j)` — true if nodes `i` and `j` are compatible (may
///   appear in the same clique). The diagonal is ignored.
pub fn max_weight_clique(
    weights: &[f64],
    adjacent: &BitMatrix,
    options: CliqueOptions,
) -> CliqueResult {
    let n = weights.len();
    assert_eq!(adjacent.len(), n, "adjacency matrix must be n x n");
    let mut search = CliqueSearch {
        weights,
        adjacent,
        best: Vec::new(),
        best_weight: 0.0,
        steps: 0,
        max_steps: options.max_steps,
        aborted: false,
    };
    // Candidate order: descending weight, so good cliques are found early and
    // the bound prunes more.
    let mut candidates: Vec<usize> = (0..n).filter(|&i| weights[i] > 0.0).collect();
    candidates.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut current = Vec::new();
    search.expand(&mut current, 0.0, &candidates);
    let mut members = search.best.clone();
    members.sort_unstable();
    CliqueResult {
        members,
        weight: search.best_weight,
        optimal: !search.aborted,
    }
}

struct CliqueSearch<'a> {
    weights: &'a [f64],
    adjacent: &'a BitMatrix,
    best: Vec<usize>,
    best_weight: f64,
    steps: u64,
    max_steps: u64,
    aborted: bool,
}

impl CliqueSearch<'_> {
    fn expand(&mut self, current: &mut Vec<usize>, current_weight: f64, candidates: &[usize]) {
        self.steps += 1;
        if self.steps > self.max_steps {
            self.aborted = true;
            return;
        }
        if current_weight > self.best_weight {
            self.best_weight = current_weight;
            self.best = current.clone();
        }
        if candidates.is_empty() {
            return;
        }
        // Upper bound: current weight + everything still available.
        let available: f64 = candidates.iter().map(|&c| self.weights[c]).sum();
        if current_weight + available <= self.best_weight {
            return;
        }
        for (pos, &c) in candidates.iter().enumerate() {
            if self.aborted {
                return;
            }
            // Bound again for the suffix starting at pos.
            let suffix: f64 = candidates[pos..].iter().map(|&x| self.weights[x]).sum();
            if current_weight + suffix <= self.best_weight {
                return;
            }
            let next: Vec<usize> = candidates[pos + 1..]
                .iter()
                .copied()
                .filter(|&x| self.adjacent.get(c, x))
                .collect();
            current.push(c);
            self.expand(current, current_weight + self.weights[c], &next);
            current.pop();
        }
    }
}

/// Builds the disjointness adjacency matrix for a family of sorted edge sets:
/// nodes are the sets, two nodes are adjacent iff their sets are disjoint.
/// This is the `fG` construction of Section 4.1 applied to either embeddings or
/// cuts.
pub fn disjointness_matrix(sets: &[Vec<crate::model::EdgeId>]) -> BitMatrix {
    let n = sets.len();
    let mut adj = BitMatrix::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if crate::embeddings::edge_sets_disjoint(&sets[i], &sets[j]) {
                adj.set_pair(i, j);
            }
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EdgeId;

    fn matrix_of_pairs(n: usize, pairs: &[(usize, usize)]) -> BitMatrix {
        let mut adj = BitMatrix::new(n);
        for &(a, b) in pairs {
            adj.set_pair(a, b);
        }
        adj
    }

    #[test]
    fn single_node_graph() {
        let r = max_weight_clique(&[2.5], &BitMatrix::new(1), CliqueOptions::default());
        assert_eq!(r.members, vec![0]);
        assert!((r.weight - 2.5).abs() < 1e-12);
        assert!(r.optimal);
    }

    #[test]
    fn empty_input() {
        let r = max_weight_clique(&[], &BitMatrix::new(0), CliqueOptions::default());
        assert!(r.members.is_empty());
        assert_eq!(r.weight, 0.0);
    }

    #[test]
    fn triangle_plus_heavy_isolated_node() {
        // Nodes 0,1,2 form a triangle with weight 1 each; node 3 is isolated
        // with weight 2.5. The triangle (weight 3) wins.
        let weights = vec![1.0, 1.0, 1.0, 2.5];
        let adj = matrix_of_pairs(4, &[(0, 1), (1, 2), (0, 2)]);
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![0, 1, 2]);
        assert!((r.weight - 3.0).abs() < 1e-12);

        // Make the isolated node heavier than the triangle: it wins.
        let weights = vec![1.0, 1.0, 1.0, 3.5];
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![3]);
    }

    #[test]
    fn zero_weight_nodes_are_ignored() {
        let weights = vec![0.0, 1.0, 0.0];
        let adj = matrix_of_pairs(3, &[(0, 1), (0, 2), (1, 2)]);
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![1]);
    }

    #[test]
    fn figure_7_embedding_clique() {
        // Example 6: embeddings EM1={e1,e2}, EM2={e2,e3}, EM3={e3,e4}. The two
        // maximal cliques of fG are {EM1,EM3} and {EM2}. With equal weights the
        // pair wins.
        let sets = vec![
            vec![EdgeId(1), EdgeId(2)],
            vec![EdgeId(2), EdgeId(3)],
            vec![EdgeId(3), EdgeId(4)],
        ];
        let adj = disjointness_matrix(&sets);
        assert!(adj.get(0, 2) && adj.get(2, 0));
        assert!(!adj.get(0, 1) && !adj.get(1, 2));
        let w = vec![0.5, 0.6, 0.5];
        let r = max_weight_clique(&w, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![0, 2]);
        assert!((r.weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_cap_still_returns_valid_clique() {
        // A moderately sized random-ish instance with a tiny step budget.
        let n = 20;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 % 3.0)).collect();
        let mut adj = BitMatrix::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if (i + j) % 3 != 0 {
                    adj.set_pair(i, j);
                }
            }
        }
        let r = max_weight_clique(&weights, &adj, CliqueOptions { max_steps: 5 });
        // Whatever was found must be a clique.
        for (x, &a) in r.members.iter().enumerate() {
            for &b in &r.members[x + 1..] {
                assert!(adj.get(a, b), "returned nodes {a},{b} are not adjacent");
            }
        }
    }

    #[test]
    fn weights_drive_selection_not_cardinality() {
        // Two disjoint pairs {0,1} (weight 1+1) vs single node 2 (weight 5).
        let weights = vec![1.0, 1.0, 5.0];
        let adj = matrix_of_pairs(3, &[(0, 1)]);
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![2]);
        assert!((r.weight - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bitmatrix_matches_nested_vec_reference() {
        // The word-packed matrix must agree entry-for-entry with the old
        // Vec<Vec<bool>> construction, including sizes that straddle the
        // 64-bit word boundary.
        for n in [0usize, 1, 7, 63, 64, 65, 130] {
            // Deterministic pseudo-random edge sets: set i touches edges
            // derived from a small LCG so disjointness varies.
            let sets: Vec<Vec<EdgeId>> = (0..n)
                .map(|i| {
                    let mut s = (i as u64)
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1);
                    let mut edges: Vec<EdgeId> = (0..3)
                        .map(|_| {
                            s = s
                                .wrapping_mul(6_364_136_223_846_793_005)
                                .wrapping_add(1_442_695_040_888_963_407);
                            EdgeId((s >> 33) as u32 % 40)
                        })
                        .collect();
                    edges.sort_unstable();
                    edges.dedup();
                    edges
                })
                .collect();

            let mut reference = vec![vec![false; n]; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = crate::embeddings::edge_sets_disjoint(&sets[i], &sets[j]);
                    reference[i][j] = d;
                    reference[j][i] = d;
                }
            }

            let packed = disjointness_matrix(&sets);
            assert_eq!(packed.len(), n);
            for (i, row) in reference.iter().enumerate() {
                for (j, &want) in row.iter().enumerate() {
                    assert_eq!(packed.get(i, j), want, "n={n} entry ({i},{j}) differs");
                }
            }
        }
    }
}
