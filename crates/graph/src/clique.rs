//! Maximum weight clique search.
//!
//! Section 4.1 turns "pick the best set of pairwise-disjoint embeddings (resp.
//! cuts)" into a **maximum weight clique** problem on a compatibility graph
//! `fG` whose nodes are embeddings/cuts, whose links connect disjoint pairs and
//! whose node weights are `-ln(1 - Pr(Bf_i | COR))` (resp. `-ln(1 - Pr(Bc_i |
//! COM))`).  The paper uses the Balas–Xue branch-and-bound \[7\]; the instances
//! here are tiny (at most a few dozen embeddings per feature/graph pair), so we
//! implement a Carraghan–Pardalos style weighted branch-and-bound with a
//! sum-of-remaining-weights upper bound, which is exact and more than fast
//! enough.
//!
//! The compatibility graph is passed as an adjacency matrix to keep this module
//! independent of the labelled [`crate::model::Graph`] type (the clique instance
//! is not a labelled data graph).

/// Options for the clique search.
#[derive(Debug, Clone, Copy)]
pub struct CliqueOptions {
    /// Abort after this many search nodes and return the best clique found so
    /// far (the result is then a valid clique but possibly not maximum).
    pub max_steps: u64,
}

impl Default for CliqueOptions {
    fn default() -> Self {
        CliqueOptions {
            max_steps: 2_000_000,
        }
    }
}

/// Result of a maximum weight clique search.
#[derive(Debug, Clone, PartialEq)]
pub struct CliqueResult {
    /// Indices of the chosen nodes (sorted ascending).
    pub members: Vec<usize>,
    /// Total weight of the clique.
    pub weight: f64,
    /// True if the search ran to completion (result is provably maximum).
    pub optimal: bool,
}

/// Finds a maximum weight clique of the compatibility graph.
///
/// * `weights[i]` — non-negative weight of node `i` (nodes with non-positive
///   weight are never selected: they cannot improve a clique).
/// * `adjacent[i][j]` — true if nodes `i` and `j` are compatible (may appear in
///   the same clique). The diagonal is ignored.
pub fn max_weight_clique(
    weights: &[f64],
    adjacent: &[Vec<bool>],
    options: CliqueOptions,
) -> CliqueResult {
    let n = weights.len();
    assert_eq!(adjacent.len(), n, "adjacency matrix must be n x n");
    for row in adjacent {
        assert_eq!(row.len(), n, "adjacency matrix must be n x n");
    }
    let mut search = CliqueSearch {
        weights,
        adjacent,
        best: Vec::new(),
        best_weight: 0.0,
        steps: 0,
        max_steps: options.max_steps,
        aborted: false,
    };
    // Candidate order: descending weight, so good cliques are found early and
    // the bound prunes more.
    let mut candidates: Vec<usize> = (0..n).filter(|&i| weights[i] > 0.0).collect();
    candidates.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut current = Vec::new();
    search.expand(&mut current, 0.0, &candidates);
    let mut members = search.best.clone();
    members.sort_unstable();
    CliqueResult {
        members,
        weight: search.best_weight,
        optimal: !search.aborted,
    }
}

struct CliqueSearch<'a> {
    weights: &'a [f64],
    adjacent: &'a [Vec<bool>],
    best: Vec<usize>,
    best_weight: f64,
    steps: u64,
    max_steps: u64,
    aborted: bool,
}

impl CliqueSearch<'_> {
    fn expand(&mut self, current: &mut Vec<usize>, current_weight: f64, candidates: &[usize]) {
        self.steps += 1;
        if self.steps > self.max_steps {
            self.aborted = true;
            return;
        }
        if current_weight > self.best_weight {
            self.best_weight = current_weight;
            self.best = current.clone();
        }
        if candidates.is_empty() {
            return;
        }
        // Upper bound: current weight + everything still available.
        let available: f64 = candidates.iter().map(|&c| self.weights[c]).sum();
        if current_weight + available <= self.best_weight {
            return;
        }
        for (pos, &c) in candidates.iter().enumerate() {
            if self.aborted {
                return;
            }
            // Bound again for the suffix starting at pos.
            let suffix: f64 = candidates[pos..].iter().map(|&x| self.weights[x]).sum();
            if current_weight + suffix <= self.best_weight {
                return;
            }
            let next: Vec<usize> = candidates[pos + 1..]
                .iter()
                .copied()
                .filter(|&x| self.adjacent[c][x])
                .collect();
            current.push(c);
            self.expand(current, current_weight + self.weights[c], &next);
            current.pop();
        }
    }
}

/// Builds the disjointness adjacency matrix for a family of sorted edge sets:
/// nodes are the sets, two nodes are adjacent iff their sets are disjoint.
/// This is the `fG` construction of Section 4.1 applied to either embeddings or
/// cuts.
pub fn disjointness_matrix(sets: &[Vec<crate::model::EdgeId>]) -> Vec<Vec<bool>> {
    let n = sets.len();
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = crate::embeddings::edge_sets_disjoint(&sets[i], &sets[j]);
            adj[i][j] = d;
            adj[j][i] = d;
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EdgeId;

    #[test]
    fn single_node_graph() {
        let r = max_weight_clique(&[2.5], &[vec![false]], CliqueOptions::default());
        assert_eq!(r.members, vec![0]);
        assert!((r.weight - 2.5).abs() < 1e-12);
        assert!(r.optimal);
    }

    #[test]
    fn empty_input() {
        let r = max_weight_clique(&[], &[], CliqueOptions::default());
        assert!(r.members.is_empty());
        assert_eq!(r.weight, 0.0);
    }

    #[test]
    fn triangle_plus_heavy_isolated_node() {
        // Nodes 0,1,2 form a triangle with weight 1 each; node 3 is isolated
        // with weight 2.5. The triangle (weight 3) wins.
        let weights = vec![1.0, 1.0, 1.0, 2.5];
        let mut adj = vec![vec![false; 4]; 4];
        for &(a, b) in &[(0, 1), (1, 2), (0, 2)] {
            adj[a][b] = true;
            adj[b][a] = true;
        }
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![0, 1, 2]);
        assert!((r.weight - 3.0).abs() < 1e-12);

        // Make the isolated node heavier than the triangle: it wins.
        let weights = vec![1.0, 1.0, 1.0, 3.5];
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![3]);
    }

    #[test]
    fn zero_weight_nodes_are_ignored() {
        let weights = vec![0.0, 1.0, 0.0];
        let adj = vec![
            vec![false, true, true],
            vec![true, false, true],
            vec![true, true, false],
        ];
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![1]);
    }

    #[test]
    fn figure_7_embedding_clique() {
        // Example 6: embeddings EM1={e1,e2}, EM2={e2,e3}, EM3={e3,e4}. The two
        // maximal cliques of fG are {EM1,EM3} and {EM2}. With equal weights the
        // pair wins.
        let sets = vec![
            vec![EdgeId(1), EdgeId(2)],
            vec![EdgeId(2), EdgeId(3)],
            vec![EdgeId(3), EdgeId(4)],
        ];
        let adj = disjointness_matrix(&sets);
        assert!(adj[0][2] && adj[2][0]);
        assert!(!adj[0][1] && !adj[1][2]);
        let w = vec![0.5, 0.6, 0.5];
        let r = max_weight_clique(&w, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![0, 2]);
        assert!((r.weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_cap_still_returns_valid_clique() {
        // A moderately sized random-ish instance with a tiny step budget.
        let n = 20;
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 % 3.0)).collect();
        let mut adj = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in 0..n {
                if i != j && (i + j) % 3 != 0 {
                    adj[i][j] = true;
                }
            }
        }
        let r = max_weight_clique(&weights, &adj, CliqueOptions { max_steps: 5 });
        // Whatever was found must be a clique.
        for (x, &a) in r.members.iter().enumerate() {
            for &b in &r.members[x + 1..] {
                assert!(adj[a][b], "returned nodes {a},{b} are not adjacent");
            }
        }
    }

    #[test]
    fn weights_drive_selection_not_cardinality() {
        // Two disjoint pairs {0,1} (weight 1+1) vs single node 2 (weight 5).
        let weights = vec![1.0, 1.0, 5.0];
        let adj = vec![
            vec![false, true, false],
            vec![true, false, false],
            vec![false, false, false],
        ];
        let r = max_weight_clique(&weights, &adj, CliqueOptions::default());
        assert_eq!(r.members, vec![2]);
        assert!((r.weight - 5.0).abs() < 1e-12);
    }
}
