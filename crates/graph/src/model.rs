//! Core labelled undirected graph model.
//!
//! The paper (Definition 1) works with undirected *deterministic graphs*
//! `gc = (V, E, Σ, L)` where both vertices and edges carry labels from a common
//! alphabet `Σ`.  [`Graph`] stores vertices and edges in contiguous vectors and
//! keeps a per-vertex adjacency list, which is the access pattern every matcher
//! in this workspace needs (iterate neighbours of a partially-mapped vertex).
//!
//! Self-loops and parallel edges are rejected: neither appears in the paper's
//! data model and every downstream algorithm (VF2, MCS, relaxation) assumes
//! simple graphs.

use crate::arena::CsrAdjacency;
use crate::error::GraphError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// A vertex identifier. Vertices are numbered densely from `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

/// An edge identifier. Edges are numbered densely from `0` in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

/// A label drawn from the alphabet `Σ` shared by vertices and edges.
///
/// Labels are plain integers; string alphabets (e.g. COG functional annotations
/// in the PPI dataset) are interned by the data generator before graphs are
/// built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl VertexId {
    /// The vertex id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Label {
    /// The raw label value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An undirected edge: two endpoints (stored with `u < v`) and a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Edge label.
    pub label: Label,
}

impl Edge {
    /// The endpoint opposite to `x`, or `None` if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: VertexId) -> Option<VertexId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }

    /// Whether the edge is incident to vertex `x`.
    #[inline]
    pub fn touches(&self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }
}

/// A labelled, undirected, simple graph.
///
/// This is the deterministic graph `gc` of Definition 1. Both query graphs,
/// database skeletons, relaxed queries and index features use this type.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Optional human-readable name (dataset id, query id, ...).
    name: String,
    vertex_labels: Vec<Label>,
    edges: Vec<Edge>,
    /// CSR adjacency, rebuilt lazily from `edges` after mutation.  Row `v`
    /// lists `(neighbour, edge id)` pairs in edge-insertion order — exactly
    /// what the old per-vertex `Vec` rows held — so traversal order (and with
    /// it every sampled answer) is unchanged by the flat layout.
    csr: OnceLock<CsrAdjacency>,
    /// Fast lookup of edge id by (min endpoint, max endpoint).
    edge_index: BTreeMap<(u32, u32), EdgeId>,
}

/// The CSR cache is derived state: two graphs are equal iff their logical
/// content (name, labels, edge list) is, regardless of whether either has
/// materialised its adjacency yet.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.vertex_labels == other.vertex_labels
            && self.edges == other.edges
            && self.edge_index == other.edge_index
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with the given name.
    pub fn with_name(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Graph name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the graph name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edges `|E|` — the paper's `|g|` (Definition 8 counts edges).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertex_labels.is_empty()
    }

    /// Adds a vertex with the given label and returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId(self.vertex_labels.len() as u32);
        self.vertex_labels.push(label);
        self.csr = OnceLock::new();
        id
    }

    /// Adds an undirected edge `(u, v)` with `label`.
    ///
    /// Returns an error for out-of-range endpoints, self-loops and duplicate
    /// edges.
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        label: Label,
    ) -> Result<EdgeId, GraphError> {
        let n = self.vertex_count();
        if u.index() >= n {
            return Err(GraphError::InvalidVertex(u.index()));
        }
        if v.index() >= n {
            return Err(GraphError::InvalidVertex(v.index()));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u.index()));
        }
        let key = (u.0.min(v.0), u.0.max(v.0));
        if self.edge_index.contains_key(&key) {
            return Err(GraphError::DuplicateEdge(key.0 as usize, key.1 as usize));
        }
        let id = EdgeId(self.edges.len() as u32);
        let (a, b) = if u.0 < v.0 { (u, v) } else { (v, u) };
        self.edges.push(Edge { u: a, v: b, label });
        self.csr = OnceLock::new();
        self.edge_index.insert(key, id);
        Ok(id)
    }

    /// The materialised CSR adjacency, building it on first use after a
    /// mutation.
    #[inline]
    fn csr(&self) -> &CsrAdjacency {
        self.csr
            .get_or_init(|| CsrAdjacency::build(self.vertex_labels.len(), &self.edges))
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> Label {
        self.vertex_labels[v.index()]
    }

    /// The edge record for `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Label of edge `e`.
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> Label {
        self.edges[e.index()].label
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_labels.len() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterator over `(EdgeId, &Edge)` pairs.
    pub fn edge_entries(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// Slice of edge records indexed by edge id.
    pub fn edge_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Slice of vertex labels indexed by vertex id.
    pub fn vertex_labels(&self) -> &[Label] {
        &self.vertex_labels
    }

    /// Neighbours of `v` as `(neighbour, edge id)` pairs, in insertion order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        self.csr().row(v.index())
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.csr().degree(v.index())
    }

    /// Looks up the edge between `u` and `v`, if any.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let key = (u.0.min(v.0), u.0.max(v.0));
        self.edge_index.get(&key).copied()
    }

    /// True if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Edge ids incident to vertex `v`.
    pub fn incident_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.csr().row(v.index()).iter().map(|&(_, e)| e)
    }

    /// A deterministic 64-bit FNV-style hash of the graph structure (vertex
    /// labels and edge list, insertion order; the name is excluded).  Used to
    /// derive per-query and per-graph RNG seeds that are independent of where
    /// the graph sits in a database, so sampled results do not drift with
    /// insertion order.
    pub fn structural_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.vertex_count() as u64);
        mix(self.edge_count() as u64);
        for &l in &self.vertex_labels {
            mix(l.0 as u64);
        }
        for e in &self.edges {
            mix(e.u.0 as u64);
            mix(e.v.0 as u64);
            mix(e.label.0 as u64);
        }
        h
    }

    /// Multiset of (vertex label) counts — used by cheap structural filters.
    pub fn vertex_label_histogram(&self) -> BTreeMap<Label, usize> {
        let mut h = BTreeMap::new();
        for &l in &self.vertex_labels {
            *h.entry(l).or_insert(0) += 1;
        }
        h
    }

    /// Multiset of (edge label, endpoint labels) triple counts, endpoint labels
    /// sorted; used by cheap structural filters.
    pub fn edge_signature_histogram(&self) -> BTreeMap<(Label, Label, Label), usize> {
        let mut h = BTreeMap::new();
        for e in &self.edges {
            let lu = self.vertex_label(e.u);
            let lv = self.vertex_label(e.v);
            let (a, b) = if lu <= lv { (lu, lv) } else { (lv, lu) };
            *h.entry((e.label, a, b)).or_insert(0) += 1;
        }
        h
    }

    /// Builds the subgraph induced by keeping only the edges in `keep`
    /// (all vertices are retained, mirroring possible-world semantics where the
    /// vertex set never changes — Definition 3).
    pub fn edge_subgraph(&self, keep: &[EdgeId]) -> Graph {
        let mut g = Graph::with_name(self.name.clone());
        for &l in &self.vertex_labels {
            g.add_vertex(l);
        }
        let mut sorted: Vec<EdgeId> = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for e in sorted {
            let edge = self.edge(e);
            // Safe: endpoints and uniqueness come from an existing simple graph.
            g.add_edge(edge.u, edge.v, edge.label)
                // pgs-lint: allow(panic-in-library, edges of a simple source graph stay unique under projection)
                .expect("edge_subgraph: source graph must be simple");
        }
        g
    }

    /// Builds a new graph containing only the vertices in `keep_vertices` (and
    /// the edges among them), renumbering vertices densely. Returns the new
    /// graph plus the mapping `old vertex id -> new vertex id`.
    pub fn induced_subgraph(
        &self,
        keep_vertices: &[VertexId],
    ) -> (Graph, BTreeMap<VertexId, VertexId>) {
        let mut g = Graph::with_name(self.name.clone());
        let mut map = BTreeMap::new();
        let mut sorted = keep_vertices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &v in &sorted {
            let nv = g.add_vertex(self.vertex_label(v));
            map.insert(v, nv);
        }
        for (_, e) in self.edge_entries() {
            if let (Some(&nu), Some(&nv)) = (map.get(&e.u), map.get(&e.v)) {
                g.add_edge(nu, nv, e.label)
                    // pgs-lint: allow(panic-in-library, edges of a simple source graph stay unique under renumbering)
                    .expect("induced_subgraph: source graph must be simple");
            }
        }
        (g, map)
    }

    /// True if every vertex is reachable from vertex 0 (empty graphs count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        crate::traversal::is_connected(self)
    }

    /// Total size used by Definition 8: the number of edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.edge_count()
    }
}

/// Convenience builder used pervasively in tests, examples and generators.
///
/// ```
/// use pgs_graph::model::{GraphBuilder, Label};
///
/// // The query graph `q` of Figure 1: a triangle a-b-c with unlabelled edges.
/// let q = GraphBuilder::new()
///     .vertices(&[0, 1, 2]) // labels a, b, c
///     .edge(0, 1, 0)
///     .edge(1, 2, 0)
///     .edge(0, 2, 0)
///     .build();
/// assert_eq!(q.vertex_count(), 3);
/// assert_eq!(q.edge_count(), 3);
/// assert_eq!(q.vertex_label(pgs_graph::model::VertexId(0)), Label(0));
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    name: String,
    vertex_labels: Vec<u32>,
    edges: Vec<(u32, u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the graph name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds one vertex with the raw label value and returns the builder.
    pub fn vertex(mut self, label: u32) -> Self {
        self.vertex_labels.push(label);
        self
    }

    /// Adds several vertices with the given raw label values.
    pub fn vertices(mut self, labels: &[u32]) -> Self {
        self.vertex_labels.extend_from_slice(labels);
        self
    }

    /// Adds an edge between vertex indices `u` and `v` with the raw label value.
    pub fn edge(mut self, u: u32, v: u32, label: u32) -> Self {
        self.edges.push((u, v, label));
        self
    }

    /// Builds the graph, panicking on malformed input (tests/examples only;
    /// fallible construction goes through [`Graph`] directly).
    pub fn build(self) -> Graph {
        self.try_build()
            // pgs-lint: allow(panic-in-library, documented panic: build() panics on invalid input; try_build is the fallible variant)
            .expect("GraphBuilder produced an invalid graph")
    }

    /// Builds the graph, returning an error on malformed input.
    pub fn try_build(self) -> Result<Graph, GraphError> {
        let mut g = Graph::with_name(self.name);
        for l in self.vertex_labels {
            g.add_vertex(Label(l));
        }
        for (u, v, l) in self.edges {
            g.add_edge(VertexId(u), VertexId(v), Label(l))?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        GraphBuilder::new()
            .vertices(&[1, 2, 3])
            .edge(0, 1, 10)
            .edge(1, 2, 11)
            .edge(0, 2, 12)
            .build()
    }

    #[test]
    fn build_and_query_basic_properties() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.size(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.vertex_label(VertexId(0)), Label(1));
        assert_eq!(g.vertex_label(VertexId(2)), Label(3));
        assert_eq!(g.edge_label(EdgeId(1)), Label(11));
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(1)), 2);
    }

    #[test]
    fn edge_lookup_is_symmetric() {
        let g = triangle();
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(g.find_edge(VertexId(1), VertexId(0)), Some(e));
        assert!(g.has_edge(VertexId(2), VertexId(0)));
        assert_eq!(g.find_edge(VertexId(0), VertexId(0)), None);
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = Graph::new();
        let a = g.add_vertex(Label(0));
        let b = g.add_vertex(Label(0));
        assert_eq!(g.add_edge(a, a, Label(0)), Err(GraphError::SelfLoop(0)));
        g.add_edge(a, b, Label(0)).unwrap();
        assert_eq!(
            g.add_edge(b, a, Label(1)),
            Err(GraphError::DuplicateEdge(0, 1))
        );
        assert_eq!(
            g.add_edge(a, VertexId(9), Label(0)),
            Err(GraphError::InvalidVertex(9))
        );
    }

    #[test]
    fn edge_other_and_touches() {
        let g = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(VertexId(0)), Some(VertexId(1)));
        assert_eq!(e.other(VertexId(1)), Some(VertexId(0)));
        assert_eq!(e.other(VertexId(2)), None);
        assert!(e.touches(VertexId(0)));
        assert!(!e.touches(VertexId(2)));
    }

    #[test]
    fn edge_subgraph_keeps_all_vertices() {
        let g = triangle();
        let sub = g.edge_subgraph(&[EdgeId(0), EdgeId(0)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(VertexId(0), VertexId(1)));
        assert!(!sub.has_edge(VertexId(1), VertexId(2)));
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[VertexId(1), VertexId(2)]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.vertex_label(map[&VertexId(1)]), Label(2));
        assert_eq!(sub.vertex_label(map[&VertexId(2)]), Label(3));
    }

    #[test]
    fn histograms_count_labels() {
        let g = GraphBuilder::new()
            .vertices(&[5, 5, 7])
            .edge(0, 1, 1)
            .edge(1, 2, 1)
            .build();
        let vh = g.vertex_label_histogram();
        assert_eq!(vh[&Label(5)], 2);
        assert_eq!(vh[&Label(7)], 1);
        let eh = g.edge_signature_histogram();
        assert_eq!(eh[&(Label(1), Label(5), Label(5))], 1);
        assert_eq!(eh[&(Label(1), Label(5), Label(7))], 1);
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        let mut h = Graph::new();
        h.add_vertex(Label(0));
        h.add_vertex(Label(0));
        assert!(!h.is_connected());
        assert!(Graph::new().is_connected());
    }

    #[test]
    fn display_impls() {
        assert_eq!(VertexId(2).to_string(), "v2");
        assert_eq!(EdgeId(3).to_string(), "e3");
        assert_eq!(Label(4).to_string(), "L4");
    }
}
