//! Persistent worker pool behind [`crate::parallel::par_map_chunked`].
//!
//! The original executor spawned fresh `std::thread::scope` workers on every
//! call — several spawns per query phase, several phases per query.  On a
//! multi-core machine that is avoidable kernel work on the hot path; on a
//! one-core container it made automatic threading *lose* to the sequential
//! path outright.  This module replaces the pattern with one process-wide
//! pool of parked workers that is spawned lazily on the first parallel
//! dispatch and reused by every later call.
//!
//! ## Dispatch model
//!
//! A call submits one [`Job`]: a chunk count plus a `Fn(usize)` task invoked
//! once per chunk index.  Jobs sit in a FIFO queue; workers (and the
//! submitting thread itself) claim chunk indices with an atomic counter and
//! run them.  The *submitter participates*, which gives two properties:
//!
//! * **progress without workers** — even if every pool worker is busy (or the
//!   pool is brand new and empty), the submitting thread drives its own job
//!   to completion, so nested dispatch from inside a worker can never
//!   deadlock;
//! * **no oversubscription cliff** — a dispatch for `n` workers needs only
//!   `n − 1` pool threads.
//!
//! ## Determinism contract (DESIGN.md §8 and §12)
//!
//! The pool schedules *which thread* runs a chunk, never *what* a chunk is:
//! chunk boundaries and the global item indices handed to the mapping closure
//! are fixed by the caller before dispatch.  Since every closure in this
//! codebase derives its randomness from the global index or item identity
//! (see [`crate::parallel::derive_seed`]), results are byte-identical no
//! matter how many workers exist or which of them claims which chunk.
//!
//! ## Panics
//!
//! A panicking chunk does not kill a worker: the payload is caught, the
//! remaining chunks still complete (so borrowed inputs stay valid for the
//! stragglers), and the *first* payload is re-raised on the submitting thread
//! with [`std::panic::resume_unwind`], preserving the original message.

// The one unsafe operation in the crate: erasing the task lifetime when
// handing it to 'static worker threads.  `Pool::run` blocks until every chunk
// has finished, which is what makes the erasure sound; see the SAFETY comment.
#![allow(unsafe_code)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard ceiling on worker threads.  Explicit `threads` knobs are clamped here
/// by [`crate::parallel::resolve_threads`]; `EngineConfig` validation rejects
/// larger values with a typed error before any query work starts (a literal
/// `threads = 100_000` used to attempt one hundred thousand OS threads).
pub const MAX_THREADS: usize = 64;

/// A task reference whose lifetime has been erased (see `Pool::run` for the
/// soundness argument).  `&dyn Fn + Sync` is `Send + Sync` by composition, so
/// no manual marker impls are needed.
type ErasedTask = &'static (dyn Fn(usize) + Sync);

/// Completion state of one job, guarded by `Job::done`.
struct JobDone {
    /// Chunks that have finished running (successfully or by panicking).
    completed: usize,
    /// First panic payload observed across all chunks, re-raised by the
    /// submitter once the job has fully drained.
    panic: Option<Box<dyn Any + Send>>,
}

/// One dispatched `par_map` call: `chunks` invocations of `task`, claimed
/// greedily by whichever threads get there first.
struct Job {
    task: ErasedTask,
    chunks: usize,
    /// Next unclaimed chunk index; `fetch_add` past `chunks` means exhausted.
    next: AtomicUsize,
    done: Mutex<JobDone>,
    done_cv: Condvar,
}

impl Job {
    /// Claims and runs chunks until the job is exhausted.  Never panics:
    /// chunk panics are recorded in [`JobDone`] for the submitter to re-raise.
    fn run_chunks(&self) {
        loop {
            let ci = self.next.fetch_add(1, Ordering::Relaxed);
            if ci >= self.chunks {
                return;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.task)(ci)));
            // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
            let mut done = self.done.lock().expect("pool job state poisoned");
            if let Err(payload) = outcome {
                done.panic.get_or_insert(payload);
            }
            done.completed += 1;
            if done.completed == self.chunks {
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.chunks
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
}

/// A persistent pool of parked worker threads.
///
/// Most code should go through [`crate::parallel::par_map_chunked`], which
/// dispatches on the process-wide [`global`] pool; constructing a private
/// pool is useful in tests that need to observe worker counts in isolation.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Workers spawned so far (they are never torn down).
    spawned: Mutex<usize>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned lazily by [`Self::run`].
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// Worker threads spawned so far.  Stable across repeated dispatches at
    /// the same worker count — the reuse guarantee the leak tests pin.
    pub fn spawned_workers(&self) -> usize {
        // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
        *self.spawned.lock().expect("pool spawn count poisoned")
    }

    /// Runs `task(0..chunks)` across up to `workers` threads (the submitting
    /// thread counts as one) and returns once every chunk has completed.
    ///
    /// If any chunk panicked, the first payload is re-raised here *after* the
    /// job has drained, so the task's borrows stay valid for straggling
    /// workers.
    pub fn run(&self, chunks: usize, workers: usize, task: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        // The submitter participates, so `workers` executors need only
        // `workers − 1` pool threads; never park more than the chunks we
        // could hand out concurrently.
        self.ensure_workers(workers.min(chunks).min(MAX_THREADS).saturating_sub(1));

        // SAFETY: `task` only needs to outlive every invocation through the
        // erased reference.  All invocations happen between the queue push
        // below and the completion wait: a chunk is only ever *called* after
        // an atomic claim of `next` below `chunks`, and this function does
        // not return (or unwind — the panic is re-raised after the wait)
        // until `completed == chunks`.  Stragglers that cloned the job Arc
        // after exhaustion read only the atomics, never the task pointer.
        let task: ErasedTask =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), ErasedTask>(task) };
        let job = Arc::new(Job {
            task,
            chunks,
            next: AtomicUsize::new(0),
            done: Mutex::new(JobDone {
                completed: 0,
                panic: None,
            }),
            done_cv: Condvar::new(),
        });
        {
            // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.push_back(job.clone());
        }
        self.shared.work_cv.notify_all();

        job.run_chunks();

        let payload = {
            // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
            let mut done = job.done.lock().expect("pool job state poisoned");
            while done.completed < job.chunks {
                done = job
                    .done_cv
                    .wait(done)
                    // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
                    .expect("pool job state poisoned while waiting");
            }
            done.panic.take()
        };
        // Drop our queue entry eagerly instead of leaving it for the next
        // worker scan (the job is exhausted, so workers would skip it anyway).
        {
            // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            if let Some(pos) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
                queue.remove(pos);
            }
        }
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Tops the pool up to `target` parked workers.
    fn ensure_workers(&self, target: usize) {
        // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
        let mut spawned = self.spawned.lock().expect("pool spawn count poisoned");
        while *spawned < target {
            let shared = self.shared.clone();
            std::thread::Builder::new()
                .name(format!("pgs-pool-{spawned}"))
                .spawn(move || worker_loop(&shared))
                // pgs-lint: allow(panic-in-library, no worker threads means no executor; spawn failure is fatal by design)
                .expect("spawning a pool worker thread");
            *spawned += 1;
        }
    }
}

/// Park on the queue, drain claimable jobs, repeat forever.  Workers are
/// detached and die with the process.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                // Exhausted jobs at the front are finished work whose
                // submitter has not unlinked them yet; skip past them.
                while queue.front().is_some_and(|j| j.exhausted()) {
                    queue.pop_front();
                }
                if let Some(job) = queue.front() {
                    break job.clone();
                }
                queue = shared
                    .work_cv
                    .wait(queue)
                    // pgs-lint: allow(panic-in-library, lock poisoning means a sibling worker panicked; propagating is the designed behavior)
                    .expect("pool queue poisoned while parked");
            }
        };
        job.run_chunks();
    }
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool used by [`crate::parallel::par_map_chunked`].
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(WorkerPool::new)
}

/// Workers spawned by the process-wide pool so far (0 until the first
/// parallel dispatch; never exceeds [`MAX_THREADS`]).
pub fn global_worker_count() -> usize {
    GLOBAL.get().map_or(0, WorkerPool::spawned_workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_invokes_every_chunk_exactly_once() {
        let pool = WorkerPool::new();
        let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), 4, &|ci| {
            hits[ci].fetch_add(1, Ordering::Relaxed);
        });
        for (ci, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {ci}");
        }
        assert_eq!(pool.spawned_workers(), 3);
    }

    #[test]
    fn workers_are_reused_across_dispatches() {
        let pool = WorkerPool::new();
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.run(8, 4, &|ci| {
                sum.fetch_add(ci + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 36, "round {round}");
            assert_eq!(
                pool.spawned_workers(),
                3,
                "round {round} grew the pool — workers leaked"
            );
        }
    }

    #[test]
    fn pool_grows_lazily_and_respects_the_ceiling() {
        let pool = WorkerPool::new();
        assert_eq!(pool.spawned_workers(), 0, "no dispatch, no workers");
        pool.run(2, 2, &|_| {});
        assert_eq!(pool.spawned_workers(), 1);
        // Fewer chunks than workers: no point parking extra threads.
        pool.run(2, 16, &|_| {});
        assert_eq!(pool.spawned_workers(), 1);
        pool.run(1000, MAX_THREADS + 500, &|_| {});
        assert_eq!(pool.spawned_workers(), MAX_THREADS - 1);
    }

    #[test]
    fn submitter_participates_even_with_zero_workers() {
        let pool = WorkerPool::new();
        let sum = AtomicUsize::new(0);
        // workers = 1 spawns nothing; the submitting thread does all chunks.
        pool.run(5, 1, &|ci| {
            sum.fetch_add(ci, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
        assert_eq!(pool.spawned_workers(), 0);
    }

    #[test]
    fn nested_dispatch_completes() {
        let pool = global();
        let total = AtomicUsize::new(0);
        pool.run(4, 4, &|_| {
            // Re-entrant dispatch on the same pool from inside a chunk: the
            // inner submitter participates, so this cannot deadlock even
            // with every worker busy on the outer job.
            global().run(4, 4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panic_payload_is_preserved_and_the_pool_survives() {
        let pool = WorkerPool::new();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 4, &|ci| {
                if ci == 5 {
                    panic!("chunk {ci} exploded");
                }
            });
        }))
        .expect_err("the chunk panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic! with a formatted message yields a String payload");
        assert_eq!(msg, "chunk 5 exploded");
        // The pool is still serviceable afterwards.
        let sum = AtomicUsize::new(0);
        pool.run(8, 4, &|ci| {
            sum.fetch_add(ci, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn zero_chunks_is_a_no_op() {
        let pool = WorkerPool::new();
        pool.run(0, 4, &|_| panic!("must never be called"));
        assert_eq!(pool.spawned_workers(), 0);
    }
}
