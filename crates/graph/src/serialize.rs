//! Plain-text serialization of graph databases.
//!
//! The format is the classic gSpan transaction format, which keeps datasets
//! diffable and easy to generate from external tools:
//!
//! ```text
//! t # <name>
//! v <vertex-id> <label>
//! e <u> <v> <label>
//! ```
//!
//! Vertex ids inside one transaction must be `0..n` in order; edges reference
//! those ids.  [`write_database`] / [`read_database`] round-trip a `Vec<Graph>`.

use crate::error::GraphError;
use crate::model::{Graph, Label, VertexId};
use std::fmt::Write as _;

/// Serializes one graph in gSpan transaction format.
pub fn write_graph(g: &Graph) -> String {
    let mut out = String::new();
    // pgs-lint: allow(panic-in-library, fmt::Write into a String is infallible)
    writeln!(out, "t # {}", g.name()).expect("writing to String cannot fail");
    for v in g.vertices() {
        // pgs-lint: allow(panic-in-library, fmt::Write into a String is infallible)
        writeln!(out, "v {} {}", v.0, g.vertex_label(v).0).expect("writing to String cannot fail");
    }
    for (_, e) in g.edge_entries() {
        writeln!(out, "e {} {} {}", e.u.0, e.v.0, e.label.0)
            // pgs-lint: allow(panic-in-library, fmt::Write into a String is infallible)
            .expect("writing to String cannot fail");
    }
    out
}

/// Serializes a database of graphs.
pub fn write_database(db: &[Graph]) -> String {
    let mut out = String::new();
    for g in db {
        out.push_str(&write_graph(g));
    }
    out
}

/// Parses a database of graphs from gSpan transaction format.
pub fn read_database(text: &str) -> Result<Vec<Graph>, GraphError> {
    let mut db: Vec<Graph> = Vec::new();
    let mut current: Option<Graph> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        // pgs-lint: allow(panic-in-library, split_whitespace of a line that passed the is_empty guard yields a token)
        let tag = parts.next().expect("non-empty line has a first token");
        match tag {
            "t" => {
                if let Some(g) = current.take() {
                    db.push(g);
                }
                // format: t # name
                let name: String = parts.skip(1).collect::<Vec<_>>().join(" ");
                current = Some(Graph::with_name(name));
            }
            "v" => {
                let g = current.as_mut().ok_or(GraphError::Parse {
                    line: lineno,
                    message: "vertex line before any 't' line".into(),
                })?;
                let id: usize = parse_field(parts.next(), lineno, "vertex id")?;
                let label: u32 = parse_field(parts.next(), lineno, "vertex label")?;
                if id != g.vertex_count() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!(
                            "vertex ids must be consecutive: expected {}, got {id}",
                            g.vertex_count()
                        ),
                    });
                }
                g.add_vertex(Label(label));
            }
            "e" => {
                let g = current.as_mut().ok_or(GraphError::Parse {
                    line: lineno,
                    message: "edge line before any 't' line".into(),
                })?;
                let u: u32 = parse_field(parts.next(), lineno, "edge endpoint")?;
                let v: u32 = parse_field(parts.next(), lineno, "edge endpoint")?;
                let label: u32 = parse_field(parts.next(), lineno, "edge label")?;
                g.add_edge(VertexId(u), VertexId(v), Label(label))
                    .map_err(|e| GraphError::Parse {
                        line: lineno,
                        message: e.to_string(),
                    })?;
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record tag '{other}'"),
                })
            }
        }
    }
    if let Some(g) = current.take() {
        db.push(g);
    }
    Ok(db)
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    field
        .ok_or_else(|| GraphError::Parse {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| GraphError::Parse {
            line,
            message: format!("invalid {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphBuilder;

    fn sample_db() -> Vec<Graph> {
        vec![
            GraphBuilder::new()
                .name("alpha")
                .vertices(&[0, 1, 2])
                .edge(0, 1, 5)
                .edge(1, 2, 6)
                .build(),
            GraphBuilder::new()
                .name("beta")
                .vertices(&[3, 3])
                .edge(0, 1, 0)
                .build(),
        ]
    }

    #[test]
    fn round_trip_preserves_graphs() {
        let db = sample_db();
        let text = write_database(&db);
        let back = read_database(&text).unwrap();
        assert_eq!(db, back);
        assert_eq!(back[0].name(), "alpha");
        assert_eq!(back[1].name(), "beta");
    }

    #[test]
    fn blank_lines_and_comments_are_ignored() {
        let text = "\n# a comment\nt # g0\nv 0 1\nv 1 2\n\ne 0 1 3\n";
        let db = read_database(text).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db[0].vertex_count(), 2);
        assert_eq!(db[0].edge_count(), 1);
    }

    #[test]
    fn vertex_before_transaction_is_an_error() {
        let err = read_database("v 0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn non_consecutive_vertex_ids_are_rejected() {
        let err = read_database("t # g\nv 0 1\nv 2 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));
    }

    #[test]
    fn malformed_edges_are_rejected() {
        assert!(read_database("t # g\nv 0 1\ne 0 5 1\n").is_err());
        assert!(read_database("t # g\nv 0 1\ne 0\n").is_err());
        assert!(read_database("t # g\nv 0 x\n").is_err());
        assert!(read_database("q 0 0\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_database() {
        assert!(read_database("").unwrap().is_empty());
    }
}
