//! Random graph generation and connected-subgraph extraction.
//!
//! The synthetic dataset generator (`pgs-datagen`) and the benchmark workloads
//! need (a) random labelled connected graphs whose size/label distributions can
//! be dialled to the paper's STRING/BioGRID statistics, and (b) random
//! connected query subgraphs extracted from data graphs ("query graphs in `qi`
//! are size-`i` graphs ... extracted from corresponding deterministic graphs of
//! probabilistic graphs randomly", Section 6).

use crate::model::{EdgeId, Graph, Label, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for random labelled graph generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomGraphConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges (at least `vertices - 1`; the generator first builds a
    /// random spanning tree so the result is connected).
    pub edges: usize,
    /// Size of the vertex label alphabet.
    pub vertex_labels: u32,
    /// Size of the edge label alphabet.
    pub edge_labels: u32,
    /// If true, extra edges are attached preferentially to high-degree vertices
    /// (power-law-ish, closer to PPI topology); otherwise uniformly.
    pub preferential: bool,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            vertices: 30,
            edges: 45,
            vertex_labels: 8,
            edge_labels: 1,
            preferential: true,
        }
    }
}

/// Generates a random connected labelled graph.
///
/// The construction is: random vertex labels, a random spanning tree (uniform
/// attachment), then extra edges sampled either preferentially (by current
/// degree) or uniformly, skipping duplicates. If the requested edge count
/// exceeds the simple-graph maximum it is clamped.
pub fn random_connected_graph<R: Rng>(config: &RandomGraphConfig, rng: &mut R) -> Graph {
    let n = config.vertices.max(1);
    let max_edges = n * (n - 1) / 2;
    let m = config.edges.clamp(n.saturating_sub(1), max_edges);
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_range(0..config.vertex_labels.max(1))));
    }
    // Random spanning tree: connect vertex i to a random earlier vertex.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let label = Label(rng.gen_range(0..config.edge_labels.max(1)));
        g.add_edge(VertexId(i as u32), VertexId(j as u32), label)
            // pgs-lint: allow(panic-in-library, spanning-tree edges connect a fresh vertex each, never a duplicate)
            .expect("spanning tree edges are unique");
    }
    let mut attempts = 0usize;
    let attempt_cap = 50 * m.max(1);
    while g.edge_count() < m && attempts < attempt_cap {
        attempts += 1;
        let (u, v) = if config.preferential {
            // Pick an endpoint of a random existing edge (degree-proportional),
            // and a second vertex uniformly.
            let e = EdgeId(rng.gen_range(0..g.edge_count() as u32));
            let edge = *g.edge(e);
            let u = if rng.gen_bool(0.5) { edge.u } else { edge.v };
            let v = VertexId(rng.gen_range(0..n as u32));
            (u, v)
        } else {
            (
                VertexId(rng.gen_range(0..n as u32)),
                VertexId(rng.gen_range(0..n as u32)),
            )
        };
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let label = Label(rng.gen_range(0..config.edge_labels.max(1)));
        // pgs-lint: allow(panic-in-library, the has_edge check directly above rules out duplicates)
        g.add_edge(u, v, label).expect("checked for duplicates");
    }
    g
}

/// Extracts a random connected subgraph with `edge_count` edges from `g`
/// (vertices renumbered densely). Returns `None` if `g` has fewer edges or the
/// random walk cannot reach the requested size (e.g. `g` is disconnected and
/// the start component is too small).
pub fn random_connected_subgraph<R: Rng>(
    g: &Graph,
    edge_count: usize,
    rng: &mut R,
) -> Option<Graph> {
    if edge_count == 0 || g.edge_count() < edge_count {
        return None;
    }
    for _attempt in 0..16 {
        // Seed with a random edge, then grow by repeatedly adding a random edge
        // adjacent to the current vertex set.
        let seed = EdgeId(rng.gen_range(0..g.edge_count() as u32));
        let mut chosen_edges: Vec<EdgeId> = vec![seed];
        let mut vertices: Vec<VertexId> = vec![g.edge(seed).u, g.edge(seed).v];
        while chosen_edges.len() < edge_count {
            // Frontier: edges incident to a chosen vertex but not yet chosen.
            let mut frontier: Vec<EdgeId> = Vec::new();
            for &v in &vertices {
                for &(_, e) in g.neighbors(v) {
                    if !chosen_edges.contains(&e) && !frontier.contains(&e) {
                        frontier.push(e);
                    }
                }
            }
            if frontier.is_empty() {
                break;
            }
            // pgs-lint: allow(panic-in-library, the surrounding loop only runs while the frontier is non-empty)
            let &e = frontier.choose(rng).expect("frontier is non-empty");
            chosen_edges.push(e);
            let edge = g.edge(e);
            if !vertices.contains(&edge.u) {
                vertices.push(edge.u);
            }
            if !vertices.contains(&edge.v) {
                vertices.push(edge.v);
            }
        }
        if chosen_edges.len() == edge_count {
            let sub = g.edge_subgraph(&chosen_edges);
            return Some(crate::relax::drop_isolated(&sub));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_graph_is_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, m) in &[(1usize, 0usize), (5, 4), (20, 40), (40, 60)] {
            let cfg = RandomGraphConfig {
                vertices: n,
                edges: m,
                vertex_labels: 5,
                edge_labels: 2,
                preferential: true,
            };
            let g = random_connected_graph(&cfg, &mut rng);
            assert_eq!(g.vertex_count(), n);
            assert!(
                g.is_connected(),
                "graph with {n} vertices must be connected"
            );
            assert!(g.edge_count() >= n.saturating_sub(1));
            assert!(g.edge_count() <= m.max(n.saturating_sub(1)));
        }
    }

    #[test]
    fn uniform_attachment_also_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = RandomGraphConfig {
            vertices: 25,
            edges: 50,
            vertex_labels: 3,
            edge_labels: 1,
            preferential: false,
        };
        let g = random_connected_graph(&cfg, &mut rng);
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 50);
    }

    #[test]
    fn edge_count_is_clamped_to_simple_graph_maximum() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandomGraphConfig {
            vertices: 4,
            edges: 100,
            vertex_labels: 1,
            edge_labels: 1,
            preferential: false,
        };
        let g = random_connected_graph(&cfg, &mut rng);
        assert_eq!(g.edge_count(), 6); // K4
    }

    #[test]
    fn labels_are_within_alphabet() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = RandomGraphConfig {
            vertices: 30,
            edges: 60,
            vertex_labels: 4,
            edge_labels: 3,
            preferential: true,
        };
        let g = random_connected_graph(&cfg, &mut rng);
        assert!(g.vertex_labels().iter().all(|l| l.value() < 4));
        for (_, e) in g.edge_entries() {
            assert!(e.label.value() < 3);
        }
    }

    #[test]
    fn subgraph_extraction_produces_connected_queries() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = RandomGraphConfig {
            vertices: 40,
            edges: 80,
            vertex_labels: 6,
            edge_labels: 2,
            preferential: true,
        };
        let g = random_connected_graph(&cfg, &mut rng);
        for size in [1usize, 3, 6, 10] {
            let q = random_connected_subgraph(&g, size, &mut rng).expect("extraction succeeds");
            assert_eq!(q.edge_count(), size);
            assert!(q.is_connected());
            // Every extracted query must embed back into its source graph.
            assert!(crate::vf2::contains_subgraph(&q, &g));
        }
    }

    #[test]
    fn subgraph_extraction_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = crate::model::GraphBuilder::new()
            .vertices(&[0, 1])
            .edge(0, 1, 0)
            .build();
        assert!(random_connected_subgraph(&g, 0, &mut rng).is_none());
        assert!(random_connected_subgraph(&g, 2, &mut rng).is_none());
        let q = random_connected_subgraph(&g, 1, &mut rng).unwrap();
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = RandomGraphConfig::default();
        let g1 = random_connected_graph(&cfg, &mut StdRng::seed_from_u64(42));
        let g2 = random_connected_graph(&cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
        let g3 = random_connected_graph(&cfg, &mut StdRng::seed_from_u64(43));
        assert_ne!(g1, g3);
    }
}
