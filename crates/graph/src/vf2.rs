//! Subgraph isomorphism (monomorphism) testing and embedding enumeration.
//!
//! The paper uses the VF2 algorithm \[10\] for all `rq ⊆iso f` / `f ⊆iso gc`
//! tests and the CloseGraph embedding enumerator \[36\] to list the embeddings
//! of a feature in a data graph.  This module provides both behind one
//! backtracking matcher:
//!
//! * [`contains_subgraph`] — does at least one embedding exist?
//! * [`enumerate_embeddings`] — list all *distinct* embeddings (distinct data
//!   edge sets; automorphic re-matchings of the same subgraph are collapsed,
//!   which is exactly the notion of "embedding" used in Section 4.1 / Figure 7).
//!
//! Semantics follow Definition 5: a **non-induced** subgraph morphism (extra
//! data edges between mapped vertices are allowed), injective on vertices, and
//! label-preserving for both vertices and edges.  Patterns may be disconnected
//! (relaxed queries can fall apart after edge deletions) and may contain
//! isolated vertices.

use crate::embeddings::Embedding;
use crate::model::{EdgeId, Graph, VertexId};
use crate::summary::SummaryView;
use std::collections::BTreeSet;

/// Options controlling a matching run.
#[derive(Debug, Clone, Copy)]
pub struct MatchOptions {
    /// Stop after this many distinct embeddings (0 means "just test existence").
    pub max_embeddings: usize,
    /// Abort after this many search-tree node expansions (safety valve for
    /// pathological inputs). The paper's graphs are sparse and labelled, so the
    /// default is generous.
    pub max_steps: u64,
    /// Require induced subgraph isomorphism instead of a monomorphism.
    /// The paper always uses the non-induced variant; induced matching is
    /// provided for completeness and tests.
    pub induced: bool,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            max_embeddings: usize::MAX,
            max_steps: 50_000_000,
            induced: false,
        }
    }
}

impl MatchOptions {
    /// Options for a plain existence test.
    pub fn existence() -> Self {
        MatchOptions {
            max_embeddings: 1,
            ..Self::default()
        }
    }

    /// Options that cap the number of enumerated embeddings.
    pub fn capped(max_embeddings: usize) -> Self {
        MatchOptions {
            max_embeddings,
            ..Self::default()
        }
    }
}

/// Outcome of an enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchOutcome {
    /// The distinct embeddings found (up to the configured cap).
    pub embeddings: Vec<Embedding>,
    /// True if the search space was fully explored (no cap/step budget hit).
    pub complete: bool,
    /// Number of search-tree nodes expanded.
    pub steps: u64,
}

/// A reusable subgraph matcher binding a pattern to a target graph.
pub struct Matcher<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    options: MatchOptions,
    /// Pattern vertices in matching order (connected-first, high degree first).
    order: Vec<VertexId>,
    /// For each position in `order`, the pattern neighbours already matched
    /// (pairs of (earlier pattern vertex, pattern edge label)).
    matched_neighbors: Vec<Vec<(VertexId, crate::model::Label)>>,
    /// Precomputed result of the label-availability prefilter, when the caller
    /// already holds [`StructuralSummary`] values for both graphs
    /// ([`Matcher::new_with_summaries`]); `None` falls back to computing the
    /// histograms per run.
    label_prefilter: Option<bool>,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher for `pattern` against `target`.
    pub fn new(pattern: &'a Graph, target: &'a Graph, options: MatchOptions) -> Self {
        let order = matching_order(pattern);
        let pos_of: Vec<usize> = {
            let mut pos = vec![usize::MAX; pattern.vertex_count()];
            for (i, &v) in order.iter().enumerate() {
                pos[v.index()] = i;
            }
            pos
        };
        let matched_neighbors = order
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                pattern
                    .neighbors(p)
                    .iter()
                    .filter(|(n, _)| pos_of[n.index()] < i)
                    .map(|&(n, e)| (n, pattern.edge_label(e)))
                    .collect()
            })
            .collect();
        Matcher {
            pattern,
            target,
            options,
            order,
            matched_neighbors,
            label_prefilter: None,
        }
    }

    /// Like [`Matcher::new`], but takes precomputed summary views for both
    /// graphs so the label-availability prefilter is an allocation-free
    /// [`SummaryView::subsumes`] check instead of two fresh histogram builds
    /// per matching run.  The summaries must describe `pattern` and `target`
    /// exactly; a stale summary makes the prefilter — and therefore the match
    /// outcome — wrong.
    pub fn new_with_summaries(
        pattern: &'a Graph,
        target: &'a Graph,
        options: MatchOptions,
        pattern_summary: SummaryView<'_>,
        target_summary: SummaryView<'_>,
    ) -> Self {
        let mut matcher = Matcher::new(pattern, target, options);
        matcher.label_prefilter = Some(target_summary.subsumes(pattern_summary));
        matcher
    }

    /// True if at least one embedding of the pattern exists in the target.
    pub fn exists(&self) -> bool {
        let mut opts = self.options;
        opts.max_embeddings = 1;
        !self.run(opts).embeddings.is_empty()
    }

    /// Enumerates all distinct embeddings subject to the configured caps.
    pub fn embeddings(&self) -> MatchOutcome {
        self.run(self.options)
    }

    fn run(&self, options: MatchOptions) -> MatchOutcome {
        let np = self.pattern.vertex_count();
        let nt = self.target.vertex_count();
        let mut outcome = MatchOutcome {
            embeddings: Vec::new(),
            complete: true,
            steps: 0,
        };
        if np == 0 {
            // The empty pattern is a subgraph of everything, with a single empty embedding.
            outcome
                .embeddings
                .push(Embedding::new(Vec::new(), Vec::new()));
            return outcome;
        }
        if np > nt || self.pattern.edge_count() > self.target.edge_count() {
            return outcome;
        }
        // Quick label-availability filter: the cached-summary verdict when the
        // caller supplied one, the histogram comparison otherwise.
        let compatible = self
            .label_prefilter
            .unwrap_or_else(|| labels_compatible(self.pattern, self.target));
        if !compatible {
            return outcome;
        }
        let mut state = State {
            mapping: vec![None; np],
            used: vec![false; nt],
            seen_edge_sets: BTreeSet::new(),
        };
        let mut cap_hit = false;
        self.recurse(0, &mut state, &options, &mut outcome, &mut cap_hit);
        if cap_hit {
            outcome.complete = false;
        }
        outcome
    }

    fn recurse(
        &self,
        depth: usize,
        state: &mut State,
        options: &MatchOptions,
        outcome: &mut MatchOutcome,
        cap_hit: &mut bool,
    ) {
        if *cap_hit {
            return;
        }
        outcome.steps += 1;
        if outcome.steps > options.max_steps {
            *cap_hit = true;
            return;
        }
        if depth == self.order.len() {
            self.record_embedding(state, options, outcome, cap_hit);
            return;
        }
        let p = self.order[depth];
        let p_label = self.pattern.vertex_label(p);
        let anchored = &self.matched_neighbors[depth];

        // Candidate generation: if the pattern vertex has an already-matched
        // neighbour, only the target neighbours of that neighbour's image can
        // host it; otherwise every unused target vertex is a candidate.
        let candidates: Vec<VertexId> = if let Some(&(anchor, _)) = anchored.first() {
            // pgs-lint: allow(panic-in-library, matcher invariant: anchored pairs only list already-mapped pattern vertices)
            let image = state.mapping[anchor.index()].expect("anchor must be mapped");
            self.target
                .neighbors(image)
                .iter()
                .map(|&(w, _)| w)
                .collect()
        } else {
            self.target.vertices().collect()
        };

        for cand in candidates {
            if state.used[cand.index()] {
                continue;
            }
            if self.target.vertex_label(cand) != p_label {
                continue;
            }
            if !self.feasible(p, cand, anchored, state, options.induced) {
                continue;
            }
            state.mapping[p.index()] = Some(cand);
            state.used[cand.index()] = true;
            self.recurse(depth + 1, state, options, outcome, cap_hit);
            state.mapping[p.index()] = None;
            state.used[cand.index()] = false;
            if *cap_hit {
                return;
            }
        }
    }

    fn feasible(
        &self,
        p: VertexId,
        cand: VertexId,
        anchored: &[(VertexId, crate::model::Label)],
        state: &State,
        induced: bool,
    ) -> bool {
        // Degree pruning: the candidate must have at least the pattern degree.
        if self.target.degree(cand) < self.pattern.degree(p) {
            return false;
        }
        // Every already-mapped pattern neighbour must be connected with a
        // matching edge label.
        for &(pn, elabel) in anchored {
            // pgs-lint: allow(panic-in-library, matcher invariant: anchored pairs only list already-mapped pattern vertices)
            let image = state.mapping[pn.index()].expect("anchored neighbour is mapped");
            match self.target.find_edge(cand, image) {
                Some(te) if self.target.edge_label(te) == elabel => {}
                _ => return false,
            }
        }
        if induced {
            // Mapped pattern non-neighbours must not be adjacent in the target.
            for v in self.pattern.vertices() {
                if v == p {
                    continue;
                }
                if let Some(image) = state.mapping[v.index()] {
                    let p_adj = self.pattern.has_edge(p, v);
                    let t_adj = self.target.has_edge(cand, image);
                    if !p_adj && t_adj {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn record_embedding(
        &self,
        state: &State,
        options: &MatchOptions,
        outcome: &mut MatchOutcome,
        cap_hit: &mut bool,
    ) {
        let vertex_map: Vec<VertexId> = state
            .mapping
            .iter()
            // pgs-lint: allow(panic-in-library, a complete state maps every pattern vertex by definition)
            .map(|m| m.expect("complete mapping"))
            .collect();
        let mut edges: Vec<EdgeId> = Vec::with_capacity(self.pattern.edge_count());
        for (_, e) in self.pattern.edge_entries() {
            let tu = vertex_map[e.u.index()];
            let tv = vertex_map[e.v.index()];
            let te = self
                .target
                .find_edge(tu, tv)
                // pgs-lint: allow(panic-in-library, feasibility checked this edge before the mapping was completed)
                .expect("mapped pattern edge must exist in target");
            edges.push(te);
        }
        edges.sort_unstable();
        edges.dedup();
        // Deduplicate by covered edge set: automorphic re-matchings of the same
        // data subgraph count as one embedding (Figure 7 semantics).
        if state_contains(&mut outcome.embeddings, &edges) {
            return;
        }
        outcome.embeddings.push(Embedding { vertex_map, edges });
        if outcome.embeddings.len() >= options.max_embeddings {
            *cap_hit = true;
        }
    }
}

/// Internal mutable matcher state.
struct State {
    mapping: Vec<Option<VertexId>>,
    used: Vec<bool>,
    #[allow(dead_code)]
    seen_edge_sets: BTreeSet<Vec<EdgeId>>,
}

fn state_contains(found: &mut [Embedding], edges: &[EdgeId]) -> bool {
    found.iter().any(|e| e.edges == edges)
}

/// Computes a matching order for the pattern: starts from the highest-degree
/// vertex, grows along connectivity (so every later vertex has an anchored
/// neighbour when possible), then appends remaining components.
fn matching_order(pattern: &Graph) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        // Pick the unplaced vertex with the highest degree as the next seed.
        let seed = pattern
            .vertices()
            .filter(|v| !placed[v.index()])
            .max_by_key(|v| (pattern.degree(*v), std::cmp::Reverse(v.index())))
            // pgs-lint: allow(panic-in-library, caller checks the state is incomplete, so an unplaced vertex exists)
            .expect("there are unplaced vertices");
        placed[seed.index()] = true;
        order.push(seed);
        // Grow: repeatedly pick the unplaced vertex with most placed neighbours.
        loop {
            let next = pattern
                .vertices()
                .filter(|v| !placed[v.index()])
                .map(|v| {
                    let anchored = pattern
                        .neighbors(v)
                        .iter()
                        .filter(|(w, _)| placed[w.index()])
                        .count();
                    (anchored, pattern.degree(v), v)
                })
                .filter(|&(anchored, _, _)| anchored > 0)
                .max_by_key(|&(anchored, deg, v)| (anchored, deg, std::cmp::Reverse(v.index())));
            match next {
                Some((_, _, v)) => {
                    placed[v.index()] = true;
                    order.push(v);
                }
                None => break,
            }
        }
    }
    order
}

/// Cheap necessary condition: every pattern vertex/edge label combination must
/// exist in the target with at least the pattern's multiplicity.
fn labels_compatible(pattern: &Graph, target: &Graph) -> bool {
    let pv = pattern.vertex_label_histogram();
    let tv = target.vertex_label_histogram();
    for (l, c) in pv {
        if tv.get(&l).copied().unwrap_or(0) < c {
            return false;
        }
    }
    let pe = pattern.edge_signature_histogram();
    let te = target.edge_signature_histogram();
    for (sig, c) in pe {
        if te.get(&sig).copied().unwrap_or(0) < c {
            return false;
        }
    }
    true
}

/// True if `pattern ⊆iso target` (non-induced, label-preserving).
pub fn contains_subgraph(pattern: &Graph, target: &Graph) -> bool {
    Matcher::new(pattern, target, MatchOptions::existence()).exists()
}

/// [`contains_subgraph`] with cached summary views, so the label prefilter
/// does not reallocate histograms per call (index builds and the structural
/// query phase call this in tight loops).
pub fn contains_subgraph_summarized(
    pattern: &Graph,
    pattern_summary: SummaryView<'_>,
    target: &Graph,
    target_summary: SummaryView<'_>,
) -> bool {
    Matcher::new_with_summaries(
        pattern,
        target,
        MatchOptions::existence(),
        pattern_summary,
        target_summary,
    )
    .exists()
}

/// Enumerates all distinct embeddings of `pattern` in `target`.
pub fn enumerate_embeddings(
    pattern: &Graph,
    target: &Graph,
    options: MatchOptions,
) -> MatchOutcome {
    Matcher::new(pattern, target, options).embeddings()
}

/// [`enumerate_embeddings`] with cached summary views (see
/// [`Matcher::new_with_summaries`]).
pub fn enumerate_embeddings_summarized(
    pattern: &Graph,
    pattern_summary: SummaryView<'_>,
    target: &Graph,
    target_summary: SummaryView<'_>,
    options: MatchOptions,
) -> MatchOutcome {
    Matcher::new_with_summaries(pattern, target, options, pattern_summary, target_summary)
        .embeddings()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphBuilder, Label};

    /// Graph 002 of Figure 1: vertices a,a,b,b,c and edges e1..e5.
    /// Labels: a=0, b=1, c=2. Layout (matching the figure):
    ///   v0(a) -e1- v1(a), v0(a) -e2- v2(b), v1(a) -e3- v2(b),
    ///   v2(b) -e4- v3(b), v2(b) -e5- v4(c)
    pub(crate) fn graph_002() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build()
    }

    fn single_edge(l1: u32, l2: u32) -> Graph {
        GraphBuilder::new()
            .vertices(&[l1, l2])
            .edge(0, 1, 9)
            .build()
    }

    #[test]
    fn single_edge_embeddings_match_figure_7() {
        // Feature f2 = a-b edge has exactly three embeddings in graph 002:
        // {e2}, {e3}? wait: a-b edges are e2 (v0-v2), e3 (v1-v2). Plus b-b is e4
        // and b-c is e5. The paper's f2 (a--b in Figure 4) maps to EM1, EM2, EM3
        // in Figure 7 labelled {e1,e2},{e2,e3},{e3,e4} for a 2-edge feature; here
        // we check the simpler 1-edge pattern count.
        let g = graph_002();
        let pat = single_edge(0, 1);
        let out = enumerate_embeddings(&pat, &g, MatchOptions::default());
        assert!(out.complete);
        assert_eq!(out.embeddings.len(), 2);
        for emb in &out.embeddings {
            assert_eq!(emb.edges.len(), 1);
        }
    }

    #[test]
    fn two_edge_path_feature_has_three_embeddings_in_graph_002() {
        // Feature: a - a - b path? The paper's f2 in Figure 7 is the pattern with
        // embeddings {e1,e2}, {e2,e3}, {e3,e4}... Using the path b - a - a:
        // embeddings in 002 of path (b)-(a)-(a): v2-v0-v1 via {e2,e1}; v2-v1-v0 via
        // {e3,e1}. And path (a)-(b)-(b): v0-v2-v3 {e2,e4}, v1-v2-v3 {e3,e4}.
        let g = graph_002();
        let pat = GraphBuilder::new()
            .vertices(&[1, 0, 0])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let out = enumerate_embeddings(&pat, &g, MatchOptions::default());
        assert_eq!(out.embeddings.len(), 2);

        let pat2 = GraphBuilder::new()
            .vertices(&[0, 1, 1])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let out2 = enumerate_embeddings(&pat2, &g, MatchOptions::default());
        assert_eq!(out2.embeddings.len(), 2);
    }

    #[test]
    fn triangle_query_is_subgraph_of_graph_002() {
        // q of Figure 1: triangle with vertices a, a, b (e1,e2,e3 in 002).
        let q = GraphBuilder::new()
            .vertices(&[0, 0, 1])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build();
        assert!(contains_subgraph(&q, &graph_002()));
        let out = enumerate_embeddings(&q, &graph_002(), MatchOptions::default());
        assert_eq!(out.embeddings.len(), 1);
        assert_eq!(out.embeddings[0].edges.len(), 3);
    }

    #[test]
    fn label_mismatch_is_rejected() {
        let g = graph_002();
        let pat = single_edge(2, 2); // c-c edge does not exist
        assert!(!contains_subgraph(&pat, &g));
        let pat = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 7).build(); // wrong edge label
        assert!(!contains_subgraph(&pat, &g));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let g = graph_002();
        let empty = Graph::new();
        assert!(contains_subgraph(&empty, &g));
        let out = enumerate_embeddings(&empty, &g, MatchOptions::default());
        assert_eq!(out.embeddings.len(), 1);
        assert!(out.embeddings[0].edges.is_empty());
    }

    #[test]
    fn pattern_larger_than_target_fails_fast() {
        let small = single_edge(0, 1);
        let big = graph_002();
        assert!(!contains_subgraph(&big, &small));
    }

    #[test]
    fn disconnected_pattern_matches() {
        // Two disjoint a-b edges must find the two distinct a-b edges of 002
        // mapped injectively... 002 has a-b edges e2 (v0-v2), e3 (v1-v2) but they
        // share v2, so an injective mapping of two disjoint a-b edges fails.
        let g = graph_002();
        let pat = GraphBuilder::new()
            .vertices(&[0, 1, 0, 1])
            .edge(0, 1, 9)
            .edge(2, 3, 9)
            .build();
        assert!(!contains_subgraph(&pat, &g));

        // One a-b edge plus one isolated c vertex is fine.
        let pat2 = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .build();
        assert!(contains_subgraph(&pat2, &g));
    }

    #[test]
    fn induced_vs_non_induced() {
        // Pattern: path a-a-b. In graph 002 the non-induced match maps onto the
        // triangle {v0,v1,v2}; the induced variant must reject mappings where the
        // missing pattern edge is present in the target.
        let g = graph_002();
        let path = GraphBuilder::new()
            .vertices(&[0, 0, 1])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        assert!(contains_subgraph(&path, &g));
        let induced = MatchOptions {
            induced: true,
            ..MatchOptions::default()
        };
        let out = enumerate_embeddings(&path, &g, induced);
        assert!(out.embeddings.is_empty());
    }

    #[test]
    fn embedding_cap_is_respected() {
        let g = graph_002();
        let pat = single_edge(0, 1);
        let out = enumerate_embeddings(&pat, &g, MatchOptions::capped(1));
        assert_eq!(out.embeddings.len(), 1);
        assert!(!out.complete);
    }

    #[test]
    fn vertex_map_is_consistent() {
        let g = graph_002();
        let pat = single_edge(1, 2); // b - c
        let out = enumerate_embeddings(&pat, &g, MatchOptions::default());
        assert_eq!(out.embeddings.len(), 1);
        let emb = &out.embeddings[0];
        assert_eq!(emb.vertex_map.len(), 2);
        assert_eq!(g.vertex_label(emb.vertex_map[0]), Label(1));
        assert_eq!(g.vertex_label(emb.vertex_map[1]), Label(2));
    }

    #[test]
    fn summarized_matching_agrees_with_the_plain_matcher() {
        use crate::summary::StructuralSummary;
        let g = graph_002();
        let gs = StructuralSummary::of(&g);
        let patterns = [
            single_edge(0, 1),
            single_edge(2, 2),
            GraphBuilder::new()
                .vertices(&[0, 0, 1])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .build(),
            GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 7).build(),
            Graph::new(),
        ];
        for p in &patterns {
            let ps = StructuralSummary::of(p);
            assert_eq!(
                contains_subgraph_summarized(p, ps.view(), &g, gs.view()),
                contains_subgraph(p, &g),
            );
            let plain = enumerate_embeddings(p, &g, MatchOptions::default());
            let summarized =
                Matcher::new_with_summaries(p, &g, MatchOptions::default(), ps.view(), gs.view())
                    .embeddings();
            assert_eq!(plain.embeddings, summarized.embeddings);
        }
    }

    #[test]
    fn matching_order_prefers_connected_growth() {
        let pat = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build();
        let order = matching_order(&pat);
        assert_eq!(order.len(), 4);
        // After the first vertex, each vertex must be adjacent to an earlier one.
        for i in 1..order.len() {
            let anchored = pat
                .neighbors(order[i])
                .iter()
                .any(|(w, _)| order[..i].contains(w));
            assert!(anchored, "vertex {:?} not anchored", order[i]);
        }
    }
}
