//! Bounded frequent-pattern mining for PMI feature generation.
//!
//! Algorithm 4 of the paper grows candidate features level-wise (by vertex
//! count up to `maxL`) and keeps the frequent and discriminative ones.  The
//! candidate generation itself is delegated to "frequent subgraphs mined from
//! Dc" (gSpan-family mining).  This module implements a pattern-growth miner
//! specialised to that use:
//!
//! * patterns start as single frequent edges (grouped by the (edge label,
//!   endpoint labels) signature),
//! * a pattern is extended by attaching one data-graph edge adjacent to one of
//!   its embeddings (either closing a cycle between mapped vertices or adding a
//!   new vertex),
//! * duplicates are removed with the exact canonical code of
//!   [`crate::dfs_code`],
//! * support is the number of *database graphs* containing the pattern
//!   (standard transaction-style support), recomputed with VF2 per candidate.
//!
//! The miner is deliberately bounded (`max_patterns_per_level`,
//! `max_embeddings_per_graph`) because PMI wants a *small* set of discriminative
//! features, not the complete frequent-pattern lattice.

use crate::dfs_code::{are_isomorphic, canonical_code, CanonicalCode};
use crate::model::{Graph, VertexId};
use crate::summary::{StructuralSummary, SummaryView};
use crate::vf2::{contains_subgraph_summarized, enumerate_embeddings, MatchOptions};
use std::collections::BTreeMap;

/// A mined pattern together with its support information.
#[derive(Debug, Clone)]
pub struct MinedPattern {
    /// The pattern graph.
    pub graph: Graph,
    /// Indices (into the database) of the graphs that contain the pattern.
    pub support: Vec<usize>,
}

impl MinedPattern {
    /// Support count (number of database graphs containing the pattern).
    pub fn support_count(&self) -> usize {
        self.support.len()
    }
}

/// Options controlling the miner.
#[derive(Debug, Clone, Copy)]
pub struct MiningOptions {
    /// Minimum support as an absolute number of database graphs.
    pub min_support: usize,
    /// Maximum number of vertices in a pattern (the paper's `maxL`).
    pub max_vertices: usize,
    /// Maximum number of edges in a pattern.
    pub max_edges: usize,
    /// Keep at most this many patterns per level (highest support first).
    pub max_patterns_per_level: usize,
    /// Cap on embeddings enumerated per (pattern, graph) during extension.
    pub max_embeddings_per_graph: usize,
}

impl Default for MiningOptions {
    fn default() -> Self {
        MiningOptions {
            min_support: 2,
            max_vertices: 5,
            max_edges: 6,
            max_patterns_per_level: 64,
            max_embeddings_per_graph: 32,
        }
    }
}

/// Mines frequent connected patterns from the database `db`.
///
/// Returns patterns of every size from a single edge up to the configured
/// limits, each with its support list, sorted by descending support then
/// ascending size.
pub fn mine_frequent_patterns(db: &[Graph], options: &MiningOptions) -> Vec<MinedPattern> {
    let summaries: Vec<StructuralSummary> = db.iter().map(StructuralSummary::of).collect();
    let views: Vec<SummaryView<'_>> = summaries.iter().map(StructuralSummary::view).collect();
    mine_frequent_patterns_summarized(db, &views, options)
}

/// [`mine_frequent_patterns`] with cached per-graph summary views, so the
/// per-candidate support recount's VF2 prefilter never reallocates the
/// data-graph histograms (callers that already hold an S-Index pass its
/// summary views straight through).
pub fn mine_frequent_patterns_summarized(
    db: &[Graph],
    summaries: &[SummaryView<'_>],
    options: &MiningOptions,
) -> Vec<MinedPattern> {
    debug_assert_eq!(db.len(), summaries.len());
    if db.is_empty() || options.min_support == 0 {
        return Vec::new();
    }
    let mut all: Vec<MinedPattern> = Vec::new();
    let mut seen: Vec<(CanonicalCode, Graph)> = Vec::new();

    // Level 1: single-edge patterns grouped by signature.
    let mut level: Vec<MinedPattern> = single_edge_patterns(db, options);
    for p in &level {
        seen.push((canonical_code(&p.graph), p.graph.clone()));
    }
    all.extend(level.iter().cloned());

    while !level.is_empty() {
        let mut next: Vec<MinedPattern> = Vec::new();
        for pattern in &level {
            if pattern.graph.edge_count() >= options.max_edges {
                continue;
            }
            for candidate in extensions(pattern, db, options) {
                if candidate.vertex_count() > options.max_vertices
                    || candidate.edge_count() > options.max_edges
                {
                    continue;
                }
                let code = canonical_code(&candidate);
                let duplicate = seen
                    .iter()
                    .any(|(c, g)| c == &code && (code.exact || are_isomorphic(g, &candidate)))
                    || next.iter().any(|p| {
                        canonical_code(&p.graph) == code
                            && (code.exact || are_isomorphic(&p.graph, &candidate))
                    });
                if duplicate {
                    continue;
                }
                let candidate_summary = StructuralSummary::of(&candidate);
                let support: Vec<usize> = pattern
                    .support
                    .iter()
                    .copied()
                    .filter(|&gi| {
                        contains_subgraph_summarized(
                            &candidate,
                            candidate_summary.view(),
                            &db[gi],
                            summaries[gi],
                        )
                    })
                    .collect();
                if support.len() >= options.min_support {
                    seen.push((code, candidate.clone()));
                    next.push(MinedPattern {
                        graph: candidate,
                        support,
                    });
                }
            }
        }
        // Keep the strongest candidates per level.
        next.sort_by_key(|p| std::cmp::Reverse(p.support_count()));
        next.truncate(options.max_patterns_per_level);
        all.extend(next.iter().cloned());
        level = next;
    }

    all.sort_by_key(|p| (std::cmp::Reverse(p.support_count()), p.graph.edge_count()));
    all
}

/// All frequent single-edge patterns.
fn single_edge_patterns(db: &[Graph], options: &MiningOptions) -> Vec<MinedPattern> {
    // signature -> set of graph indices containing it
    let mut by_sig: BTreeMap<(u32, u32, u32), Vec<usize>> = BTreeMap::new();
    for (gi, g) in db.iter().enumerate() {
        for (sig, _) in g.edge_signature_histogram() {
            let key = (sig.0 .0, sig.1 .0, sig.2 .0);
            let entry = by_sig.entry(key).or_default();
            if entry.last() != Some(&gi) {
                entry.push(gi);
            }
        }
    }
    let mut out = Vec::new();
    for ((elabel, l1, l2), support) in by_sig {
        if support.len() < options.min_support {
            continue;
        }
        let mut g = Graph::with_name(format!("edge-{l1}-{elabel}-{l2}"));
        let a = g.add_vertex(crate::model::Label(l1));
        let b = g.add_vertex(crate::model::Label(l2));
        g.add_edge(a, b, crate::model::Label(elabel))
            // pgs-lint: allow(panic-in-library, a single edge between two fresh vertices cannot be a duplicate)
            .expect("single edge pattern");
        out.push(MinedPattern { graph: g, support });
    }
    out
}

/// Generates candidate one-edge extensions of `pattern` observed in the data.
fn extensions(pattern: &MinedPattern, db: &[Graph], options: &MiningOptions) -> Vec<Graph> {
    let mut out: Vec<Graph> = Vec::new();
    let match_opts = MatchOptions::capped(options.max_embeddings_per_graph);
    // Look at a bounded number of supporting graphs; structural variety
    // saturates quickly.
    for &gi in pattern.support.iter().take(8) {
        let data = &db[gi];
        let outcome = enumerate_embeddings(&pattern.graph, data, match_opts);
        for emb in &outcome.embeddings {
            // Reverse map: data vertex -> pattern vertex.
            let mut rev: BTreeMap<VertexId, usize> = BTreeMap::new();
            for (pi, &dv) in emb.vertex_map.iter().enumerate() {
                rev.insert(dv, pi);
            }
            for (pi, &dv) in emb.vertex_map.iter().enumerate() {
                for &(dn, de) in data.neighbors(dv) {
                    if emb.edges.binary_search(&de).is_ok() {
                        continue; // edge already in the embedding
                    }
                    let elabel = data.edge_label(de);
                    let mut candidate = pattern.graph.clone();
                    let target_pv = match rev.get(&dn) {
                        Some(&pj) => {
                            // Closing a cycle between two mapped pattern vertices.
                            VertexId(pj as u32)
                        }
                        None => candidate.add_vertex(data.vertex_label(dn)),
                    };
                    let src = VertexId(pi as u32);
                    if src == target_pv || candidate.has_edge(src, target_pv) {
                        continue;
                    }
                    if candidate.add_edge(src, target_pv, elabel).is_ok() {
                        out.push(candidate);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphBuilder;
    use crate::vf2::contains_subgraph;

    /// A small database of three graphs that all share an a-b edge and two of
    /// which share the a-b-c path.
    fn toy_db() -> Vec<Graph> {
        let g1 = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build(); // a-b-c path
        let g2 = GraphBuilder::new()
            .vertices(&[0, 1, 2, 3])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build(); // a-b-c-d path
        let g3 = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build(); // a-b edge only
        vec![g1, g2, g3]
    }

    #[test]
    fn single_edges_respect_min_support() {
        let db = toy_db();
        let opts = MiningOptions {
            min_support: 3,
            ..MiningOptions::default()
        };
        let patterns = mine_frequent_patterns(&db, &opts);
        // Only the a-b edge appears in all three graphs.
        assert_eq!(patterns.len(), 1);
        assert_eq!(patterns[0].graph.edge_count(), 1);
        assert_eq!(patterns[0].support, vec![0, 1, 2]);
    }

    #[test]
    fn pattern_growth_finds_the_shared_path() {
        let db = toy_db();
        let opts = MiningOptions {
            min_support: 2,
            ..MiningOptions::default()
        };
        let patterns = mine_frequent_patterns(&db, &opts);
        // Must contain the a-b edge (support 3), b-c edge (support 2) and the
        // a-b-c path (support 2).
        assert!(patterns
            .iter()
            .any(|p| p.graph.edge_count() == 1 && p.support_count() == 3));
        assert!(patterns
            .iter()
            .any(|p| p.graph.edge_count() == 2 && p.support_count() == 2));
        // Every reported pattern really is contained in every supporting graph.
        for p in &patterns {
            for &gi in &p.support {
                assert!(contains_subgraph(&p.graph, &db[gi]));
            }
            assert!(p.support_count() >= 2);
        }
    }

    #[test]
    fn no_duplicate_patterns_up_to_isomorphism() {
        let db = toy_db();
        let opts = MiningOptions {
            min_support: 2,
            ..MiningOptions::default()
        };
        let patterns = mine_frequent_patterns(&db, &opts);
        for i in 0..patterns.len() {
            for j in (i + 1)..patterns.len() {
                assert!(
                    !are_isomorphic(&patterns[i].graph, &patterns[j].graph),
                    "patterns {i} and {j} are isomorphic duplicates"
                );
            }
        }
    }

    #[test]
    fn size_limits_are_enforced() {
        let db = toy_db();
        let opts = MiningOptions {
            min_support: 2,
            max_vertices: 2,
            max_edges: 1,
            ..MiningOptions::default()
        };
        let patterns = mine_frequent_patterns(&db, &opts);
        assert!(!patterns.is_empty());
        assert!(patterns
            .iter()
            .all(|p| p.graph.vertex_count() <= 2 && p.graph.edge_count() <= 1));
    }

    #[test]
    fn empty_database_yields_nothing() {
        assert!(mine_frequent_patterns(&[], &MiningOptions::default()).is_empty());
    }

    #[test]
    fn cycles_can_be_mined() {
        // Two graphs both containing a labelled triangle.
        let tri = |extra: bool| {
            let mut b = GraphBuilder::new()
                .vertices(&[0, 1, 2])
                .edge(0, 1, 0)
                .edge(1, 2, 0)
                .edge(0, 2, 0);
            if extra {
                b = b.vertex(3).edge(2, 3, 0);
            }
            b.build()
        };
        let db = vec![tri(false), tri(true)];
        let opts = MiningOptions {
            min_support: 2,
            max_vertices: 3,
            max_edges: 3,
            ..MiningOptions::default()
        };
        let patterns = mine_frequent_patterns(&db, &opts);
        assert!(
            patterns
                .iter()
                .any(|p| p.graph.edge_count() == 3 && p.graph.vertex_count() == 3),
            "the shared triangle must be mined"
        );
    }
}
