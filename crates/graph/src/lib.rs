//! # pgs-graph — deterministic labelled-graph substrate
//!
//! This crate implements every *deterministic* graph algorithm the paper
//! "Efficient Subgraph Similarity Search on Large Probabilistic Graph Databases"
//! (Yuan et al., VLDB 2012) relies on:
//!
//! * a compact labelled undirected [`Graph`] representation ([`model`]),
//! * VF2-style subgraph isomorphism / monomorphism with full embedding
//!   enumeration ([`vf2`], [`embeddings`]),
//! * maximum common subgraph and the paper's *subgraph distance*
//!   `dis(q, g) = |q| - |mcs(q, g)|` ([`mcs`]),
//! * query relaxation producing the set `U = {rq_1, .., rq_a}` of graphs obtained
//!   by deleting `δ` edges from the query ([`relax`]),
//! * immutable per-graph structural summaries (histograms, counts, degree
//!   sequence) shared by the S-Index, the VF2 prefilter and the structural
//!   query phase ([`summary`]),
//! * gSpan-style canonical DFS codes used to deduplicate patterns ([`dfs_code`]),
//! * a bounded frequent-pattern miner used for PMI feature generation
//!   ([`mining`]),
//! * maximum *weight* clique search used to obtain the tightest SIP bounds
//!   ([`clique`]),
//! * minimal embedding-cut enumeration (minimal hitting sets, equivalent to the
//!   minimal s–t cuts of the paper's parallel graph `cG`, Theorem 6) ([`cuts`]),
//! * random graph generators and connected-subgraph extraction used to build
//!   synthetic workloads ([`generate`]),
//! * a small text serialization format for graph databases ([`serialize`]),
//! * deterministic chunked parallelism ([`parallel`]) dispatched on a
//!   lazily-spawned persistent worker pool ([`pool`]), shared by the PMI
//!   build and every query phase.
//!
//! Everything here is purely deterministic; the probabilistic layer lives in the
//! `pgs-prob` crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod clique;
pub mod cuts;
pub mod dfs_code;
pub mod embeddings;
pub mod error;
pub mod generate;
pub mod mcs;
pub mod mining;
pub mod model;
pub mod parallel;
pub mod pool;
pub mod relax;
pub mod serialize;
pub mod summary;
pub mod traversal;
pub mod vf2;

pub use arena::{CsrAdjacency, FlatVecVec};
pub use clique::{max_weight_clique, BitMatrix, CliqueOptions};
pub use cuts::{minimal_cuts, CutEnumOptions};
pub use dfs_code::{canonical_code, CanonicalCode};
pub use embeddings::{EdgeSet, Embedding};
pub use error::GraphError;
pub use mcs::{
    mcs_size, subgraph_distance, subgraph_similar, subgraph_similar_summarized, SimilarityTester,
};
pub use model::{EdgeId, Graph, GraphBuilder, Label, VertexId};
pub use parallel::{
    derive_seed, mix64, par_map_chunked, par_map_chunked_costed, resolve_threads, CostHint,
    MAX_THREADS,
};
pub use relax::{relax_query, relax_query_clamped, RelaxOptions};
pub use summary::{EdgeSignature, StructuralSummary, SummaryView};
pub use vf2::{
    contains_subgraph, contains_subgraph_summarized, enumerate_embeddings, MatchOptions, Matcher,
};
