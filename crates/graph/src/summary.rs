//! Immutable per-graph structural summaries.
//!
//! The structural phase of the query pipeline used to recompute
//! `edge_signature_histogram()` — a fresh `BTreeMap` allocation — for the
//! query and for *every* candidate skeleton on *every* query, and the VF2
//! label prefilter recomputed both histograms again per `(pattern, target)`
//! pair.  A [`StructuralSummary`] is that work done **once per graph**: the
//! edge-signature histogram, the vertex-label multiset, the vertex/edge
//! counts and the (descending) degree sequence, all in sorted contiguous
//! vectors so comparisons are allocation-free merge walks.
//!
//! Summaries are consumed by
//!
//! * the S-Index (`pgs_index::sindex`), which inverts the edge-signature
//!   histograms into posting lists for sublinear candidate generation,
//! * the VF2 matcher ([`crate::vf2::Matcher::new_with_summaries`]), whose
//!   label-availability prefilter becomes [`StructuralSummary::subsumes`]
//!   over cached summaries instead of two fresh histograms, and
//! * the Grafil-style feature-count filter (`pgs_query::structural`).

use crate::model::{Graph, Label};

/// An edge signature: `(edge label, smaller endpoint label, larger endpoint
/// label)` — the key of [`Graph::edge_signature_histogram`].
pub type EdgeSignature = (Label, Label, Label);

/// An immutable structural digest of one graph (see the module docs).
///
/// All histogram vectors are sorted by key, counts are strictly positive, and
/// the degree sequence is descending — invariants enforced by both
/// constructors, so consumers can merge-walk without re-checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralSummary {
    vertex_count: u32,
    edge_count: u32,
    /// `(vertex label, multiplicity)`, sorted by label.
    vertex_labels: Vec<(Label, u32)>,
    /// `(edge signature, multiplicity)`, sorted by signature.
    edge_signatures: Vec<(EdgeSignature, u32)>,
    /// Vertex degrees, descending.
    degree_sequence: Vec<u32>,
}

/// A borrowed structural summary: the same digest as [`StructuralSummary`],
/// but with every column a slice, so a whole database of summaries can live
/// in shared arenas (the columnar S-Index) and be read without materialising
/// per-graph vectors.  All comparison logic lives here; the owned type
/// delegates through [`StructuralSummary::view`].
#[derive(Debug, Clone, Copy)]
pub struct SummaryView<'a> {
    vertex_count: u32,
    edge_count: u32,
    vertex_labels: &'a [(Label, u32)],
    edge_signatures: &'a [(EdgeSignature, u32)],
    degree_sequence: &'a [u32],
}

impl<'a> SummaryView<'a> {
    /// Assembles a view from raw columns.  The caller asserts the
    /// [`StructuralSummary`] invariants (sorted keys, positive counts,
    /// matching totals, descending degrees) — views built from columns that
    /// were validated on the way in (graph summaries, decoded snapshots) are
    /// the intended use.
    pub fn from_raw_parts(
        vertex_count: u32,
        edge_count: u32,
        vertex_labels: &'a [(Label, u32)],
        edge_signatures: &'a [(EdgeSignature, u32)],
        degree_sequence: &'a [u32],
    ) -> SummaryView<'a> {
        debug_assert_eq!(degree_sequence.len(), vertex_count as usize);
        debug_assert!(vertex_labels.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(edge_signatures.windows(2).all(|w| w[0].0 < w[1].0));
        SummaryView {
            vertex_count,
            edge_count,
            vertex_labels,
            edge_signatures,
            degree_sequence,
        }
    }

    /// Number of vertices of the summarised graph.
    #[inline]
    pub fn vertex_count(self) -> usize {
        self.vertex_count as usize
    }

    /// Number of edges of the summarised graph.
    #[inline]
    pub fn edge_count(self) -> usize {
        self.edge_count as usize
    }

    /// The vertex-label multiset as sorted `(label, multiplicity)` pairs.
    pub fn vertex_labels(self) -> &'a [(Label, u32)] {
        self.vertex_labels
    }

    /// The edge-signature histogram as sorted `(signature, multiplicity)`
    /// pairs.
    pub fn edge_signatures(self) -> &'a [(EdgeSignature, u32)] {
        self.edge_signatures
    }

    /// The degree sequence, descending.
    pub fn degree_sequence(self) -> &'a [u32] {
        self.degree_sequence
    }

    /// Multiplicity of `sig` (0 when absent).
    pub fn signature_count(self, sig: EdgeSignature) -> usize {
        match self.edge_signatures.binary_search_by_key(&sig, |&(s, _)| s) {
            Ok(i) => self.edge_signatures[i].1 as usize,
            Err(_) => 0,
        }
    }

    /// Multiplicity of vertex label `l` (0 when absent).
    pub fn label_count(self, l: Label) -> usize {
        match self.vertex_labels.binary_search_by_key(&l, |&(x, _)| x) {
            Ok(i) => self.vertex_labels[i].1 as usize,
            Err(_) => 0,
        }
    }

    /// A necessary condition for `pattern ⊆iso self` — see
    /// [`StructuralSummary::subsumes`].
    pub fn subsumes(self, pattern: SummaryView<'_>) -> bool {
        if pattern.vertex_count > self.vertex_count || pattern.edge_count > self.edge_count {
            return false;
        }
        if !multiset_dominates(self.vertex_labels, pattern.vertex_labels) {
            return false;
        }
        if !multiset_dominates(self.edge_signatures, pattern.edge_signatures) {
            return false;
        }
        // Sorted-dominance: the k-th largest target degree must be at least
        // the k-th largest pattern degree (any embedding maps the pattern
        // vertex of the k-th largest degree onto a distinct target vertex of
        // at least that degree).
        pattern
            .degree_sequence
            .iter()
            .zip(self.degree_sequence)
            .all(|(p, t)| p <= t)
    }

    /// The Grafil edge-feature deficit — see
    /// [`StructuralSummary::signature_deficit`].
    pub fn signature_deficit(self, g: SummaryView<'_>, cap: usize) -> usize {
        let mut deficit = 0usize;
        for &(sig, qc) in self.edge_signatures {
            deficit += (qc as usize).saturating_sub(g.signature_count(sig));
            if deficit > cap {
                return deficit;
            }
        }
        deficit
    }

    /// Materialises the view into an owned [`StructuralSummary`].
    pub fn to_owned_summary(self) -> StructuralSummary {
        StructuralSummary {
            vertex_count: self.vertex_count,
            edge_count: self.edge_count,
            vertex_labels: self.vertex_labels.to_vec(),
            edge_signatures: self.edge_signatures.to_vec(),
            degree_sequence: self.degree_sequence.to_vec(),
        }
    }
}

impl StructuralSummary {
    /// Computes the summary of `g`.
    pub fn of(g: &Graph) -> StructuralSummary {
        let vertex_labels = g
            .vertex_label_histogram()
            .into_iter()
            .map(|(l, c)| (l, c as u32))
            .collect();
        let edge_signatures = g
            .edge_signature_histogram()
            .into_iter()
            .map(|(s, c)| (s, c as u32))
            .collect();
        let mut degree_sequence: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
        degree_sequence.sort_unstable_by(|a, b| b.cmp(a));
        StructuralSummary {
            vertex_count: g.vertex_count() as u32,
            edge_count: g.edge_count() as u32,
            vertex_labels,
            edge_signatures,
            degree_sequence,
        }
    }

    /// Reassembles a summary from its raw parts (snapshot decoding),
    /// validating every invariant.  Returns a human-readable reason on
    /// failure; never panics on corrupt input.
    pub fn from_parts(
        vertex_count: u32,
        edge_count: u32,
        vertex_labels: Vec<(Label, u32)>,
        edge_signatures: Vec<(EdgeSignature, u32)>,
        degree_sequence: Vec<u32>,
    ) -> Result<StructuralSummary, String> {
        if vertex_labels.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("vertex labels must be strictly increasing".into());
        }
        if edge_signatures.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("edge signatures must be strictly increasing".into());
        }
        if vertex_labels.iter().any(|&(_, c)| c == 0)
            || edge_signatures.iter().any(|&(_, c)| c == 0)
        {
            return Err("histogram multiplicities must be positive".into());
        }
        let label_total: u64 = vertex_labels.iter().map(|&(_, c)| u64::from(c)).sum();
        if label_total != u64::from(vertex_count) {
            return Err(format!(
                "vertex label multiplicities sum to {label_total}, expected {vertex_count}"
            ));
        }
        let sig_total: u64 = edge_signatures.iter().map(|&(_, c)| u64::from(c)).sum();
        if sig_total != u64::from(edge_count) {
            return Err(format!(
                "edge signature multiplicities sum to {sig_total}, expected {edge_count}"
            ));
        }
        if degree_sequence.len() != vertex_count as usize {
            return Err(format!(
                "degree sequence has {} entries, expected {vertex_count}",
                degree_sequence.len()
            ));
        }
        if degree_sequence.windows(2).any(|w| w[0] < w[1]) {
            return Err("degree sequence must be descending".into());
        }
        let degree_total: u64 = degree_sequence.iter().map(|&d| u64::from(d)).sum();
        if degree_total != 2 * u64::from(edge_count) {
            return Err(format!(
                "degrees sum to {degree_total}, expected {}",
                2 * u64::from(edge_count)
            ));
        }
        Ok(StructuralSummary {
            vertex_count,
            edge_count,
            vertex_labels,
            edge_signatures,
            degree_sequence,
        })
    }

    /// This summary as a borrowed [`SummaryView`].
    #[inline]
    pub fn view(&self) -> SummaryView<'_> {
        SummaryView {
            vertex_count: self.vertex_count,
            edge_count: self.edge_count,
            vertex_labels: &self.vertex_labels,
            edge_signatures: &self.edge_signatures,
            degree_sequence: &self.degree_sequence,
        }
    }

    /// Number of vertices of the summarised graph.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count as usize
    }

    /// Number of edges of the summarised graph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count as usize
    }

    /// The vertex-label multiset as sorted `(label, multiplicity)` pairs.
    pub fn vertex_labels(&self) -> &[(Label, u32)] {
        &self.vertex_labels
    }

    /// The edge-signature histogram as sorted `(signature, multiplicity)`
    /// pairs.
    pub fn edge_signatures(&self) -> &[(EdgeSignature, u32)] {
        &self.edge_signatures
    }

    /// The degree sequence, descending.
    pub fn degree_sequence(&self) -> &[u32] {
        &self.degree_sequence
    }

    /// Multiplicity of `sig` (0 when absent).
    pub fn signature_count(&self, sig: EdgeSignature) -> usize {
        self.view().signature_count(sig)
    }

    /// Multiplicity of vertex label `l` (0 when absent).
    pub fn label_count(&self, l: Label) -> usize {
        self.view().label_count(l)
    }

    /// A necessary condition for `pattern ⊆iso self` (non-induced, label
    /// preserving): the counts, both label multisets and the degree sequence
    /// of the pattern must all be dominated by this graph's.  Strictly
    /// stronger than the histogram-only prefilter VF2 used to recompute per
    /// call, and allocation-free.
    pub fn subsumes(&self, pattern: &StructuralSummary) -> bool {
        self.view().subsumes(pattern.view())
    }

    /// The Grafil edge-feature deficit of this summary (as the query) against
    /// `g` (as the data graph): `Σ_sig max(0, count_q(sig) − count_g(sig))`,
    /// capped at `cap + 1` (early exit).  A deficit exceeding `δ` proves
    /// `dis(q, g) > δ` because each deleted edge removes exactly one
    /// signature occurrence.
    pub fn signature_deficit(&self, g: &StructuralSummary, cap: usize) -> usize {
        self.view().signature_deficit(g.view(), cap)
    }
}

/// True if every key of `b` appears in `a` with at least `b`'s multiplicity
/// (both slices sorted by key).
fn multiset_dominates<K: Ord + Copy>(a: &[(K, u32)], b: &[(K, u32)]) -> bool {
    let mut ai = 0usize;
    for &(key, need) in b {
        while ai < a.len() && a[ai].0 < key {
            ai += 1;
        }
        if ai >= a.len() || a[ai].0 != key || a[ai].1 < need {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphBuilder;
    use crate::vf2::contains_subgraph;

    fn graph_002() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build()
    }

    #[test]
    fn summary_matches_the_graph_histograms() {
        let g = graph_002();
        let s = StructuralSummary::of(&g);
        assert_eq!(s.vertex_count(), 5);
        assert_eq!(s.edge_count(), 5);
        for (l, c) in g.vertex_label_histogram() {
            assert_eq!(s.label_count(l), c);
        }
        for (sig, c) in g.edge_signature_histogram() {
            assert_eq!(s.signature_count(sig), c);
        }
        assert_eq!(s.signature_count((Label(7), Label(7), Label(7))), 0);
        assert_eq!(s.label_count(Label(42)), 0);
        assert_eq!(s.degree_sequence(), &[4, 2, 2, 1, 1]);
    }

    #[test]
    fn subsumes_is_necessary_for_containment() {
        let g = graph_002();
        let gs = StructuralSummary::of(&g);
        let patterns = [
            GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build(),
            GraphBuilder::new()
                .vertices(&[0, 0, 1])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .build(),
            GraphBuilder::new().vertices(&[2, 2]).edge(0, 1, 9).build(),
            GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 7).build(),
            GraphBuilder::new()
                .vertices(&[0, 1, 1, 1])
                .edge(0, 1, 9)
                .edge(0, 2, 9)
                .edge(0, 3, 9)
                .build(),
        ];
        for p in &patterns {
            let ps = StructuralSummary::of(p);
            if contains_subgraph(p, &g) {
                assert!(gs.subsumes(&ps), "subsumes dropped a true containment");
            }
        }
        // Labels absent from the target are rejected.
        let foreign = StructuralSummary::of(&patterns[2]);
        assert!(!gs.subsumes(&foreign));
        // A larger pattern is never subsumed.
        let star = StructuralSummary::of(&patterns[4]);
        assert!(!star.subsumes(&gs));
    }

    #[test]
    fn degree_dominance_rejects_what_histograms_alone_would_pass() {
        // Target: two disjoint a-b edges; pattern: the path b-a-b.  Vertex
        // labels and edge signatures are all available with enough
        // multiplicity, but the pattern needs a degree-2 `a` vertex and every
        // target vertex has degree 1.
        let target = GraphBuilder::new()
            .vertices(&[0, 1, 0, 1])
            .edge(0, 1, 9)
            .edge(2, 3, 9)
            .build();
        let pattern = GraphBuilder::new()
            .vertices(&[1, 0, 1])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .build();
        let ts = StructuralSummary::of(&target);
        let ps = StructuralSummary::of(&pattern);
        assert!(!contains_subgraph(&pattern, &target));
        assert!(!ts.subsumes(&ps));
    }

    #[test]
    fn signature_deficit_matches_the_bruteforce_definition() {
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build();
        let qs = StructuralSummary::of(&q);
        let g = graph_002();
        let gs = StructuralSummary::of(&g);
        let qh = q.edge_signature_histogram();
        let gh = g.edge_signature_histogram();
        let expected: usize = qh
            .iter()
            .map(|(sig, qc)| qc.saturating_sub(gh.get(sig).copied().unwrap_or(0)))
            .sum();
        assert_eq!(qs.signature_deficit(&gs, usize::MAX - 1), expected);
        // The cap produces an early exit strictly above the cap.
        if expected > 0 {
            assert!(qs.signature_deficit(&gs, 0) > 0);
        }
    }

    #[test]
    fn from_parts_round_trips_and_rejects_corruption() {
        let s = StructuralSummary::of(&graph_002());
        let rebuilt = StructuralSummary::from_parts(
            s.vertex_count() as u32,
            s.edge_count() as u32,
            s.vertex_labels().to_vec(),
            s.edge_signatures().to_vec(),
            s.degree_sequence().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, s);

        // Wrong totals, orders and zero counts are all rejected.
        assert!(StructuralSummary::from_parts(
            3,
            1,
            vec![(Label(0), 3)],
            vec![((Label(0), Label(0), Label(0)), 2)],
            vec![2, 1, 1],
        )
        .is_err());
        assert!(StructuralSummary::from_parts(
            2,
            1,
            vec![(Label(1), 1), (Label(0), 1)],
            vec![((Label(0), Label(0), Label(1)), 1)],
            vec![1, 1],
        )
        .is_err());
        assert!(StructuralSummary::from_parts(
            2,
            1,
            vec![(Label(0), 1), (Label(1), 1)],
            vec![((Label(0), Label(0), Label(1)), 1)],
            vec![1, 1, 1],
        )
        .is_err());
        assert!(StructuralSummary::from_parts(
            2,
            1,
            vec![(Label(0), 2)],
            vec![((Label(0), Label(0), Label(0)), 1)],
            vec![0, 2],
        )
        .is_err());
        assert!(StructuralSummary::from_parts(
            2,
            1,
            vec![(Label(0), 2), (Label(1), 0)],
            vec![((Label(0), Label(0), Label(0)), 1)],
            vec![1, 1],
        )
        .is_err());
    }

    #[test]
    fn empty_graph_summary() {
        let s = StructuralSummary::of(&Graph::new());
        assert_eq!(s.vertex_count(), 0);
        assert_eq!(s.edge_count(), 0);
        assert!(s.edge_signatures().is_empty());
        assert!(s.subsumes(&s));
    }
}
