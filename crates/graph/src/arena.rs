//! Flat arena layouts shared by the hot layers of the pipeline.
//!
//! The pipeline's inner loops (posting scans, SIP bound evaluation, Karp–Luby
//! trials) iterate rows of ragged two-dimensional data.  Storing those rows as
//! `Vec<Vec<T>>` spreads them across the heap: every row is its own
//! allocation, every access a pointer chase, and a database of `n` graphs
//! costs `O(n)` allocator round trips to build or drop.  [`FlatVecVec`] packs
//! the same data into exactly two allocations — an offsets table and a values
//! arena — with O(1) row slicing, and [`CsrAdjacency`] specialises the idea
//! for graph adjacency, rebuilding the classic compressed-sparse-row layout
//! from an edge list while preserving the exact neighbor order incremental
//! insertion would have produced (the determinism contract of DESIGN.md §8
//! depends on that order).

use crate::model::{Edge, EdgeId, VertexId};

/// A ragged `Vec<Vec<T>>` packed into two flat allocations.
///
/// `offsets` has one entry per row plus a trailing sentinel; row `i` is
/// `values[offsets[i]..offsets[i + 1]]`.  Rows are immutable once pushed;
/// mutation is "rebuild the arena", which is a single O(total) pass and is
/// how the index layers handle their (rare) churn operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatVecVec<T> {
    offsets: Vec<u32>,
    values: Vec<T>,
}

impl<T> Default for FlatVecVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FlatVecVec<T> {
    /// An arena with no rows.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// An empty arena with capacity reserved for `rows` rows and `values`
    /// total elements.
    pub fn with_capacity(rows: usize, values: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            offsets,
            values: Vec::with_capacity(values),
        }
    }

    /// Packs an iterator of rows into a fresh arena.
    pub fn from_rows<R, I>(rows: R) -> Self
    where
        R: IntoIterator<Item = I>,
        I: IntoIterator<Item = T>,
    {
        let mut out = Self::new();
        for row in rows {
            out.push_row(row);
        }
        out
    }

    /// Reassembles an arena from raw parts, validating the offsets table.
    ///
    /// Returns `None` unless `offsets` starts at 0, is non-decreasing, and
    /// ends exactly at `values.len()`.
    pub fn from_raw(offsets: Vec<u32>, values: Vec<T>) -> Option<Self> {
        if offsets.first() != Some(&0) || offsets.last().copied()? as usize != values.len() {
            return None;
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(Self { offsets, values })
    }

    /// Appends one row built from `row`.
    pub fn push_row<I: IntoIterator<Item = T>>(&mut self, row: I) {
        self.values.extend(row);
        debug_assert!(self.values.len() <= u32::MAX as usize);
        self.offsets.push(self.values.len() as u32);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of elements across all rows.
    pub fn total_len(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as a slice.  O(1).
    pub fn row(&self, i: usize) -> &[T] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.values[lo..hi]
    }

    /// Length of row `i` without touching the values arena.
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates the rows in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[T]> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// The packed values arena (all rows back to back).
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the packed values arena.  Row boundaries are fixed;
    /// this only lets callers rewrite elements in place (e.g. renumbering ids
    /// after a removal).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The offsets table (`len() + 1` entries, starting at 0).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Appends `value` at the end of row `row`, shifting every later row.
    /// O(total) — a churn-path operation, not an inner-loop one.
    pub fn push_into_row(&mut self, row: usize, value: T) {
        let pos = self.offsets[row + 1] as usize;
        self.values.insert(pos, value);
        for o in &mut self.offsets[row + 1..] {
            *o += 1;
        }
    }

    /// Removes and returns the element at position `idx` of row `row`,
    /// shifting every later row.  O(total) — a churn-path operation.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the row.
    pub fn remove_from_row(&mut self, row: usize, idx: usize) -> T {
        assert!(idx < self.row_len(row), "remove_from_row: index out of row");
        let pos = self.offsets[row] as usize + idx;
        let v = self.values.remove(pos);
        for o in &mut self.offsets[row + 1..] {
            *o -= 1;
        }
        v
    }

    /// Retains only the elements for which `f(row, &mut value)` returns true,
    /// compacting the arena in one O(total) pass.  `f` may rewrite the kept
    /// values in place (renumbering after a removal does exactly that).
    pub fn retain_mut(&mut self, mut f: impl FnMut(usize, &mut T) -> bool) {
        let mut write = 0usize;
        let mut read = 0usize;
        for row in 0..self.len() {
            let end = self.offsets[row + 1] as usize;
            while read < end {
                if f(row, &mut self.values[read]) {
                    self.values.swap(write, read);
                    write += 1;
                }
                read += 1;
            }
            self.offsets[row + 1] = write as u32;
        }
        self.values.truncate(write);
    }
}

/// Compressed-sparse-row adjacency for a [`crate::model::Graph`].
///
/// Built in one pass from the edge list; `row(v)` yields `(neighbor, edge)`
/// pairs in exactly the order incremental `add_edge` calls would have pushed
/// them (edge-id order), so every traversal that consumed the old nested-Vec
/// adjacency enumerates identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    pairs: Vec<(VertexId, EdgeId)>,
}

impl CsrAdjacency {
    /// Builds the CSR layout for `vertex_count` vertices from `edges`
    /// (indexed by edge id).
    pub fn build(vertex_count: usize, edges: &[Edge]) -> Self {
        let mut degree = vec![0u32; vertex_count];
        for e in edges {
            degree[e.u.index()] += 1;
            degree[e.v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(vertex_count + 1);
        let mut running = 0u32;
        offsets.push(0);
        for &d in &degree {
            running += d;
            offsets.push(running);
        }
        // Fill each row in edge-id order using per-vertex cursors; this
        // reproduces the insertion order of incremental `add_edge` calls.
        let mut cursor: Vec<u32> = offsets[..vertex_count].to_vec();
        let mut pairs = vec![(VertexId(0), EdgeId(0)); running as usize];
        for (id, e) in edges.iter().enumerate() {
            let id = EdgeId(id as u32);
            let cu = &mut cursor[e.u.index()];
            pairs[*cu as usize] = (e.v, id);
            *cu += 1;
            let cv = &mut cursor[e.v.index()];
            pairs[*cv as usize] = (e.u, id);
            *cv += 1;
        }
        Self { offsets, pairs }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The `(neighbor, edge)` pairs incident to vertex `v`.
    pub fn row(&self, v: usize) -> &[(VertexId, EdgeId)] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.pairs[lo..hi]
    }

    /// Degree of vertex `v`, read from the offsets table alone.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Graph, Label};

    #[test]
    fn empty_arena() {
        let a: FlatVecVec<u32> = FlatVecVec::new();
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
        assert_eq!(a.total_len(), 0);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn rows_round_trip() {
        let rows: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![], vec![4], vec![5, 6]];
        let a = FlatVecVec::from_rows(rows.iter().map(|r| r.iter().copied()));
        assert_eq!(a.len(), 4);
        assert_eq!(a.total_len(), 6);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(a.row(i), row.as_slice());
            assert_eq!(a.row_len(i), row.len());
        }
        let collected: Vec<Vec<u32>> = a.iter().map(|r| r.to_vec()).collect();
        assert_eq!(collected, rows);
        assert_eq!(a.values(), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.offsets(), &[0, 3, 3, 4, 6]);
    }

    #[test]
    fn push_row_matches_from_rows() {
        let mut a = FlatVecVec::with_capacity(3, 4);
        a.push_row([7u32, 8]);
        a.push_row([]);
        a.push_row([9, 10]);
        let b = FlatVecVec::from_rows(vec![vec![7u32, 8], vec![], vec![9, 10]]);
        assert_eq!(a, b);
    }

    #[test]
    fn row_mutation_matches_nested_vec_reference() {
        let mut nested: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3, 4, 5]];
        let mut flat = FlatVecVec::from_rows(nested.iter().map(|r| r.iter().copied()));

        nested[1].push(9);
        flat.push_into_row(1, 9);
        nested[0].push(7);
        flat.push_into_row(0, 7);
        assert_eq!(flat, FlatVecVec::from_rows(nested.clone()));

        assert_eq!(flat.remove_from_row(2, 1), 4);
        nested[2].remove(1);
        assert_eq!(flat, FlatVecVec::from_rows(nested.clone()));

        // Drop every even value and decrement the survivors, per row.
        for row in &mut nested {
            row.retain(|v| v % 2 == 1);
            for v in row.iter_mut() {
                *v += 10;
            }
        }
        flat.retain_mut(|_, v| {
            let keep = *v % 2 == 1;
            if keep {
                *v += 10;
            }
            keep
        });
        assert_eq!(flat, FlatVecVec::from_rows(nested));
    }

    #[test]
    fn from_raw_validates() {
        assert!(FlatVecVec::from_raw(vec![0, 2, 3], vec![1u8, 2, 3]).is_some());
        // Does not start at zero.
        assert!(FlatVecVec::from_raw(vec![1, 3], vec![1u8, 2, 3]).is_none());
        // Decreasing.
        assert!(FlatVecVec::from_raw(vec![0, 2, 1, 3], vec![1u8, 2, 3]).is_none());
        // Sentinel does not cover the values.
        assert!(FlatVecVec::from_raw(vec![0, 2], vec![1u8, 2, 3]).is_none());
        // Empty offsets table.
        assert!(FlatVecVec::<u8>::from_raw(vec![], vec![]).is_none());
    }

    /// The CSR rows must reproduce the neighbor order incremental insertion
    /// produces, including for vertices with no edges.
    #[test]
    fn csr_matches_incremental_insertion_order() {
        let mut g = Graph::with_name("csr");
        for l in [0u32, 1, 2, 0, 1] {
            g.add_vertex(Label(l));
        }
        // Deliberately interleave endpoints so rows receive pushes in a
        // non-trivial order.
        for (a, b, l) in [(0, 1, 0), (2, 1, 1), (0, 2, 0), (3, 0, 1), (1, 3, 0)] {
            g.add_edge(VertexId(a), VertexId(b), Label(l)).unwrap();
        }
        let csr = CsrAdjacency::build(g.vertex_count(), g.edge_slice());
        assert_eq!(csr.vertex_count(), 5);
        assert_eq!(
            csr.row(0),
            &[
                (VertexId(1), EdgeId(0)),
                (VertexId(2), EdgeId(2)),
                (VertexId(3), EdgeId(3)),
            ]
        );
        assert_eq!(
            csr.row(1),
            &[
                (VertexId(0), EdgeId(0)),
                (VertexId(2), EdgeId(1)),
                (VertexId(3), EdgeId(4)),
            ]
        );
        assert_eq!(
            csr.row(2),
            &[(VertexId(1), EdgeId(1)), (VertexId(0), EdgeId(2))]
        );
        assert_eq!(
            csr.row(3),
            &[(VertexId(0), EdgeId(3)), (VertexId(1), EdgeId(4))]
        );
        assert_eq!(csr.row(4), &[]);
        assert_eq!(csr.degree(0), 3);
        assert_eq!(csr.degree(4), 0);
    }
}
