//! Embeddings of a pattern graph inside a data graph.
//!
//! Definition 5 of the paper calls the image subgraph `(V3, E3)` of an injective
//! matching the *embedding* of the pattern.  The probabilistic machinery
//! (Section 4.1) only ever cares about the **edge set** of an embedding — two
//! matchings that select the same data edges (e.g. automorphic images) behave
//! identically in every probability formula — so [`Embedding`] carries both the
//! vertex map (useful for diagnostics) and a canonical, sorted edge set used for
//! deduplication, disjointness tests and cut computation.

use crate::model::{EdgeId, VertexId};

/// A sorted, deduplicated set of data-graph edge ids.
pub type EdgeSet = Vec<EdgeId>;

/// One embedding of a pattern in a data graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Embedding {
    /// `vertex_map[i]` is the data vertex the `i`-th pattern vertex maps to.
    pub vertex_map: Vec<VertexId>,
    /// Sorted data-graph edge ids covered by the pattern edges.
    pub edges: EdgeSet,
}

impl Embedding {
    /// Creates an embedding, normalising (sorting + deduplicating) the edge set.
    pub fn new(vertex_map: Vec<VertexId>, mut edges: Vec<EdgeId>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        Embedding { vertex_map, edges }
    }

    /// Number of data edges covered.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the two embeddings share no data edge ("disjoint embeddings" in
    /// the sense of Section 4.1.1 — they have no common parts/edges).
    pub fn is_edge_disjoint(&self, other: &Embedding) -> bool {
        edge_sets_disjoint(&self.edges, &other.edges)
    }

    /// True if the two embeddings share at least one data edge.
    pub fn overlaps(&self, other: &Embedding) -> bool {
        !self.is_edge_disjoint(other)
    }

    /// True if this embedding uses the given data edge.
    pub fn uses_edge(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }
}

/// True if two sorted edge sets are disjoint (linear merge scan).
pub fn edge_sets_disjoint(a: &[EdgeId], b: &[EdgeId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// Intersection of two sorted edge sets.
pub fn edge_set_intersection(a: &[EdgeId], b: &[EdgeId]) -> EdgeSet {
    let (mut i, mut j) = (0usize, 0usize);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Union of two sorted edge sets.
pub fn edge_set_union(a: &[EdgeId], b: &[EdgeId]) -> EdgeSet {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_unstable();
    out.dedup();
    out
}

/// Greedily selects a maximal set of pairwise edge-disjoint embeddings
/// (first-fit by index order). This is the *untightened* `IN` set of
/// Equation 11; the clique-based search in `pgs-index` finds a better one.
pub fn greedy_disjoint_subset(embeddings: &[Embedding]) -> Vec<usize> {
    let mut chosen: Vec<usize> = Vec::new();
    for (i, emb) in embeddings.iter().enumerate() {
        if chosen.iter().all(|&j| embeddings[j].is_edge_disjoint(emb)) {
            chosen.push(i);
        }
    }
    chosen
}

/// The maximum number of pairwise edge-disjoint embeddings, computed greedily
/// with several orderings (used by feature selection: `|IN| / |Ef| ≥ α`).
pub fn disjoint_embedding_count(embeddings: &[Embedding]) -> usize {
    if embeddings.is_empty() {
        return 0;
    }
    // Greedy by ascending edge-set size tends to find larger disjoint families.
    let mut order: Vec<usize> = (0..embeddings.len()).collect();
    order.sort_by_key(|&i| embeddings[i].edges.len());
    let mut best = 0usize;
    for start in 0..order.len().min(8) {
        let mut chosen: Vec<usize> = Vec::new();
        for idx in order.iter().cycle().skip(start).take(order.len()) {
            let emb = &embeddings[*idx];
            if chosen.iter().all(|&j| embeddings[j].is_edge_disjoint(emb)) {
                chosen.push(*idx);
            }
        }
        best = best.max(chosen.len());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb(edges: &[u32]) -> Embedding {
        Embedding::new(vec![], edges.iter().map(|&e| EdgeId(e)).collect())
    }

    #[test]
    fn new_normalises_edge_set() {
        let e = Embedding::new(vec![VertexId(0)], vec![EdgeId(3), EdgeId(1), EdgeId(3)]);
        assert_eq!(e.edges, vec![EdgeId(1), EdgeId(3)]);
        assert_eq!(e.edge_count(), 2);
        assert!(e.uses_edge(EdgeId(3)));
        assert!(!e.uses_edge(EdgeId(2)));
    }

    #[test]
    fn disjointness_checks() {
        let a = emb(&[0, 1]);
        let b = emb(&[2, 3]);
        let c = emb(&[1, 2]);
        assert!(a.is_edge_disjoint(&b));
        assert!(!a.is_edge_disjoint(&c));
        assert!(a.overlaps(&c));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn set_operations() {
        let a = vec![EdgeId(0), EdgeId(1), EdgeId(4)];
        let b = vec![EdgeId(1), EdgeId(2), EdgeId(4)];
        assert_eq!(edge_set_intersection(&a, &b), vec![EdgeId(1), EdgeId(4)]);
        assert_eq!(
            edge_set_union(&a, &b),
            vec![EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(4)]
        );
        assert!(!edge_sets_disjoint(&a, &b));
        assert!(edge_sets_disjoint(&a, &[EdgeId(7)]));
        assert!(edge_sets_disjoint(&[], &b));
    }

    #[test]
    fn greedy_disjoint_family() {
        // Figure 7: EM1={e1,e2}, EM2={e2,e3}, EM3={e3,e4}. EM1 and EM3 are disjoint.
        let embs = vec![emb(&[1, 2]), emb(&[2, 3]), emb(&[3, 4])];
        let chosen = greedy_disjoint_subset(&embs);
        assert_eq!(chosen, vec![0, 2]);
        assert_eq!(disjoint_embedding_count(&embs), 2);
    }

    #[test]
    fn disjoint_count_empty_and_overlapping() {
        assert_eq!(disjoint_embedding_count(&[]), 0);
        let embs = vec![emb(&[0, 1]), emb(&[1, 2]), emb(&[0, 2])];
        assert_eq!(disjoint_embedding_count(&embs), 1);
    }
}
