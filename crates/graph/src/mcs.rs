//! Maximum common subgraph and the paper's *subgraph distance*.
//!
//! Definition 7 defines `mcs(g1, g2)` as the largest subgraph of `g2` that is
//! subgraph-isomorphic to `g1`; Definition 8 then sets
//! `dis(g1, g2) = |g1| − |mcs(g1, g2)|` counting **edges**.  Deterministic
//! subgraph similarity (`g1 ⊆sim g2` for threshold `δ`) holds iff
//! `dis(g1, g2) ≤ δ`.
//!
//! Two entry points are provided:
//!
//! * [`mcs_size`] — exact maximum common edge subgraph via branch-and-bound on
//!   partial injective vertex mappings (queries are small, so this is cheap);
//! * [`subgraph_similar`] — the threshold test used by the pipeline.  For small
//!   `δ` it is answered by testing whether some `(|q| − δ')`-edge sub-pattern of
//!   `q` (0 ≤ δ' ≤ δ) embeds in `g`, which is usually much cheaper than a full
//!   MCS computation and matches how the paper's structural filter consumes the
//!   relaxed query set.

use crate::model::{Graph, VertexId};
use crate::relax::{delete_edge_subsets, RelaxOptions};
use crate::summary::{StructuralSummary, SummaryView};
use crate::vf2::{contains_subgraph, contains_subgraph_summarized};

/// Size (in edges) of the maximum common subgraph of `g1` and `g2`
/// (largest subgraph of `g2` subgraph-isomorphic to a subgraph of `g1`).
pub fn mcs_size(g1: &Graph, g2: &Graph) -> usize {
    if g1.edge_count() == 0 || g2.edge_count() == 0 {
        return 0;
    }
    // Map the smaller-edge-count graph onto the other for a smaller search tree;
    // common edge subgraph size is symmetric.
    let (a, b) = if g1.edge_count() <= g2.edge_count() {
        (g1, g2)
    } else {
        (g2, g1)
    };
    let mut searcher = McsSearch {
        a,
        b,
        best: 0,
        mapping: vec![None; a.vertex_count()],
        used: vec![false; b.vertex_count()],
        order: order_by_degree(a),
    };
    let ub = a.edge_count().min(b.edge_count());
    searcher.recurse(0, 0);
    searcher.best.min(ub)
}

/// The paper's subgraph distance `dis(g1, g2) = |g1| − |mcs(g1, g2)|`.
pub fn subgraph_distance(g1: &Graph, g2: &Graph) -> usize {
    g1.edge_count() - mcs_size(g1, g2)
}

/// True if `dis(q, g) ≤ delta` (deterministic subgraph similarity, Def. 8).
pub fn subgraph_similar(q: &Graph, g: &Graph, delta: usize) -> bool {
    if q.edge_count() <= delta {
        return true;
    }
    if contains_subgraph(q, g) {
        return true;
    }
    similar_after_deletions(q, g, delta)
}

/// [`subgraph_similar`] with cached [`StructuralSummary`] values for the query
/// and the data graph, so the exact-containment fast path reuses them instead
/// of recomputing both histograms.  Returns exactly what [`subgraph_similar`]
/// returns — the structural query phase relies on the two agreeing
/// bit-for-bit.
pub fn subgraph_similar_summarized(
    q: &Graph,
    g: &Graph,
    delta: usize,
    q_summary: SummaryView<'_>,
    g_summary: SummaryView<'_>,
) -> bool {
    if q.edge_count() <= delta {
        return true;
    }
    if contains_subgraph_summarized(q, q_summary, g, g_summary) {
        return true;
    }
    similar_after_deletions(q, g, delta)
}

/// The shared tail of the similarity test once exact containment has failed:
/// for small δ, testing relaxed sub-patterns is cheaper than full MCS (the
/// distance is ≤ δ iff q with some δ edges removed embeds in g); large
/// deletion budgets fall back to the exact distance.
fn similar_after_deletions(q: &Graph, g: &Graph, delta: usize) -> bool {
    if deletion_budget(q, delta) <= DELETION_BUDGET_CAP {
        for d in 1..=delta {
            let opts = RelaxOptions {
                deletions: d,
                ..RelaxOptions::default()
            };
            for sub in delete_edge_subsets(q, &opts) {
                if contains_subgraph(&sub, g) {
                    return true;
                }
            }
        }
        false
    } else {
        subgraph_distance(q, g) <= delta
    }
}

/// Edge subsets the deletion fast path would enumerate.
fn deletion_budget(q: &Graph, delta: usize) -> usize {
    (1..=delta).map(|d| binomial(q.edge_count(), d)).sum()
}

/// Beyond this many deletion subsets the similarity test switches to the
/// exact MCS distance.
const DELETION_BUDGET_CAP: usize = 4_096;

/// A reusable `dis(q, ·) ≤ δ` tester that precomputes everything derivable
/// from the query alone: its [`StructuralSummary`] and — on the small-budget
/// fast path — the edge-deleted sub-patterns with *their* summaries
/// (isomorphic duplicates included; see the constructor for why dedup is
/// skipped).
///
/// [`subgraph_similar`] re-derives that work for every candidate (the
/// sub-pattern dedup runs a canonical-code computation per subset, which
/// dwarfs the VF2 calls on small graphs); the S-Index query path tests many
/// candidates per query and builds one tester instead.
/// [`SimilarityTester::matches`] returns exactly what [`subgraph_similar`]
/// returns for every `(g, δ)` — the structural phase's brute-force/indexed
/// equivalence rests on it.
pub struct SimilarityTester<'a> {
    q: &'a Graph,
    delta: usize,
    q_summary: StructuralSummary,
    /// Sub-patterns in the exact order `subgraph_similar` enumerates them
    /// (deletion count ascending); `None` when the deletion budget exceeds
    /// the cap and candidates fall back to the exact MCS distance.
    relaxations: Option<Vec<(Graph, StructuralSummary)>>,
}

impl<'a> SimilarityTester<'a> {
    /// Precomputes the tester for `(q, delta)`.
    pub fn new(q: &'a Graph, delta: usize) -> SimilarityTester<'a> {
        let q_summary = StructuralSummary::of(q);
        let relaxations = if q.edge_count() <= delta {
            // Trivially similar to everything; nothing to precompute.
            Some(Vec::new())
        } else if deletion_budget(q, delta) <= DELETION_BUDGET_CAP {
            let mut out = Vec::new();
            for d in 1..=delta {
                // No isomorphism dedup: a duplicate sub-pattern cannot change
                // the boolean `any(contains)` below, and the canonical-code
                // computation the dedup runs per subset costs far more than
                // the redundant VF2 existence checks it saves.
                let opts = RelaxOptions {
                    deletions: d,
                    dedup: false,
                    ..RelaxOptions::default()
                };
                for sub in delete_edge_subsets(q, &opts) {
                    let summary = StructuralSummary::of(&sub);
                    out.push((sub, summary));
                }
            }
            Some(out)
        } else {
            None
        };
        SimilarityTester {
            q,
            delta,
            q_summary,
            relaxations,
        }
    }

    /// The query's summary (callers feed it to the S-Index filter).
    pub fn query_summary(&self) -> &StructuralSummary {
        &self.q_summary
    }

    /// Exactly [`subgraph_similar`]`(q, g, delta)`, using the precomputed
    /// query-side state and `g`'s cached summary.
    pub fn matches(&self, g: &Graph, g_summary: SummaryView<'_>) -> bool {
        if self.q.edge_count() <= self.delta {
            return true;
        }
        if contains_subgraph_summarized(self.q, self.q_summary.view(), g, g_summary) {
            return true;
        }
        match &self.relaxations {
            Some(subs) => subs.iter().any(|(sub, summary)| {
                contains_subgraph_summarized(sub, summary.view(), g, g_summary)
            }),
            None => subgraph_distance(self.q, g) <= self.delta,
        }
    }
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 0..k {
        num *= (n - i) as u128;
        den *= (i + 1) as u128;
    }
    (num / den).min(usize::MAX as u128) as usize
}

struct McsSearch<'a> {
    a: &'a Graph,
    b: &'a Graph,
    best: usize,
    mapping: Vec<Option<VertexId>>,
    used: Vec<bool>,
    order: Vec<VertexId>,
}

impl McsSearch<'_> {
    fn recurse(&mut self, depth: usize, matched_edges: usize) {
        if depth == self.order.len() {
            self.best = self.best.max(matched_edges);
            return;
        }
        // Upper bound: every edge of `a` with at least one endpoint not yet
        // placed could still be matched.
        let placed: Vec<bool> =
            self.order
                .iter()
                .take(depth)
                .fold(vec![false; self.a.vertex_count()], |mut acc, v| {
                    acc[v.index()] = true;
                    acc
                });
        let remaining_possible = self
            .a
            .edge_entries()
            .filter(|(_, e)| !placed[e.u.index()] || !placed[e.v.index()])
            .count();
        if matched_edges + remaining_possible <= self.best {
            return;
        }
        let v = self.order[depth];
        let v_label = self.a.vertex_label(v);
        // Option 1: leave `v` unmapped.
        self.recurse(depth + 1, matched_edges);
        // Option 2: map `v` to every compatible unused vertex of `b`.
        for w in self.b.vertices() {
            if self.used[w.index()] || self.b.vertex_label(w) != v_label {
                continue;
            }
            // Count newly matched edges: edges of `a` between v and already
            // mapped vertices whose images are adjacent in `b` with the same label.
            let mut gained = 0usize;
            let mut consistent = true;
            for &(n, ea) in self.a.neighbors(v) {
                if let Some(img) = self.mapping[n.index()] {
                    match self.b.find_edge(w, img) {
                        Some(eb) if self.b.edge_label(eb) == self.a.edge_label(ea) => gained += 1,
                        _ => {
                            // Missing edges are allowed (they just do not count),
                            // so nothing to do; `consistent` only matters for
                            // induced variants which MCS does not need.
                            let _ = &mut consistent;
                        }
                    }
                }
            }
            self.mapping[v.index()] = Some(w);
            self.used[w.index()] = true;
            self.recurse(depth + 1, matched_edges + gained);
            self.mapping[v.index()] = None;
            self.used[w.index()] = false;
        }
    }
}

fn order_by_degree(g: &Graph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphBuilder;

    fn triangle_q() -> Graph {
        // Query q of Figure 1: triangle a(0), b(1), c(2).
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    fn graph_001() -> Graph {
        // Graph 001 of Figure 1: vertices a, b, d with a triangle (e1,e2,e3).
        GraphBuilder::new()
            .vertices(&[0, 1, 3])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    #[test]
    fn identical_graphs_have_distance_zero() {
        let q = triangle_q();
        assert_eq!(mcs_size(&q, &q), 3);
        assert_eq!(subgraph_distance(&q, &q), 0);
        assert!(subgraph_similar(&q, &q, 0));
    }

    #[test]
    fn figure_1_query_vs_graph_001() {
        // q = triangle(a,b,c); 001 = triangle(a,b,d). They share the single a-b
        // edge, so mcs = 1 and dis = 2.
        let q = triangle_q();
        let g = graph_001();
        assert_eq!(mcs_size(&q, &g), 1);
        assert_eq!(subgraph_distance(&q, &g), 2);
        assert!(!subgraph_similar(&q, &g, 1));
        assert!(subgraph_similar(&q, &g, 2));
    }

    #[test]
    fn figure_1_query_vs_graph_002() {
        // Graph 002 contains a triangle a,a,b and extra b,c vertices; q=(a,b,c)
        // triangle. q's edges: a-b, b-c, a-c. In 002 we can match a-b (e.g. v0-v2)
        // and b-c (v2-v4) simultaneously → mcs ≥ 2; the a-c edge cannot also be
        // matched (no a-c edge in 002), so dis = 1. This is exactly why the paper
        // says q subgraph-similarly matches 002 with δ = 1.
        let q = triangle_q();
        let g002 = GraphBuilder::new()
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        assert_eq!(mcs_size(&q, &g002), 2);
        assert_eq!(subgraph_distance(&q, &g002), 1);
        assert!(subgraph_similar(&q, &g002, 1));
        assert!(!subgraph_similar(&q, &g002, 0));
    }

    #[test]
    fn distance_counts_unmatchable_edges() {
        // Star with 3 labelled leaves vs a single matching edge.
        let star = GraphBuilder::new()
            .vertices(&[0, 1, 2, 3])
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .edge(0, 3, 0)
            .build();
        let single = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        assert_eq!(mcs_size(&star, &single), 1);
        assert_eq!(subgraph_distance(&star, &single), 2);
        assert!(subgraph_similar(&star, &single, 2));
        assert!(!subgraph_similar(&star, &single, 1));
    }

    #[test]
    fn mcs_is_zero_when_labels_disjoint() {
        let a = GraphBuilder::new().vertices(&[0, 0]).edge(0, 1, 0).build();
        let b = GraphBuilder::new().vertices(&[5, 5]).edge(0, 1, 0).build();
        assert_eq!(mcs_size(&a, &b), 0);
        assert_eq!(subgraph_distance(&a, &b), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let e = Graph::new();
        let q = triangle_q();
        assert_eq!(mcs_size(&e, &q), 0);
        assert_eq!(mcs_size(&q, &e), 0);
        assert_eq!(subgraph_distance(&q, &e), 3);
        assert!(subgraph_similar(&e, &q, 0));
        assert!(subgraph_similar(&q, &e, 3));
        assert!(!subgraph_similar(&q, &e, 2));
    }

    #[test]
    fn subgraph_similar_matches_distance_definition() {
        // Cross-check the subset-deletion fast path against the exact distance
        // on a handful of structured cases.
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 0, 1])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .edge(0, 3, 0)
            .build(); // 4-cycle with alternating labels
        let g = GraphBuilder::new()
            .vertices(&[0, 1, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build(); // path of 2 edges
        let d = subgraph_distance(&q, &g);
        assert_eq!(d, 2);
        for delta in 0..=4 {
            assert_eq!(subgraph_similar(&q, &g, delta), delta >= d);
        }
    }

    #[test]
    fn summarized_similarity_agrees_with_the_plain_test() {
        use crate::summary::StructuralSummary;
        let graphs = [
            triangle_q(),
            graph_001(),
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 2])
                .edge(0, 1, 9)
                .edge(0, 2, 9)
                .edge(1, 2, 9)
                .edge(2, 3, 9)
                .edge(2, 4, 9)
                .build(),
            GraphBuilder::new().vertices(&[7, 8]).edge(0, 1, 1).build(),
        ];
        let q = triangle_q();
        let qs = StructuralSummary::of(&q);
        for g in &graphs {
            let gs = StructuralSummary::of(g);
            for delta in 0..=3 {
                assert_eq!(
                    subgraph_similar_summarized(&q, g, delta, qs.view(), gs.view()),
                    subgraph_similar(&q, g, delta),
                    "delta = {delta}"
                );
            }
        }
    }

    #[test]
    fn similarity_tester_agrees_with_subgraph_similar() {
        use crate::summary::StructuralSummary;
        let graphs = [
            triangle_q(),
            graph_001(),
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 2])
                .edge(0, 1, 9)
                .edge(0, 2, 9)
                .edge(1, 2, 9)
                .edge(2, 3, 9)
                .edge(2, 4, 9)
                .build(),
            GraphBuilder::new().vertices(&[7, 8]).edge(0, 1, 1).build(),
            Graph::new(),
        ];
        let queries = [
            triangle_q(),
            GraphBuilder::new()
                .vertices(&[0, 1, 0, 1])
                .edge(0, 1, 0)
                .edge(1, 2, 0)
                .edge(2, 3, 0)
                .edge(0, 3, 0)
                .build(),
        ];
        for q in &queries {
            for delta in 0..=4 {
                let tester = SimilarityTester::new(q, delta);
                for g in &graphs {
                    let gs = StructuralSummary::of(g);
                    assert_eq!(
                        tester.matches(g, gs.view()),
                        subgraph_similar(q, g, delta),
                        "query {:?} delta {delta}",
                        q.name()
                    );
                }
            }
        }
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
        assert_eq!(binomial(60, 3), 34_220);
    }
}
