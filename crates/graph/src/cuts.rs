//! Minimal embedding-cut enumeration.
//!
//! Section 4.1.2 defines an *embedding cut* of a feature `f` in `gc` as a set
//! of edges whose removal destroys **every** embedding of `f`, and uses only
//! *minimal* cuts.  The paper computes them by building a "parallel graph" `cG`
//! (one line graph per embedding, all wired between two terminals `s` and `t`)
//! and enumerating its minimal s–t cuts with the Karzanov–Timofeev algorithm
//! \[22\]; Theorem 6 states the two edge-set families coincide.
//!
//! A set of edges disconnects `s` from `t` in `cG` exactly when it contains at
//! least one edge of every embedding's line, i.e. when it is a **transversal
//! (hitting set) of the embeddings' edge sets**; the minimal cuts are the
//! minimal transversals.  We therefore enumerate minimal hitting sets directly
//! — same output, no auxiliary graph — with a configurable cap because the
//! number of minimal transversals can grow exponentially.
//!
//! This module also provides [`parallel_graph`], a faithful construction of the
//! paper's `cG` (used by tests to validate Theorem 6 on the paper's Example 7
//! and by anyone who wants to inspect the reduction).

use crate::embeddings::EdgeSet;
use crate::model::{EdgeId, Graph, Label, VertexId};
use std::collections::BTreeSet;

/// Options for minimal-cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutEnumOptions {
    /// Maximum number of minimal cuts to return (0 = unlimited).
    pub max_cuts: usize,
    /// Maximum number of branch nodes explored (safety valve).
    pub max_steps: u64,
}

impl Default for CutEnumOptions {
    fn default() -> Self {
        CutEnumOptions {
            max_cuts: 256,
            max_steps: 1_000_000,
        }
    }
}

/// Enumerates the minimal edge sets that hit (intersect) every given embedding
/// edge set — i.e. the minimal embedding cuts of Section 4.1.2.
///
/// Returns sorted, deduplicated cuts; the result is complete iff neither cap
/// was hit (second tuple element).
pub fn minimal_cuts(embeddings: &[EdgeSet], options: CutEnumOptions) -> (Vec<EdgeSet>, bool) {
    // No embeddings: the feature does not occur, there is nothing to cut.
    if embeddings.is_empty() {
        return (Vec::new(), true);
    }
    // Any empty embedding can never be destroyed by removing edges; no cut exists.
    if embeddings.iter().any(|e| e.is_empty()) {
        return (Vec::new(), true);
    }
    let mut state = HittingSetSearch {
        sets: embeddings,
        found: BTreeSet::new(),
        steps: 0,
        complete: true,
        options,
    };
    let mut partial = Vec::new();
    state.branch(&mut partial);
    // Keep only minimal transversals: drop any found set that is a strict
    // superset of another found set.
    let all: Vec<EdgeSet> = state.found.iter().cloned().collect();
    let minimal: Vec<EdgeSet> = all
        .iter()
        .filter(|c| !all.iter().any(|o| o.len() < c.len() && is_subset(o, c)))
        .cloned()
        .collect();
    (minimal, state.complete)
}

fn is_subset(small: &[EdgeId], big: &[EdgeId]) -> bool {
    small.iter().all(|e| big.binary_search(e).is_ok())
}

struct HittingSetSearch<'a> {
    sets: &'a [EdgeSet],
    found: BTreeSet<EdgeSet>,
    steps: u64,
    complete: bool,
    options: CutEnumOptions,
}

impl HittingSetSearch<'_> {
    fn branch(&mut self, partial: &mut Vec<EdgeId>) {
        self.steps += 1;
        if self.steps > self.options.max_steps
            || (self.options.max_cuts > 0 && self.found.len() >= self.options.max_cuts)
        {
            self.complete = false;
            return;
        }
        // Find the first set not hit by the partial transversal (pick the
        // smallest uncovered set to keep branching narrow).
        let uncovered = self
            .sets
            .iter()
            .filter(|s| !s.iter().any(|e| partial.contains(e)))
            .min_by_key(|s| s.len());
        match uncovered {
            None => {
                // Partial hits everything; minimise it (every edge must be
                // necessary) before recording.
                let minimised = minimise(self.sets, partial);
                self.found.insert(minimised);
            }
            Some(set) => {
                for &e in set.iter() {
                    partial.push(e);
                    self.branch(partial);
                    partial.pop();
                    if !self.complete
                        && self.options.max_cuts > 0
                        && self.found.len() >= self.options.max_cuts
                    {
                        return;
                    }
                }
            }
        }
    }
}

/// Removes unnecessary edges from a transversal (an edge is unnecessary if the
/// remaining edges still hit every set), producing a minimal transversal.
fn minimise(sets: &[EdgeSet], transversal: &[EdgeId]) -> EdgeSet {
    let mut kept: Vec<EdgeId> = transversal.to_vec();
    kept.sort_unstable();
    kept.dedup();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i];
        let without: Vec<EdgeId> = kept.iter().copied().filter(|&e| e != candidate).collect();
        let still_hits = sets
            .iter()
            .all(|s| s.iter().any(|e| without.binary_search(e).is_ok()));
        if still_hits {
            kept = without;
        } else {
            i += 1;
        }
    }
    kept
}

/// The paper's parallel graph `cG` (Figure 8): one line per embedding, wired
/// between fresh terminals `s` and `t`.
///
/// Vertices: `s`, `t`, and `k+1` fresh nodes per embedding of `k` edges.
/// Edges: the `k` line edges of each embedding are labelled with the *original
/// data-graph edge id* (so cuts can be read back), plus one unlabelled stub at
/// each end connecting the line to `s` / `t`.
///
/// Returns the graph, the terminal ids `(s, t)`, and for each cG edge the
/// original [`EdgeId`] it represents (`None` for the stubs).
pub fn parallel_graph(
    embeddings: &[EdgeSet],
) -> (Graph, (VertexId, VertexId), Vec<Option<EdgeId>>) {
    let mut g = Graph::with_name("cG");
    let s = g.add_vertex(Label(u32::MAX));
    let t = g.add_vertex(Label(u32::MAX - 1));
    let mut origin: Vec<Option<EdgeId>> = Vec::new();
    for emb in embeddings {
        let mut prev = g.add_vertex(Label(0));
        // stub s -- first node
        g.add_edge(s, prev, Label(u32::MAX))
            // pgs-lint: allow(panic-in-library, cG vertices are freshly numbered, so the edge cannot be a duplicate)
            .expect("cG construction is simple");
        origin.push(None);
        for &orig in emb {
            let next = g.add_vertex(Label(0));
            g.add_edge(prev, next, Label(orig.0))
                // pgs-lint: allow(panic-in-library, cG vertices are freshly numbered, so the edge cannot be a duplicate)
                .expect("cG construction is simple");
            origin.push(Some(orig));
            prev = next;
        }
        // stub last node -- t
        g.add_edge(prev, t, Label(u32::MAX))
            // pgs-lint: allow(panic-in-library, cG vertices are freshly numbered, so the edge cannot be a duplicate)
            .expect("cG construction is simple");
        origin.push(None);
    }
    (g, (s, t), origin)
}

/// Enumerates the minimal s–t cuts of `cG` that avoid the terminal stubs and
/// maps them back to original data-graph edges.  Provided to validate
/// Theorem 6; [`minimal_cuts`] is the production path.
pub fn minimal_cuts_via_parallel_graph(
    embeddings: &[EdgeSet],
    options: CutEnumOptions,
) -> (Vec<EdgeSet>, bool) {
    // In cG every s-t path goes through exactly one embedding line; a cut must
    // sever every line using non-stub edges, i.e. pick ≥1 original edge per
    // embedding. That is the hitting-set formulation; reuse it but go through
    // the explicit construction so the reduction is exercised.
    let (_g, _st, origin) = parallel_graph(embeddings);
    // Sanity: every original edge of every embedding appears in cG.
    debug_assert!(embeddings
        .iter()
        .flat_map(|e| e.iter())
        .all(|e| origin.contains(&Some(*e))));
    minimal_cuts(embeddings, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> EdgeSet {
        let mut v: Vec<EdgeId> = ids.iter().map(|&i| EdgeId(i)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn example_7_cuts_of_feature_f2() {
        // Figure 8 / Example 7: embeddings {e1,e2}, {e2,e3}, {e3,e4}. The paper
        // lists the minimal embedding cuts {e2,e4}, {e1,e3,e4}... wait, and
        // {e2,e3}. Verify exactly that set.
        let embeddings = vec![set(&[1, 2]), set(&[2, 3]), set(&[3, 4])];
        let (cuts, complete) = minimal_cuts(&embeddings, CutEnumOptions::default());
        assert!(complete);
        let expected: BTreeSet<EdgeSet> = [set(&[2, 4]), set(&[2, 3]), set(&[1, 3])]
            .into_iter()
            .collect();
        // The paper's Example 7 text lists {e2,e4}, {e1,e3,e4} and {e2,e3}; note
        // {e1,e3} is also a minimal transversal ({e1} hits EM1, {e3} hits EM2 and
        // EM3) and {e1,e3,e4} is NOT minimal because {e1,e3} ⊂ it. Our enumerator
        // must return exactly the minimal ones.
        let got: BTreeSet<EdgeSet> = cuts.iter().cloned().collect();
        assert!(got.contains(&set(&[2, 4])));
        assert!(got.contains(&set(&[2, 3])));
        assert!(got.contains(&set(&[1, 3])));
        assert!(!got.contains(&set(&[1, 3, 4])));
        for c in &got {
            // every returned cut hits every embedding
            for e in &embeddings {
                assert!(e.iter().any(|x| c.contains(x)));
            }
            // and is minimal
            for drop in c.iter() {
                let reduced: Vec<EdgeId> = c.iter().copied().filter(|x| x != drop).collect();
                assert!(
                    !embeddings
                        .iter()
                        .all(|e| e.iter().any(|x| reduced.contains(x))),
                    "cut {c:?} is not minimal"
                );
            }
        }
        assert!(expected.iter().all(|c| got.contains(c)));
    }

    #[test]
    fn single_embedding_cuts_are_single_edges() {
        let embeddings = vec![set(&[5, 7, 9])];
        let (cuts, complete) = minimal_cuts(&embeddings, CutEnumOptions::default());
        assert!(complete);
        let got: BTreeSet<EdgeSet> = cuts.into_iter().collect();
        assert_eq!(got, [set(&[5]), set(&[7]), set(&[9])].into_iter().collect());
    }

    #[test]
    fn disjoint_embeddings_need_one_edge_each() {
        let embeddings = vec![set(&[0, 1]), set(&[2, 3])];
        let (cuts, complete) = minimal_cuts(&embeddings, CutEnumOptions::default());
        assert!(complete);
        assert_eq!(cuts.len(), 4); // 2 × 2 combinations, all minimal
        for c in &cuts {
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn shared_edge_yields_singleton_cut() {
        let embeddings = vec![set(&[0, 1]), set(&[1, 2])];
        let (cuts, _) = minimal_cuts(&embeddings, CutEnumOptions::default());
        let got: BTreeSet<EdgeSet> = cuts.into_iter().collect();
        assert!(got.contains(&set(&[1])));
        assert!(got.contains(&set(&[0, 2])));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let (cuts, complete) = minimal_cuts(&[], CutEnumOptions::default());
        assert!(cuts.is_empty());
        assert!(complete);
        let (cuts, complete) = minimal_cuts(&[vec![]], CutEnumOptions::default());
        assert!(cuts.is_empty());
        assert!(complete);
    }

    #[test]
    fn cap_limits_output() {
        // Many disjoint embeddings → exponentially many cuts; the cap kicks in.
        let embeddings: Vec<EdgeSet> = (0..10).map(|i| set(&[2 * i, 2 * i + 1])).collect();
        let opts = CutEnumOptions {
            max_cuts: 16,
            max_steps: 1_000_000,
        };
        let (cuts, complete) = minimal_cuts(&embeddings, opts);
        assert!(!complete);
        assert!(cuts.len() <= 16);
        for c in &cuts {
            for e in &embeddings {
                assert!(e.iter().any(|x| c.contains(x)));
            }
        }
    }

    #[test]
    fn parallel_graph_matches_figure_8_shape() {
        // Figure 8: 3 embeddings of 2 edges each → cG has 2 terminals + 3*(2+1)
        // line nodes = 11 vertices, and 3*(2+2) = 12 edges.
        let embeddings = vec![set(&[1, 2]), set(&[2, 3]), set(&[3, 4])];
        let (g, (s, t), origin) = parallel_graph(&embeddings);
        assert_eq!(g.vertex_count(), 11);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(origin.len(), 12);
        assert_eq!(origin.iter().filter(|o| o.is_none()).count(), 6); // 2 stubs per line
        assert_eq!(g.degree(s), 3);
        assert_eq!(g.degree(t), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn theorem_6_equivalence_of_cut_families() {
        let embeddings = vec![set(&[1, 2]), set(&[2, 3]), set(&[3, 4])];
        let (direct, _) = minimal_cuts(&embeddings, CutEnumOptions::default());
        let (via_cg, _) = minimal_cuts_via_parallel_graph(&embeddings, CutEnumOptions::default());
        let a: BTreeSet<EdgeSet> = direct.into_iter().collect();
        let b: BTreeSet<EdgeSet> = via_cg.into_iter().collect();
        assert_eq!(a, b);
    }
}
