//! Scoped-thread chunked parallelism shared by the PMI build and the query
//! pipeline.
//!
//! The workspace deliberately avoids external thread-pool crates (the build
//! environment is offline), so both the index fill and the query phases use
//! the same `std::thread::scope` pattern: split the items into one contiguous
//! chunk per worker, map each item with its *global* index, and reassemble the
//! results in input order.  Determinism is therefore the caller's duty — the
//! mapping closure must not depend on shared mutable state, which in practice
//! means deriving any randomness from the item's identity (see
//! [`derive_seed`]) rather than from a shared RNG.

/// Resolves a `threads` knob: `0` means automatic (the available parallelism,
/// clamped to 8 workers), any other value is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8)
    } else {
        threads
    }
}

/// Maps `f` over `items` with up to `threads` scoped worker threads
/// (`0` = automatic), preserving input order in the output.
///
/// The closure receives the *global* index of the item so per-item seeds can
/// be derived identically no matter how the items are chunked; consequently
/// the result is byte-identical for every thread count as long as `f` itself
/// is a pure function of `(index, item)`.  With one worker (or zero/one item)
/// no thread is spawned at all.
pub fn par_map_chunked<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_size = items.len().div_ceil(threads).max(1);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| {
                let offset = ci * chunk_size;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(offset + j, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker thread panicked"));
        }
    });
    out
}

/// SplitMix64 finalizer: scrambles a 64-bit value so that structurally related
/// inputs (consecutive indices, XOR-combined hashes) yield decorrelated RNG
/// seeds.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Folds a sequence of salts into one decorrelated RNG seed.  The fold is
/// non-commutative, so `derive_seed(&[a, b])` and `derive_seed(&[b, a])`
/// differ — callers can layer engine seed, query hash, graph salt and a phase
/// tag without cancellation (a plain XOR of equal hashes would collapse to 0).
pub fn derive_seed(salts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &s in salts {
        h = mix64(h ^ s);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_is_identity_for_explicit_values() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn par_map_preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map_chunked(&items, threads, |i, &x| {
                assert_eq!(i, x, "global index must match the item position");
                x * 2
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_chunked(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map_chunked(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn derive_seed_is_order_sensitive_and_stable() {
        let a = derive_seed(&[1, 2, 3]);
        let b = derive_seed(&[1, 2, 3]);
        let c = derive_seed(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Equal salts must not cancel to a constant.
        assert_ne!(derive_seed(&[42, 42]), derive_seed(&[7, 7]));
    }

    #[test]
    fn mix64_scrambles_consecutive_inputs() {
        let outputs: Vec<u64> = (0..16).map(mix64).collect();
        for w in outputs.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }
}
