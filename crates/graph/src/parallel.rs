//! Chunked parallelism shared by the PMI build and the query pipeline,
//! dispatched on the persistent worker pool ([`crate::pool`]).
//!
//! The workspace deliberately avoids external thread-pool crates (the build
//! environment is offline), so both the index fill and the query phases share
//! the same pattern: split the items into one contiguous chunk per worker,
//! map each item with its *global* index, and reassemble the results in input
//! order.  Determinism is therefore the caller's duty — the mapping closure
//! must not depend on shared mutable state, which in practice means deriving
//! any randomness from the item's identity (see [`derive_seed`]) rather than
//! from a shared RNG.
//!
//! Dispatch is gated by a small cost model ([`CostHint`]): handing work to
//! the pool costs on the order of ten microseconds of wake-up and
//! synchronisation, so inputs whose *predicted total work* is below
//! [`DISPATCH_FLOOR_NANOS`] run inline on the caller instead of paying
//! dispatch overhead that dwarfs the work itself.

use crate::pool;
pub use crate::pool::MAX_THREADS;
use std::sync::{Mutex, OnceLock};

/// Resolves a `threads` knob: `0` means automatic, any other value is taken
/// literally but clamped to [`MAX_THREADS`] (a literal `100_000` used to
/// attempt one hundred thousand OS threads).
///
/// Automatic resolution is memoized: the first call reads `PGS_QUERY_THREADS`
/// (when set to a positive integer it pins the automatic worker count — CI
/// uses it to run the whole suite at fixed counts) or falls back to
/// [`std::thread::available_parallelism`] clamped to 8, and every later call
/// returns the cached value.  `available_parallelism` is a syscall, and it
/// used to be re-issued on every `par_map_chunked` call in every phase of
/// every query — pure hot-path overhead for an answer that never changes.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        auto_threads()
    } else {
        threads.min(MAX_THREADS)
    }
}

/// The memoized automatic worker count (see [`resolve_threads`]).
fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        match std::env::var("PGS_QUERY_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n > 0 => n.min(MAX_THREADS),
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8),
        }
    })
}

/// Predicted total work below which a map runs inline on the caller: pool
/// dispatch (queue push, worker wake-up, completion wait) costs on the order
/// of 10 µs, so fanning out less than ~200 µs of work trades a guaranteed
/// overhead for a negligible win — the exact pessimization `BENCH_query.json`
/// recorded before the cost model existed.
pub const DISPATCH_FLOOR_NANOS: u64 = 200_000;

/// Rough per-item cost class of a mapping closure, used by the dispatch cost
/// model.  Callers pick the class describing their closure; the model only
/// needs order-of-magnitude accuracy to keep trivial inputs off the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostHint {
    /// Estimated nanoseconds one closure invocation takes.
    pub per_item_nanos: u64,
}

impl CostHint {
    /// Sub-microsecond items: histogram probes, arithmetic filters.
    /// Parallel only from ~400 items up.
    pub const LIGHT: CostHint = CostHint {
        per_item_nanos: 500,
    };
    /// Items in the tens of microseconds: subgraph-distance checks, pruning
    /// bound evaluations.  Parallel from ~20 items up.
    pub const MODERATE: CostHint = CostHint {
        per_item_nanos: 10_000,
    };
    /// Items in the hundreds of microseconds and beyond: PMI column fills,
    /// verification samplers, whole queries.  Parallel from 2 items up.
    pub const HEAVY: CostHint = CostHint {
        per_item_nanos: 200_000,
    };

    /// Whether `items` invocations are predicted to outweigh the dispatch
    /// overhead ([`DISPATCH_FLOOR_NANOS`]).
    pub const fn worth_dispatching(self, items: usize) -> bool {
        (items as u64).saturating_mul(self.per_item_nanos) >= DISPATCH_FLOOR_NANOS
    }
}

/// Maps `f` over `items` with up to `threads` pool workers (`0` = automatic),
/// preserving input order in the output.  Assumes [`CostHint::MODERATE`]
/// items; use [`par_map_chunked_costed`] when the closure's cost class is
/// known to differ.
///
/// The closure receives the *global* index of the item so per-item seeds can
/// be derived identically no matter how the items are chunked; consequently
/// the result is byte-identical for every thread count as long as `f` itself
/// is a pure function of `(index, item)`.  With one worker, zero/one items,
/// or a predicted workload under the dispatch floor, the map runs inline on
/// the caller and the pool is not touched at all.
pub fn par_map_chunked<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_chunked_costed(items, threads, CostHint::MODERATE, f)
}

/// [`par_map_chunked`] with an explicit per-item cost class.
///
/// The cost model only decides *whether* to dispatch — never how the items
/// are chunked — so inline and pooled runs of the same input are
/// byte-identical (the determinism suite pins this for every thread count).
///
/// # Panics
///
/// If `f` panics, the first payload is re-raised on the caller via
/// [`std::panic::resume_unwind`] after all chunks have drained, so a test
/// failure inside a worker surfaces its real message.
pub fn par_map_chunked_costed<T, U, F>(items: &[T], threads: usize, cost: CostHint, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 || !cost.worth_dispatching(items.len()) {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // The same global-index chunk layout the scoped-thread executor used:
    // one contiguous chunk per worker, boundaries a pure function of
    // (len, threads) — never of pool state.
    let chunk_size = items.len().div_ceil(threads).max(1);
    let chunks = items.len().div_ceil(chunk_size);
    let slots: Vec<Mutex<Option<Vec<U>>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let f = &f;
    let slots_ref = &slots;
    pool::global().run(chunks, threads, &move |ci| {
        let start = ci * chunk_size;
        let end = (start + chunk_size).min(items.len());
        let mapped: Vec<U> = items[start..end]
            .iter()
            .enumerate()
            .map(|(j, t)| f(start + j, t))
            .collect();
        // pgs-lint: allow(panic-in-library, slot poisoning means another chunk panicked; the pool re-raises that panic)
        *slots_ref[ci].lock().expect("chunk slot poisoned") = Some(mapped);
    });
    slots
        .into_iter()
        .flat_map(|slot| {
            slot.into_inner()
                // pgs-lint: allow(panic-in-library, slot poisoning means another chunk panicked; the pool re-raises that panic)
                .expect("chunk slot poisoned")
                // pgs-lint: allow(panic-in-library, the pool blocks until every chunk ran, so every slot is filled)
                .expect("pool completed the job, so every chunk slot is filled")
        })
        .collect()
}

/// The pre-pool spawn-per-call executor, kept verbatim as the `bench-pool`
/// baseline so the dispatch-latency win of the persistent pool stays
/// measurable (`BENCH_pool.json`).  Not used on any production path.
pub fn par_map_chunked_spawn_baseline<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_size = items.len().div_ceil(threads).max(1);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| {
                let offset = ci * chunk_size;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(offset + j, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// SplitMix64 finalizer: scrambles a 64-bit value so that structurally related
/// inputs (consecutive indices, XOR-combined hashes) yield decorrelated RNG
/// seeds.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Folds a sequence of salts into one decorrelated RNG seed.  The fold is
/// non-commutative, so `derive_seed(&[a, b])` and `derive_seed(&[b, a])`
/// differ — callers can layer engine seed, query hash, graph salt and a phase
/// tag without cancellation (a plain XOR of equal hashes would collapse to 0).
pub fn derive_seed(salts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &s in salts {
        h = mix64(h ^ s);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn resolve_threads_is_identity_for_sane_explicit_values() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
        assert_eq!(resolve_threads(MAX_THREADS), MAX_THREADS);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn resolve_threads_clamps_absurd_explicit_values() {
        assert_eq!(resolve_threads(MAX_THREADS + 1), MAX_THREADS);
        assert_eq!(resolve_threads(100_000), MAX_THREADS);
        assert_eq!(resolve_threads(usize::MAX), MAX_THREADS);
    }

    #[test]
    fn resolve_threads_auto_is_memoized() {
        let first = resolve_threads(0);
        for _ in 0..100 {
            assert_eq!(resolve_threads(0), first);
        }
        assert!(first <= MAX_THREADS);
    }

    #[test]
    fn cost_model_keeps_tiny_inputs_sequential() {
        assert!(!CostHint::LIGHT.worth_dispatching(10));
        assert!(!CostHint::MODERATE.worth_dispatching(10));
        assert!(CostHint::MODERATE.worth_dispatching(20));
        assert!(CostHint::HEAVY.worth_dispatching(2));
        assert!(CostHint::LIGHT.worth_dispatching(400));
        // Saturating: absurd item counts must not overflow into "sequential".
        assert!(CostHint::HEAVY.worth_dispatching(usize::MAX));
    }

    #[test]
    fn par_map_preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map_chunked(&items, threads, |i, &x| {
                assert_eq!(i, x, "global index must match the item position");
                x * 2
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn pooled_and_inline_runs_are_identical() {
        // HEAVY forces pool dispatch from 2 items; the sequential reference
        // runs inline.  Byte-identical output is the §8 contract.
        let items: Vec<u64> = (0..13).map(|i| i * 977 + 3).collect();
        let map = |i: usize, x: &u64| derive_seed(&[i as u64, *x]);
        let inline: Vec<u64> = items.iter().enumerate().map(|(i, x)| map(i, x)).collect();
        for threads in [2, 3, 8] {
            let pooled = par_map_chunked_costed(&items, threads, CostHint::HEAVY, map);
            assert_eq!(pooled, inline, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_chunked(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map_chunked(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn spawn_baseline_agrees_with_the_pool() {
        let items: Vec<u64> = (0..41).collect();
        let map = |i: usize, x: &u64| mix64(i as u64 ^ *x);
        for threads in [1, 2, 4] {
            assert_eq!(
                par_map_chunked_spawn_baseline(&items, threads, map),
                par_map_chunked_costed(&items, threads, CostHint::HEAVY, map),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let items: Vec<usize> = (0..16).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map_chunked_costed(&items, 4, CostHint::HEAVY, |i, _| {
                if i == 11 {
                    panic!("item 11 is cursed");
                }
                i
            });
        }))
        .expect_err("the worker panic must propagate to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .expect("a literal panic! payload is a &'static str");
        assert_eq!(msg, "item 11 is cursed");
    }

    #[test]
    fn derive_seed_is_order_sensitive_and_stable() {
        let a = derive_seed(&[1, 2, 3]);
        let b = derive_seed(&[1, 2, 3]);
        let c = derive_seed(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Equal salts must not cancel to a constant.
        assert_ne!(derive_seed(&[42, 42]), derive_seed(&[7, 7]));
    }

    #[test]
    fn mix64_scrambles_consecutive_inputs() {
        let outputs: Vec<u64> = (0..16).map(mix64).collect();
        for w in outputs.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }
}
