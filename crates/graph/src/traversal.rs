//! Basic traversals: BFS/DFS, connectivity, connected components and triangle
//! listing.
//!
//! Triangle listing is needed by the probabilistic layer: the paper defines
//! *neighbor edges* as "edges incident to the same vertex or the edges of a
//! triangle" (Definition 1), so the neighbor-edge-set construction in
//! `pgs-prob` asks this module for all triangles of the skeleton graph.

use crate::model::{EdgeId, Graph, VertexId};

/// Breadth-first order of all vertices reachable from `start`.
pub fn bfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let n = g.vertex_count();
    if start.index() >= n {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &(w, _) in g.neighbors(v) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Depth-first preorder of all vertices reachable from `start`.
pub fn dfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let n = g.vertex_count();
    if start.index() >= n {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut stack = vec![start];
    let mut order = Vec::new();
    while let Some(v) = stack.pop() {
        if visited[v.index()] {
            continue;
        }
        visited[v.index()] = true;
        order.push(v);
        // Push in reverse so lower-numbered neighbours are visited first.
        for &(w, _) in g.neighbors(v).iter().rev() {
            if !visited[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

/// True if every vertex is reachable from vertex 0. Empty graphs are connected.
pub fn is_connected(g: &Graph) -> bool {
    if g.vertex_count() == 0 {
        return true;
    }
    bfs_order(g, VertexId(0)).len() == g.vertex_count()
}

/// Connected components as lists of vertices (each sorted ascending).
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let n = g.vertex_count();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for v in g.vertices() {
        if seen[v.index()] {
            continue;
        }
        let comp = bfs_order(g, v);
        for &w in &comp {
            seen[w.index()] = true;
        }
        let mut comp = comp;
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// Returns whether the *edge-induced* structure of the graph is connected,
/// i.e. the subgraph formed by the endpoints of its edges has one component.
/// Isolated vertices are ignored. A graph with no edges is edge-connected only
/// if it has at most one vertex.
pub fn edges_form_connected_subgraph(g: &Graph) -> bool {
    if g.edge_count() == 0 {
        return g.vertex_count() <= 1;
    }
    let first = g.edge(EdgeId(0)).u;
    let reach = bfs_order(g, first);
    let mut touched = vec![false; g.vertex_count()];
    for &v in &reach {
        touched[v.index()] = true;
    }
    for (_, e) in g.edge_entries() {
        if !touched[e.u.index()] || !touched[e.v.index()] {
            return false;
        }
    }
    true
}

/// Lists every triangle as a sorted triple of edge ids.
///
/// Runs in `O(Σ_v deg(v)^2)`, which is fine for the paper's sparse PPI-style
/// skeletons.
pub fn triangles(g: &Graph) -> Vec<[EdgeId; 3]> {
    let mut out = Vec::new();
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                let (a, ea) = nbrs[i];
                let (b, eb) = nbrs[j];
                // Count each triangle exactly once: v must be the smallest vertex.
                if v < a && v < b {
                    if let Some(ec) = g.find_edge(a, b) {
                        let mut tri = [ea, eb, ec];
                        tri.sort_unstable();
                        out.push(tri);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    connected_components(g).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphBuilder, Label};

    fn path4() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build()
    }

    #[test]
    fn bfs_visits_everything_in_level_order() {
        let g = path4();
        let order = bfs_order(&g, VertexId(0));
        assert_eq!(
            order,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(bfs_order(&g, VertexId(9)), Vec::<VertexId>::new());
    }

    #[test]
    fn dfs_visits_everything() {
        let g = path4();
        let order = dfs_order(&g, VertexId(0));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], VertexId(0));
    }

    #[test]
    fn components_are_partition() {
        let mut g = path4();
        g.add_vertex(Label(0));
        g.add_vertex(Label(0));
        g.add_edge(VertexId(4), VertexId(5), Label(0)).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(component_count(&g), 2);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 6);
        assert!(!is_connected(&g));
    }

    #[test]
    fn triangle_listing_finds_unique_triangles() {
        // Two triangles sharing an edge: vertices 0-1-2 and 1-2-3.
        let g = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .edge(1, 3, 0)
            .edge(2, 3, 0)
            .build();
        let tris = triangles(&g);
        assert_eq!(tris.len(), 2);
        for t in &tris {
            // each triangle has three distinct edges
            assert!(t[0] < t[1] && t[1] < t[2]);
        }
    }

    #[test]
    fn no_triangles_in_a_path() {
        assert!(triangles(&path4()).is_empty());
    }

    #[test]
    fn edge_connectivity_ignores_isolated_vertices() {
        let mut g = path4();
        g.add_vertex(Label(7)); // isolated vertex
        assert!(edges_form_connected_subgraph(&g));
        assert!(!is_connected(&g));

        // Two disjoint edges are not edge-connected.
        let h = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(2, 3, 0)
            .build();
        assert!(!edges_form_connected_subgraph(&h));
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let empty = Graph::new();
        assert!(is_connected(&empty));
        assert!(edges_form_connected_subgraph(&empty));
        let mut single = Graph::new();
        single.add_vertex(Label(0));
        assert!(is_connected(&single));
        assert!(edges_form_connected_subgraph(&single));
    }
}
