//! Query relaxation: the set `U = {rq_1, ..., rq_a}` of graphs obtained by
//! deleting `δ` edges from the query.
//!
//! Lemma 1 rewrites the subgraph similarity probability as
//! `Pr(q ⊆sim g) = Pr(Brq_1 ∨ ... ∨ Brq_a)` where `rq_i` ranges over the
//! relaxations of `q` with exactly `δ` edges removed; both pruning rules and
//! the verification sampler operate on this set.  Following the paper (and
//! \[38\], which it borrows the relaxation procedure from) we relax by **edge
//! deletion**; relabelings are a straightforward extension and insertions never
//! apply to similarity search (footnote 4 of the paper).
//!
//! Relaxed graphs are deduplicated up to isomorphism (deleting symmetric edges
//! yields identical patterns) and isolated vertices are dropped because the
//! subgraph distance of Definition 8 counts edges only.

use crate::dfs_code::{are_isomorphic, canonical_code, CanonicalCode};
use crate::model::{EdgeId, Graph};

/// Options controlling relaxation.
#[derive(Debug, Clone, Copy)]
pub struct RelaxOptions {
    /// Number of edges to delete (the paper's `δ`).
    pub deletions: usize,
    /// Keep only relaxations whose edges form a connected subgraph.
    /// The paper keeps disconnected relaxations (a possible world just has to
    /// contain *all* components), so the default is `false`.
    pub require_connected: bool,
    /// Drop vertices left with no incident edge.
    pub drop_isolated_vertices: bool,
    /// Deduplicate relaxations up to isomorphism.
    pub dedup: bool,
    /// Hard cap on the number of generated relaxations (0 = unlimited).
    pub max_results: usize,
}

impl Default for RelaxOptions {
    fn default() -> Self {
        RelaxOptions {
            deletions: 1,
            require_connected: false,
            drop_isolated_vertices: true,
            dedup: true,
            max_results: 0,
        }
    }
}

/// Generates every graph obtained from `q` by deleting exactly
/// `options.deletions` edges, subject to the options.
pub fn delete_edge_subsets(q: &Graph, options: &RelaxOptions) -> Vec<Graph> {
    let m = q.edge_count();
    let k = options.deletions;
    if k > m {
        return Vec::new();
    }
    let all_edges: Vec<EdgeId> = q.edges().collect();
    let mut results: Vec<Graph> = Vec::new();
    let mut seen: Vec<(CanonicalCode, usize)> = Vec::new(); // (code, index into results)
    let mut subset = Vec::with_capacity(k);
    enumerate_subsets(
        &all_edges,
        k,
        0,
        &mut subset,
        &mut |deleted: &[EdgeId]| -> bool {
            let keep: Vec<EdgeId> = all_edges
                .iter()
                .copied()
                .filter(|e| !deleted.contains(e))
                .collect();
            let mut g = q.edge_subgraph(&keep);
            if options.drop_isolated_vertices {
                g = drop_isolated(&g);
            }
            if options.require_connected && !g.is_connected() {
                return true;
            }
            if options.dedup {
                let code = canonical_code(&g);
                let duplicate = seen.iter().any(|(c, idx)| {
                    c == &code && (code.exact || are_isomorphic(&results[*idx], &g))
                });
                if duplicate {
                    return true;
                }
                seen.push((code, results.len()));
            }
            results.push(g);
            options.max_results == 0 || results.len() < options.max_results
        },
    );
    results
}

/// The paper's relaxed query set `U`: all pairwise non-isomorphic graphs
/// obtained from `q` by deleting exactly `delta` edges (isolated vertices
/// dropped).  `delta = 0` returns the query itself.
pub fn relax_query(q: &Graph, delta: usize) -> Vec<Graph> {
    let options = RelaxOptions {
        deletions: delta,
        ..RelaxOptions::default()
    };
    delete_edge_subsets(q, &options)
}

/// [`relax_query`] with `delta` clamped to the query's edge count.
///
/// `relax_query(q, delta)` returns an *empty* set when `delta > |E(q)|`
/// (there is no way to delete more edges than exist), but Definition 8's
/// subgraph distance saturates at `|E(q)|`, so the query pipeline wants the
/// full relaxation instead.  This helper is the single place where that clamp
/// lives — both the pruning phase and the verification sampler go through it,
/// so the two can never disagree about the relaxed set again.
pub fn relax_query_clamped(q: &Graph, delta: usize) -> Vec<Graph> {
    relax_query(q, delta.min(q.edge_count()))
}

/// Removes isolated vertices, renumbering the rest densely.
pub fn drop_isolated(g: &Graph) -> Graph {
    let keep: Vec<_> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    if keep.len() == g.vertex_count() {
        return g.clone();
    }
    g.induced_subgraph(&keep).0
}

/// Enumerates all `k`-subsets of `items`, invoking `f` on each; `f` returns
/// `false` to stop the enumeration early.
fn enumerate_subsets<T: Copy>(
    items: &[T],
    k: usize,
    start: usize,
    current: &mut Vec<T>,
    f: &mut impl FnMut(&[T]) -> bool,
) -> bool {
    if current.len() == k {
        return f(current);
    }
    let needed = k - current.len();
    if items.len() - start < needed {
        return true;
    }
    for i in start..items.len() {
        current.push(items[i]);
        let keep_going = enumerate_subsets(items, k, i + 1, current, f);
        current.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GraphBuilder;

    fn triangle_q() -> Graph {
        // Figure 1 query: triangle with vertex labels a(0), b(1), c(2).
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    #[test]
    fn figure_5_relaxation_of_the_query() {
        // Figure 5: relaxing q (triangle a-b-c) by one edge yields exactly three
        // distinct 2-edge paths rq1, rq2, rq3 (they differ by which vertex is in
        // the middle, so none are isomorphic).
        let u = relax_query(&triangle_q(), 1);
        assert_eq!(u.len(), 3);
        for rq in &u {
            assert_eq!(rq.edge_count(), 2);
            assert_eq!(rq.vertex_count(), 3);
            assert!(rq.is_connected());
        }
    }

    #[test]
    fn delta_zero_returns_query_itself() {
        let q = triangle_q();
        let u = relax_query(&q, 0);
        assert_eq!(u.len(), 1);
        assert!(crate::dfs_code::are_isomorphic(&u[0], &q));
    }

    #[test]
    fn delta_larger_than_edges_returns_nothing() {
        let q = triangle_q();
        assert!(relax_query(&q, 4).is_empty());
    }

    #[test]
    fn delta_equal_to_edges_returns_single_empty_graph() {
        let q = triangle_q();
        let u = relax_query(&q, 3);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0].edge_count(), 0);
        assert_eq!(u[0].vertex_count(), 0); // isolated vertices dropped
    }

    #[test]
    fn symmetric_deletions_are_deduplicated() {
        // Unlabelled triangle: all three single-edge deletions give isomorphic
        // 2-edge paths, so |U| = 1.
        let tri = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build();
        let u = relax_query(&tri, 1);
        assert_eq!(u.len(), 1);

        // Without dedup we get all three.
        let opts = RelaxOptions {
            deletions: 1,
            dedup: false,
            ..RelaxOptions::default()
        };
        assert_eq!(delete_edge_subsets(&tri, &opts).len(), 3);
    }

    #[test]
    fn disconnected_relaxations_are_kept_by_default() {
        // Path of 3 edges: deleting the middle edge leaves two disjoint edges.
        let p = GraphBuilder::new()
            .vertices(&[0, 1, 2, 3])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build();
        let u = relax_query(&p, 1);
        assert_eq!(u.len(), 3);
        assert!(u.iter().any(|g| !g.is_connected()));

        let opts = RelaxOptions {
            deletions: 1,
            require_connected: true,
            ..RelaxOptions::default()
        };
        let connected_only = delete_edge_subsets(&p, &opts);
        assert_eq!(connected_only.len(), 2);
        assert!(connected_only.iter().all(|g| g.is_connected()));
    }

    #[test]
    fn max_results_cap() {
        let p = GraphBuilder::new()
            .vertices(&[0, 1, 2, 3, 4])
            .edge(0, 1, 0)
            .edge(1, 2, 1)
            .edge(2, 3, 2)
            .edge(3, 4, 3)
            .build();
        let opts = RelaxOptions {
            deletions: 2,
            max_results: 3,
            ..RelaxOptions::default()
        };
        assert_eq!(delete_edge_subsets(&p, &opts).len(), 3);
    }

    #[test]
    fn drop_isolated_preserves_labels() {
        let mut g = triangle_q();
        let extra = g.add_vertex(crate::model::Label(42));
        assert_eq!(g.degree(extra), 0);
        let cleaned = drop_isolated(&g);
        assert_eq!(cleaned.vertex_count(), 3);
        assert_eq!(cleaned.edge_count(), 3);
        assert!(cleaned.vertex_labels().iter().all(|l| l.value() != 42));
    }

    #[test]
    fn subset_enumeration_counts() {
        let items: Vec<u32> = (0..5).collect();
        let mut count = 0;
        let mut cur = Vec::new();
        enumerate_subsets(&items, 3, 0, &mut cur, &mut |_s| {
            count += 1;
            true
        });
        assert_eq!(count, 10);

        // Early stop after 4 subsets.
        let mut count = 0;
        let mut cur = Vec::new();
        enumerate_subsets(&items, 2, 0, &mut cur, &mut |_s| {
            count += 1;
            count < 4
        });
        assert_eq!(count, 4);
    }
}
