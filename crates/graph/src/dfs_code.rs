//! Canonical forms for small labelled graphs.
//!
//! The feature miner and the query relaxer both need to answer "have I already
//! seen this pattern up to isomorphism?".  gSpan solves this with minimum DFS
//! codes; because every pattern this workspace ever canonicalises is tiny (a
//! PMI feature has at most `maxL` vertices, a relaxed query has at most the
//! query's vertices), we use an exact canonical form computed by brute-force
//! permutation minimisation for graphs up to [`EXACT_LIMIT`] vertices, and a
//! Weisfeiler–Lehman style invariant (marked as non-exact) beyond that.
//! Callers that require exactness (e.g. deduplication of relaxed queries) fall
//! back to a VF2 isomorphism check when the code is not exact.

use crate::model::{Graph, VertexId};
use crate::vf2::contains_subgraph;

/// Graphs with at most this many vertices get an exact canonical code.
pub const EXACT_LIMIT: usize = 8;

/// A canonical (or invariant) code for a labelled graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode {
    /// Encoded form; comparable across graphs.
    pub code: Vec<u64>,
    /// True if the code is a true canonical form (equal codes ⇔ isomorphic).
    pub exact: bool,
}

impl CanonicalCode {
    /// A compact printable digest (for logs and index files).
    pub fn digest(&self) -> u64 {
        // FNV-1a over the code words; stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &self.code {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// Computes the canonical code of `g`.
pub fn canonical_code(g: &Graph) -> CanonicalCode {
    if g.vertex_count() <= EXACT_LIMIT {
        CanonicalCode {
            code: exact_code(g),
            exact: true,
        }
    } else {
        CanonicalCode {
            code: wl_invariant(g),
            exact: false,
        }
    }
}

/// True if `g1` and `g2` are isomorphic (exact, any size).
///
/// Uses counting invariants first, then an exact code comparison for small
/// graphs, and finally a VF2 monomorphism check: for simple graphs with equal
/// vertex and edge counts, a label-preserving monomorphism is an isomorphism.
pub fn are_isomorphic(g1: &Graph, g2: &Graph) -> bool {
    if g1.vertex_count() != g2.vertex_count() || g1.edge_count() != g2.edge_count() {
        return false;
    }
    if g1.vertex_label_histogram() != g2.vertex_label_histogram() {
        return false;
    }
    if g1.edge_signature_histogram() != g2.edge_signature_histogram() {
        return false;
    }
    if g1.vertex_count() <= EXACT_LIMIT {
        return exact_code(g1) == exact_code(g2);
    }
    contains_subgraph(g1, g2)
}

/// Exact canonical encoding via permutation minimisation.
///
/// The encoding of a vertex order `π` is
/// `[n, m, label(π(0)).., for each (i,j) i<j with edge: (i, j, edge label)...]`
/// and the canonical code is the lexicographically smallest encoding over all
/// permutations consistent with a simple label/degree pre-partition (which
/// prunes most of the `n!` permutations).
fn exact_code(g: &Graph) -> Vec<u64> {
    let n = g.vertex_count();
    let mut best: Option<Vec<u64>> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    // Order vertices by (label, degree) so the first tried permutation is a
    // reasonable candidate; we still try all permutations for exactness.
    perm.sort_by_key(|&v| {
        (
            g.vertex_label(VertexId(v as u32)).0,
            g.degree(VertexId(v as u32)),
        )
    });
    permute(&mut perm, 0, g, &mut best);
    // pgs-lint: allow(panic-in-library, permute evaluates at least the identity permutation, so best is set)
    best.expect("at least one permutation is evaluated")
}

fn permute(perm: &mut Vec<usize>, k: usize, g: &Graph, best: &mut Option<Vec<u64>>) {
    let n = perm.len();
    if k == n {
        let code = encode_with_order(g, perm);
        match best {
            None => *best = Some(code),
            Some(b) => {
                if code < *b {
                    *best = Some(code);
                }
            }
        }
        return;
    }
    for i in k..n {
        perm.swap(k, i);
        // Prefix pruning: if the partial encoding is already worse than the
        // best, skip. (Cheap check: compare vertex-label prefix.)
        permute(perm, k + 1, g, best);
        perm.swap(k, i);
    }
}

fn encode_with_order(g: &Graph, order: &[usize]) -> Vec<u64> {
    let n = g.vertex_count();
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    let mut code = Vec::with_capacity(2 + n + g.edge_count() * 3);
    code.push(n as u64);
    code.push(g.edge_count() as u64);
    for &v in order {
        code.push(g.vertex_label(VertexId(v as u32)).0 as u64);
    }
    let mut edges: Vec<(u64, u64, u64)> = g
        .edge_entries()
        .map(|(_, e)| {
            let a = pos[e.u.index()] as u64;
            let b = pos[e.v.index()] as u64;
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            (a, b, e.label.0 as u64)
        })
        .collect();
    edges.sort_unstable();
    for (a, b, l) in edges {
        code.push(a);
        code.push(b);
        code.push(l);
    }
    code
}

/// 1-dimensional Weisfeiler–Lehman colour-refinement invariant (3 rounds).
/// Equal invariants do not guarantee isomorphism, hence `exact = false`.
fn wl_invariant(g: &Graph) -> Vec<u64> {
    let n = g.vertex_count();
    let mut colors: Vec<u64> = (0..n)
        .map(|v| g.vertex_label(VertexId(v as u32)).0 as u64)
        .collect();
    for _round in 0..3 {
        let mut next = Vec::with_capacity(n);
        for v in 0..n {
            let mut sig: Vec<(u64, u64)> = g
                .neighbors(VertexId(v as u32))
                .iter()
                .map(|&(w, e)| (g.edge_label(e).0 as u64, colors[w.index()]))
                .collect();
            sig.sort_unstable();
            let mut h: u64 = colors[v].wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for (el, c) in sig {
                h = h
                    .rotate_left(7)
                    .wrapping_add(el.wrapping_mul(31).wrapping_add(c));
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            next.push(h);
        }
        colors = next;
    }
    let mut sorted = colors;
    sorted.sort_unstable();
    let mut out = vec![n as u64, g.edge_count() as u64];
    out.extend(sorted);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GraphBuilder, Label};

    fn triangle(labels: [u32; 3]) -> Graph {
        GraphBuilder::new()
            .vertices(&labels)
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(0, 2, 0)
            .build()
    }

    #[test]
    fn isomorphic_graphs_share_exact_code() {
        let g1 = triangle([5, 6, 7]);
        let g2 = triangle([7, 5, 6]); // same triangle, different vertex order
        let c1 = canonical_code(&g1);
        let c2 = canonical_code(&g2);
        assert!(c1.exact && c2.exact);
        assert_eq!(c1, c2);
        assert_eq!(c1.digest(), c2.digest());
        assert!(are_isomorphic(&g1, &g2));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let tri = triangle([0, 0, 0]);
        let path = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        assert_ne!(canonical_code(&tri), canonical_code(&path));
        assert!(!are_isomorphic(&tri, &path));
    }

    #[test]
    fn label_differences_matter() {
        let a = triangle([0, 0, 1]);
        let b = triangle([0, 1, 1]);
        assert_ne!(canonical_code(&a), canonical_code(&b));
        assert!(!are_isomorphic(&a, &b));

        let e1 = GraphBuilder::new().vertices(&[0, 0]).edge(0, 1, 1).build();
        let e2 = GraphBuilder::new().vertices(&[0, 0]).edge(0, 1, 2).build();
        assert_ne!(canonical_code(&e1), canonical_code(&e2));
        assert!(!are_isomorphic(&e1, &e2));
    }

    #[test]
    fn code_distinguishes_paths_from_stars() {
        // Same degree-sum, same labels: P4 vs K1,3.
        let p4 = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build();
        let star = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(0, 2, 0)
            .edge(0, 3, 0)
            .build();
        assert_ne!(canonical_code(&p4), canonical_code(&star));
        assert!(!are_isomorphic(&p4, &star));
    }

    #[test]
    fn large_graphs_use_invariant_code() {
        let mut b = GraphBuilder::new();
        for _ in 0..12 {
            b = b.vertex(0);
        }
        for i in 0..11u32 {
            b = b.edge(i, i + 1, 0);
        }
        let g = b.build();
        let c = canonical_code(&g);
        assert!(!c.exact);
        assert_eq!(c.code[0], 12);
    }

    #[test]
    fn large_isomorphic_graphs_detected_via_vf2() {
        // Two 10-vertex cycles with labels rotated: isomorphic.
        let make = |shift: u32| {
            let mut b = GraphBuilder::new();
            for i in 0..10u32 {
                b = b.vertex((i + shift) % 2);
            }
            for i in 0..10u32 {
                b = b.edge(i, (i + 1) % 10, 0);
            }
            b.build()
        };
        let g1 = make(0);
        let g2 = make(2); // same alternating pattern
        assert!(are_isomorphic(&g1, &g2));
        let g3 = make(1); // labels swapped parity — still alternating, isomorphic by rotation
        assert!(are_isomorphic(&g1, &g3));
    }

    #[test]
    fn empty_and_single_vertex() {
        let e1 = Graph::new();
        let e2 = Graph::new();
        assert!(are_isomorphic(&e1, &e2));
        assert_eq!(canonical_code(&e1), canonical_code(&e2));
        let mut s1 = Graph::new();
        s1.add_vertex(Label(3));
        let mut s2 = Graph::new();
        s2.add_vertex(Label(4));
        assert!(!are_isomorphic(&s1, &s2));
    }
}
