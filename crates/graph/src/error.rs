//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced an out-of-range vertex.
    InvalidVertex(usize),
    /// An edge id referenced an out-of-range edge.
    InvalidEdge(usize),
    /// Attempted to add a self-loop, which the model forbids.
    SelfLoop(usize),
    /// Attempted to add a duplicate (parallel) edge between the same endpoints.
    DuplicateEdge(usize, usize),
    /// A parse error while reading the text serialization format.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human readable description of what went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidVertex(v) => write!(f, "invalid vertex id {v}"),
            GraphError::InvalidEdge(e) => write!(f, "invalid edge id {e}"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge between vertices {u} and {v}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            GraphError::InvalidVertex(3).to_string(),
            "invalid vertex id 3"
        );
        assert_eq!(GraphError::InvalidEdge(7).to_string(), "invalid edge id 7");
        assert_eq!(
            GraphError::SelfLoop(1).to_string(),
            "self-loop on vertex 1 is not allowed"
        );
        assert_eq!(
            GraphError::DuplicateEdge(0, 2).to_string(),
            "duplicate edge between vertices 0 and 2"
        );
        let e = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 4: bad token");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GraphError::InvalidVertex(0));
    }
}
