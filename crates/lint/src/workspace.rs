//! Workspace discovery and `mod`-tree file resolution.
//!
//! `--workspace` walks the root `Cargo.toml` members list (skipping the
//! vendored shims under `vendor/`, which are API-compatibility stand-ins and
//! not ours to lint), reads each member's package name, and then resolves the
//! actual file set the compiler would see: starting from each crate root
//! (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) it follows `mod name;`
//! declarations through the `name.rs` / `name/mod.rs` convention.  Top-level
//! files under `tests/`, `benches/`, and `examples/` are their own roots.
//!
//! Resolving through the mod tree — instead of globbing `**/*.rs` — is what
//! keeps deliberately-violating lint fixtures (`crates/lint/tests/fixtures/`)
//! out of a self-run: they are not reachable from any crate root, exactly as
//! rustc never compiles them.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind};

/// How a file participates in the build — drives per-rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Reached from `src/lib.rs`: the crate's library code.
    Library,
    /// Reached from `src/main.rs` or `src/bin/*.rs`.
    Bin,
    /// A `tests/*.rs` integration-test root (or a module under one).
    Test,
    /// A `benches/*.rs` root.
    Bench,
    /// An `examples/*.rs` root.
    Example,
}

/// One source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (diagnostics print this).
    pub rel_path: PathBuf,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Package name of the owning crate (e.g. `pgs-query`).
    pub crate_name: String,
    pub kind: FileKind,
}

/// A non-fatal problem met while resolving the workspace (unresolvable `mod`,
/// unreadable file).  Reported to stderr, never silently dropped.
#[derive(Debug)]
pub struct ResolveWarning {
    pub path: PathBuf,
    pub message: String,
}

/// The resolved workspace: every file the linter will read.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub warnings: Vec<ResolveWarning>,
}

/// Walks up from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Resolves the full lintable file set of the workspace rooted at `root`.
pub fn resolve(root: &Path) -> Workspace {
    let mut ws = Workspace::default();
    let manifest = root.join("Cargo.toml");
    let manifest_text = match fs::read_to_string(&manifest) {
        Ok(t) => t,
        Err(e) => {
            ws.warnings.push(ResolveWarning {
                path: manifest,
                message: format!("cannot read workspace manifest: {e}"),
            });
            return ws;
        }
    };

    let mut member_dirs: Vec<PathBuf> = members(&manifest_text)
        .into_iter()
        .filter(|m| !m.starts_with("vendor/"))
        .map(|m| root.join(m))
        .collect();
    // The workspace root is itself a package (the `pgs` umbrella crate).
    if manifest_text.lines().any(|l| l.trim() == "[package]") {
        member_dirs.push(root.to_path_buf());
    }

    for dir in member_dirs {
        let name = match package_name(&dir.join("Cargo.toml")) {
            Some(n) => n,
            None => {
                ws.warnings.push(ResolveWarning {
                    path: dir.join("Cargo.toml"),
                    message: "member has no readable `name = \"…\"`".into(),
                });
                continue;
            }
        };
        add_crate(&mut ws, root, &dir, &name);
    }

    ws.files
        .sort_by(|a, b| a.rel_path.cmp(&b.rel_path).then(a.kind_order(b)));
    ws.files.dedup_by(|a, b| a.rel_path == b.rel_path);
    ws
}

impl SourceFile {
    fn kind_order(&self, other: &SourceFile) -> std::cmp::Ordering {
        (self.kind as u8).cmp(&(other.kind as u8))
    }
}

/// Extracts the `members = [ … ]` list from a workspace manifest.
fn members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if !in_members {
            if let Some(rest) = line.strip_prefix("members") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    in_members = true;
                    collect_quoted(rest, &mut out);
                    if rest.contains(']') {
                        in_members = false;
                    }
                }
            }
        } else {
            collect_quoted(line, &mut out);
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    out
}

fn collect_quoted(line: &str, out: &mut Vec<String>) {
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let Some(close_rel) = rest[open + 1..].find('"') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close_rel].to_string());
        rest = &rest[open + 1 + close_rel + 1..];
    }
}

/// Reads the `[package] name` out of a crate manifest.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                let mut names = Vec::new();
                collect_quoted(rest, &mut names);
                return names.into_iter().next();
            }
        }
    }
    None
}

fn add_crate(ws: &mut Workspace, root: &Path, dir: &Path, name: &str) {
    for (rel, kind) in [
        ("src/lib.rs", FileKind::Library),
        ("src/main.rs", FileKind::Bin),
    ] {
        let path = dir.join(rel);
        if path.is_file() {
            add_mod_tree(ws, root, &path, name, kind, true);
        }
    }
    for (sub, kind) in [
        ("src/bin", FileKind::Bin),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ] {
        let Ok(entries) = fs::read_dir(dir.join(sub)) else {
            continue;
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "rs").unwrap_or(false) && p.is_file())
            .collect();
        paths.sort();
        for path in paths {
            add_mod_tree(ws, root, &path, name, kind, true);
        }
    }
}

/// Adds `path` and every file its `mod` declarations reach.
fn add_mod_tree(
    ws: &mut Workspace,
    root: &Path,
    path: &Path,
    crate_name: &str,
    kind: FileKind,
    is_root_file: bool,
) {
    let rel_path = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    if ws.files.iter().any(|f| f.rel_path == rel_path) {
        return;
    }
    let src = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            ws.warnings.push(ResolveWarning {
                path: path.to_path_buf(),
                message: format!("cannot read file: {e}"),
            });
            return;
        }
    };
    ws.files.push(SourceFile {
        rel_path,
        abs_path: path.to_path_buf(),
        crate_name: crate_name.to_string(),
        kind,
    });

    // The directory children resolve in: `src/` for crate roots and
    // `foo/mod.rs`, `foo/` for a non-root file `foo.rs`.
    let file_stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let parent = path.parent().unwrap_or(Path::new("."));
    let child_dir = if is_root_file || file_stem == "mod" {
        parent.to_path_buf()
    } else {
        parent.join(file_stem)
    };

    for (child, under_cfg_test) in out_of_line_mods(&src) {
        let file_child = child_dir.join(format!("{child}.rs"));
        let dir_child = child_dir.join(&child).join("mod.rs");
        let target = if file_child.is_file() {
            file_child
        } else if dir_child.is_file() {
            dir_child
        } else {
            ws.warnings.push(ResolveWarning {
                path: path.to_path_buf(),
                message: format!(
                    "cannot resolve `mod {child};` (tried {file_child:?} and {dir_child:?})"
                ),
            });
            continue;
        };
        let child_kind = if under_cfg_test { FileKind::Test } else { kind };
        add_mod_tree(ws, root, &target, crate_name, child_kind, false);
    }
}

/// Scans a file for out-of-line module declarations (`mod name;`), returning
/// `(name, declared_under_cfg_test)` pairs.  Inline `mod name { … }` bodies
/// stay in the same file and need no resolution.
fn out_of_line_mods(src: &str) -> Vec<(String, bool)> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("mod") && i + 2 <= toks.len() {
            // Reject `mod` used as a path segment or raw identifier; a real
            // declaration is preceded by nothing, `pub`, `;`, `}`, `{`, or an
            // attribute closer.
            let prev_ok = i == 0
                || toks[i - 1].is_ident("pub")
                || toks[i - 1].is_punct(';')
                || toks[i - 1].is_punct('}')
                || toks[i - 1].is_punct('{')
                || toks[i - 1].is_punct(']')
                || toks[i - 1].is_punct(')');
            if prev_ok
                && toks[i + 1].kind == TokKind::Ident
                && i + 2 < toks.len()
                && toks[i + 2].is_punct(';')
            {
                out.push((toks[i + 1].text.clone(), preceded_by_cfg_test(toks, i)));
                i += 3;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// True when the item starting at token `i` carries a `#[cfg(test)]`-style
/// attribute (scans backwards across contiguous attributes and `pub`).
fn preceded_by_cfg_test(toks: &[crate::lexer::Tok], mut i: usize) -> bool {
    while i > 0 && toks[i - 1].is_ident("pub") {
        i -= 1;
    }
    // Walk attribute groups `#[ … ]` immediately before the item.
    while i > 0 && toks[i - 1].is_punct(']') {
        let mut depth = 0usize;
        let mut j = i - 1;
        loop {
            if toks[j].is_punct(']') {
                depth += 1;
            } else if toks[j].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || !toks[j - 1].is_punct('#') {
            return false;
        }
        let body: Vec<&str> = toks[j..i]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        if body.contains(&"cfg") && body.contains(&"test") {
            return true;
        }
        i = j - 1;
    }
    false
}

/// Returns the line ranges (inclusive) of `#[cfg(test)] mod … { … }` regions
/// in a file, so rules can exempt unit-test code embedded in library files.
pub fn cfg_test_regions(src: &str) -> Vec<(u32, u32)> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("mod") && preceded_by_cfg_test(toks, i) {
            // Find the opening brace of this mod (skip the name).
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let start_line = toks[i].line;
                let mut depth = 0usize;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end_line = toks.get(j).map(|t| t.line).unwrap_or(u32::MAX);
                out.push((start_line, end_line));
                i = j;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_multiline_lists() {
        let manifest = "[workspace]\nmembers = [\n  \"crates/a\", # comment\n  \"vendor/x\",\n]\n";
        assert_eq!(members(manifest), vec!["crates/a", "vendor/x"]);
    }

    #[test]
    fn package_name_reads_package_section_only() {
        let dir = std::env::temp_dir().join("pgs-lint-ws-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let manifest = dir.join("Cargo.toml");
        std::fs::write(
            &manifest,
            "[dependencies]\nname-like = \"1\"\n[package]\nname = \"pgs-demo\"\n",
        )
        .expect("write manifest");
        assert_eq!(package_name(&manifest).as_deref(), Some("pgs-demo"));
    }

    #[test]
    fn out_of_line_mods_skip_inline_bodies() {
        let src = "pub mod a;\nmod b { fn f() {} }\n#[cfg(test)]\nmod c;\n";
        let mods = out_of_line_mods(src);
        assert_eq!(
            mods,
            vec![("a".to_string(), false), ("c".to_string(), true)]
        );
    }

    #[test]
    fn cfg_test_region_spans_the_mod_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn more() {}\n";
        let regions = cfg_test_regions(src);
        assert_eq!(regions, vec![(3, 5)]);
    }

    #[test]
    fn live_workspace_resolves_this_crate() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let ws = resolve(&root);
        let names: Vec<_> = ws
            .files
            .iter()
            .map(|f| f.rel_path.to_string_lossy().into_owned())
            .collect();
        assert!(names.contains(&"crates/lint/src/lexer.rs".to_string()));
        assert!(names.contains(&"crates/query/src/pipeline.rs".to_string()));
        // Fixtures are unreachable from any crate root and must stay unlinted.
        assert!(!names.iter().any(|n| n.contains("tests/fixtures")));
        // Vendored shims are out of scope.
        assert!(!names.iter().any(|n| n.starts_with("vendor/")));
    }
}
