//! The rule engine: every project invariant enforced as a machine-checkable
//! diagnostic.
//!
//! Rules work on the lexed token stream ([`crate::lexer`]), so string
//! literals and comments can never produce false positives, and each rule
//! scopes itself by crate and [`FileKind`] — the same invariant has different
//! blast radii in library code, tests, and benches (DESIGN.md §15 documents
//! the rationale per rule).
//!
//! All rules are heuristic token-pattern checks, deliberately tuned to *over*
//! report inside their scope: a false positive costs one pragma with a
//! written reason; a false negative silently breaks the byte-identical answer
//! contract the server-side result cache depends on.

use crate::lexer::{Comment, Lexed, Tok, TokKind};
use crate::pragma::PragmaIndex;
use crate::workspace::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// One finding, printed as `file:line:col [rule-id] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
pub const UNSEEDED_RNG: &str = "unseeded-rng";
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";
pub const WALL_CLOCK: &str = "wall-clock-in-query-path";
pub const PANIC_IN_LIBRARY: &str = "panic-in-library";
pub const INVALID_PRAGMA: &str = "invalid-pragma";

/// Every rule id the pragma parser accepts.
pub const ALL_RULES: &[&str] = &[
    NONDETERMINISTIC_ITERATION,
    UNSEEDED_RNG,
    UNSAFE_CONFINEMENT,
    WALL_CLOCK,
    PANIC_IN_LIBRARY,
    INVALID_PRAGMA,
];

/// Crates whose query-path code must never observe hash-map iteration order:
/// they compute candidate sets, bounds, and SSP estimates that the engine
/// promises are byte-identical across runs (DESIGN.md §8/§12/§14).
const DETERMINISM_CRATES: &[&str] = &["pgs-query", "pgs-index", "pgs-probgraph"];

/// The only files allowed to contain `unsafe`, all individually audited: the
/// worker pool's task-lifetime erasure, the arena substrate, and the
/// counting-allocator test guard.
const UNSAFE_WHITELIST: &[&str] = &[
    "crates/graph/src/pool.rs",
    "crates/graph/src/arena.rs",
    "crates/bench/tests/alloc_guard.rs",
];

/// Crates exempt from the wall-clock and panic rules: the bench harness is
/// *supposed* to read clocks, and panicking on a malformed experiment setup
/// is its error model.
const BENCH_CRATES: &[&str] = &["pgs-bench"];

/// Methods that observe the internal ordering of a hash container.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// RNG constructors that pull entropy from the environment.
const ENTROPY_CTORS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// RNG constructors that take a raw seed; legal only when the seed expression
/// routes through `derive_seed`.
const SEED_CTORS: &[&str] = &["seed_from_u64", "from_seed"];

/// Everything the engine knows about one file while linting it.
pub struct FileInput<'a> {
    pub file: &'a SourceFile,
    pub lexed: &'a Lexed,
    /// Inclusive line ranges of `#[cfg(test)] mod … { … }` regions.
    pub test_regions: &'a [(u32, u32)],
    pub pragmas: &'a PragmaIndex,
}

impl<'a> FileInput<'a> {
    fn in_test_region(&self, line: u32) -> bool {
        self.file.kind == FileKind::Test
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| s <= line && line <= e)
    }

    fn path_str(&self) -> String {
        // Diagnostics always print forward slashes so output is stable across
        // platforms and directly comparable in golden tests.
        self.file.rel_path.to_string_lossy().replace('\\', "/")
    }

    fn diag(&self, tok: &Tok, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.path_str(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        }
    }
}

/// Runs every rule over one file and applies pragma suppression.
pub fn check_file(input: &FileInput) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    nondeterministic_iteration(input, &mut diags);
    unseeded_rng(input, &mut diags);
    unsafe_confinement(input, &mut diags);
    wall_clock(input, &mut diags);
    panic_in_library(input, &mut diags);

    // Pragmas suppress rule findings on their target line…
    diags.retain(|d| !input.pragmas.allows(d.rule, d.line));

    // …but a malformed pragma is itself a finding, and is not suppressible:
    // an allow without a reason must never silently allow anything.
    for bad in &input.pragmas.bad {
        diags.push(Diagnostic {
            file: input.path_str(),
            line: bad.line,
            col: bad.col,
            rule: INVALID_PRAGMA,
            message: bad.message.clone(),
        });
    }

    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

// ---------------------------------------------------------------------------
// Rule 1: nondeterministic-iteration
// ---------------------------------------------------------------------------

/// Flags iteration over `HashMap`/`HashSet` values in the determinism-critical
/// crates.  Hash iteration order varies across processes (SipHash keys) and
/// across insertions, so any answer, bound, or sample that observes it breaks
/// the byte-identical contract.  Membership-only uses are fine — and must say
/// so with a pragma.
fn nondeterministic_iteration(input: &FileInput, out: &mut Vec<Diagnostic>) {
    if input.file.kind != FileKind::Library
        || !DETERMINISM_CRATES.contains(&input.file.crate_name.as_str())
    {
        return;
    }
    let toks = &input.lexed.tokens;
    let tracked = hash_container_bindings(toks);
    if tracked.is_empty() {
        return;
    }

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && tracked.contains(t.text.as_str())
            && !input.in_test_region(t.line)
        {
            // `x.keys()` / `x.values()` / … anywhere in an expression.
            if i + 2 < toks.len()
                && toks[i + 1].is_punct('.')
                && toks[i + 2].kind == TokKind::Ident
                && HASH_ITER_METHODS.contains(&toks[i + 2].text.as_str())
                && toks.get(i + 3).map(|t| t.is_punct('(')).unwrap_or(false)
            {
                out.push(input.diag(
                    &toks[i + 2],
                    NONDETERMINISTIC_ITERATION,
                    format!(
                        "`{}.{}()` observes hash iteration order in a determinism-critical \
                         crate; iterate a sorted copy (or a BTree container), or allow with \
                         a reason if order provably cannot reach an answer",
                        t.text,
                        toks[i + 2].text
                    ),
                ));
                i += 3;
                continue;
            }
            // `for x in map` / `for x in &map` / `for x in &mut map`.
            if is_for_in_target(toks, i) {
                out.push(input.diag(
                    t,
                    NONDETERMINISTIC_ITERATION,
                    format!(
                        "`for … in {}` iterates a hash container in a determinism-critical \
                         crate; iterate a sorted copy (or a BTree container), or allow with \
                         a reason if order provably cannot reach an answer",
                        t.text
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// Collects identifiers bound (by `let` or by function parameters) to a type
/// mentioning `HashMap`/`HashSet` anywhere in this file.
///
/// Tracking is name-based and file-local — a deliberate over-approximation:
/// shadowing a tracked name with a vector still flags its iteration, and the
/// fix is a pragma or a rename.  What it cannot do is miss a straightforward
/// `let m: HashMap… ; for x in &m`.
fn hash_container_bindings(toks: &[Tok]) -> BTreeSet<&str> {
    let mut tracked: BTreeSet<&str> = BTreeSet::new();
    let mentions_hash = |ts: &[Tok]| {
        ts.iter()
            .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
    };
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            // `let [mut] name [: ty] = init ;` — if either the type or the
            // initializer mentions a hash container, track the name.
            let mut j = i + 1;
            if toks.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let stmt_end = statement_end(toks, j);
                if mentions_hash(&toks[j + 1..stmt_end]) {
                    tracked.insert(name.text.as_str());
                }
                i = stmt_end;
                continue;
            }
        } else if toks[i].is_ident("fn") {
            // Parameters: `name: …HashMap…` inside the signature parens.
            if let Some(open) = toks[i..].iter().position(|t| t.is_punct('(')) {
                let open = i + open;
                let close = matching_close(toks, open, '(', ')');
                let mut seg_start = open + 1;
                let mut depth = 0usize;
                for k in open + 1..close {
                    if toks[k].is_punct('(') || toks[k].is_punct('<') || toks[k].is_punct('[') {
                        depth += 1;
                    } else if toks[k].is_punct(')')
                        || toks[k].is_punct('>')
                        || toks[k].is_punct(']')
                    {
                        depth = depth.saturating_sub(1);
                    } else if toks[k].is_punct(',') && depth == 0 {
                        track_param(&toks[seg_start..k], &mentions_hash, &mut tracked);
                        seg_start = k + 1;
                    }
                }
                track_param(&toks[seg_start..close], &mentions_hash, &mut tracked);
                i = close;
                continue;
            }
        }
        i += 1;
    }
    tracked
}

fn track_param<'a>(
    seg: &'a [Tok],
    mentions_hash: &impl Fn(&[Tok]) -> bool,
    tracked: &mut BTreeSet<&'a str>,
) {
    let Some(colon) = seg.iter().position(|t| t.is_punct(':')) else {
        return;
    };
    if mentions_hash(&seg[colon + 1..]) {
        if let Some(name) = seg[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
        {
            tracked.insert(name.text.as_str());
        }
    }
}

/// Index just past the `;` ending the statement whose body starts at `i`
/// (depth-aware across `()`, `[]`, `{}`).
fn statement_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(';') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    toks.len()
}

/// Index of the close delimiter matching the open one at `open`.
fn matching_close(toks: &[Tok], open: usize, o: char, c: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// True when the identifier at `i` is the full target of a `for … in` loop
/// (allowing `&` / `&mut` prefixes), i.e. the loop walks the container.
fn is_for_in_target(toks: &[Tok], i: usize) -> bool {
    // Look backwards over `&`, `mut` to the `in` keyword…
    let mut j = i;
    while j > 0 && (toks[j - 1].is_punct('&') || toks[j - 1].is_ident("mut")) {
        j -= 1;
    }
    if j == 0 || !toks[j - 1].is_ident("in") {
        return false;
    }
    // …and forwards: the loop body must start right after the identifier
    // (method calls are handled by the `.iter()`-style check instead).
    toks.get(i + 1).map(|t| t.is_punct('{')).unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Rule 2: unseeded-rng
// ---------------------------------------------------------------------------

/// Flags RNG construction that does not flow from `derive_seed`.  Entropy
/// constructors are forbidden everywhere (tests included — the suite's own
/// determinism is part of the contract); raw-seed constructors are flagged in
/// library code unless `derive_seed` appears in the seed expression.
fn unseeded_rng(input: &FileInput, out: &mut Vec<Diagnostic>) {
    let toks = &input.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if ENTROPY_CTORS.contains(&t.text.as_str()) {
            out.push(input.diag(
                t,
                UNSEEDED_RNG,
                format!(
                    "`{}` draws entropy from the environment; every RNG must be seeded \
                     through `derive_seed` so answers are byte-identical across runs",
                    t.text
                ),
            ));
            continue;
        }
        if SEED_CTORS.contains(&t.text.as_str())
            && input.file.kind == FileKind::Library
            && !input.in_test_region(t.line)
        {
            // Inspect the argument list for a `derive_seed` call.
            let arg_ok = toks
                .get(i + 1)
                .map(|n| n.is_punct('('))
                .map(|has_parens| {
                    has_parens && {
                        let close = matching_close(toks, i + 1, '(', ')');
                        toks[i + 1..close].iter().any(|a| a.is_ident("derive_seed"))
                    }
                })
                .unwrap_or(false);
            if !arg_ok {
                out.push(input.diag(
                    t,
                    UNSEEDED_RNG,
                    format!(
                        "`{}` with a seed that does not route through `derive_seed`; raw \
                         seeds fork the reproducibility story — derive them, or allow \
                         with a reason",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: unsafe-confinement
// ---------------------------------------------------------------------------

/// Confines `unsafe` to the audited whitelist, and requires every whitelisted
/// block to carry a `// SAFETY:` comment above its enclosing statement.
fn unsafe_confinement(input: &FileInput, out: &mut Vec<Diagnostic>) {
    let toks = &input.lexed.tokens;
    let path = input.path_str();
    let whitelisted = UNSAFE_WHITELIST.iter().any(|w| path.ends_with(w));
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !whitelisted {
            out.push(input.diag(
                t,
                UNSAFE_CONFINEMENT,
                format!(
                    "`unsafe` outside the audited whitelist ({}); move the unsafety \
                     behind one of those modules or extend the whitelist in a reviewed \
                     change",
                    UNSAFE_WHITELIST.join(", ")
                ),
            ));
        } else if !has_safety_comment(input, toks, i) {
            out.push(
                input.diag(
                    t,
                    UNSAFE_CONFINEMENT,
                    "`unsafe` without a `// SAFETY:` comment; state the invariant that \
                 makes this sound directly above the enclosing statement"
                        .to_string(),
                ),
            );
        }
    }
}

/// Looks for a `SAFETY:` comment attached to the statement containing token
/// `i`: either trailing on a line of the statement, or in the contiguous
/// comment block immediately above the statement's first line.
fn has_safety_comment(input: &FileInput, toks: &[Tok], i: usize) -> bool {
    let unsafe_line = toks[i].line;
    // Statement start: the token after the previous `;`, `{` or `}`.
    let mut j = i;
    while j > 0 {
        let p = &toks[j - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        j -= 1;
    }
    let stmt_line = toks[j].line;

    let is_safety = |c: &Comment| c.text.contains("SAFETY:");
    // Trailing comment on any line of the statement so far.
    if input
        .lexed
        .comments
        .iter()
        .any(|c| !c.own_line && c.line >= stmt_line && c.line <= unsafe_line && is_safety(c))
    {
        return true;
    }
    // Contiguous own-line comment block ending directly above the statement.
    let mut expect = stmt_line.saturating_sub(1);
    for c in input.lexed.comments.iter().rev() {
        if !c.own_line || c.line > expect {
            continue;
        }
        if c.line != expect && c.line + newline_count(&c.text) != expect {
            break;
        }
        if is_safety(c) {
            return true;
        }
        expect = c.line.saturating_sub(1);
    }
    false
}

fn newline_count(s: &str) -> u32 {
    s.bytes().filter(|&b| b == b'\n').count() as u32
}

// ---------------------------------------------------------------------------
// Rule 4: wall-clock-in-query-path
// ---------------------------------------------------------------------------

/// Flags `Instant::now` / `SystemTime` outside the bench harness and timer
/// modules.  Wall-clock reads in the query path invite time-dependent
/// control flow (adaptive cutoffs, time-boxed sampling) that would make
/// answers depend on machine load.
fn wall_clock(input: &FileInput, out: &mut Vec<Diagnostic>) {
    if BENCH_CRATES.contains(&input.file.crate_name.as_str()) {
        return;
    }
    if input
        .file
        .rel_path
        .file_name()
        .map(|f| f == "timers.rs")
        .unwrap_or(false)
    {
        return;
    }
    let toks = &input.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push(
                input.diag(
                    t,
                    WALL_CLOCK,
                    "`SystemTime` outside the bench harness; query-path code must not \
                 observe wall-clock time"
                        .to_string(),
                ),
            );
        } else if t.is_ident("Instant")
            && toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false)
            && toks.get(i + 3).map(|t| t.is_ident("now")).unwrap_or(false)
        {
            out.push(
                input.diag(
                    t,
                    WALL_CLOCK,
                    "`Instant::now()` outside the bench harness; if this only feeds \
                 reporting (never control flow), allow with a reason saying so"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: panic-in-library
// ---------------------------------------------------------------------------

/// Flags `.unwrap()` / `.expect(…)` in non-test library code.  A panic in the
/// engine tears down whole server worker threads; fallible paths must return
/// typed errors, and genuinely infallible ones must say why via pragma.
fn panic_in_library(input: &FileInput, out: &mut Vec<Diagnostic>) {
    if input.file.kind != FileKind::Library
        || BENCH_CRATES.contains(&input.file.crate_name.as_str())
    {
        return;
    }
    let toks = &input.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false)
            && !input.in_test_region(t.line)
        {
            out.push(input.diag(
                t,
                PANIC_IN_LIBRARY,
                format!(
                    "`.{}(…)` can panic in library code; return a typed error, or allow \
                     with a reason stating why this is infallible or why panicking is \
                     the designed behavior",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::{pragma, workspace};
    use std::path::PathBuf;

    fn run(src: &str, crate_name: &str, kind: FileKind, rel: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let pragmas = pragma::index(&lexed.comments, &lexed.tokens, ALL_RULES);
        let regions = workspace::cfg_test_regions(src);
        let file = SourceFile {
            rel_path: PathBuf::from(rel),
            abs_path: PathBuf::from(rel),
            crate_name: crate_name.to_string(),
            kind,
        };
        check_file(&FileInput {
            file: &file,
            lexed: &lexed,
            test_regions: &regions,
            pragmas: &pragmas,
        })
    }

    fn lib(src: &str) -> Vec<Diagnostic> {
        run(src, "pgs-query", FileKind::Library, "crates/query/src/x.rs")
    }

    #[test]
    fn hash_iteration_is_flagged_in_determinism_crates() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, v) in &m {} }";
        let d = lib(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, NONDETERMINISTIC_ITERATION);
    }

    #[test]
    fn hash_method_iteration_is_flagged() {
        for m in ["iter", "keys", "values", "drain", "into_iter"] {
            let src = format!("fn f(m: &HashSet<u64>) {{ let v: Vec<_> = m.{m}().collect(); }}");
            let d = lib(&src);
            assert_eq!(d.len(), 1, "method {m}");
            assert_eq!(d[0].rule, NONDETERMINISTIC_ITERATION);
        }
    }

    #[test]
    fn membership_only_use_is_clean() {
        let src =
            "fn f() { let mut s: HashSet<u64> = HashSet::new(); s.insert(3); s.contains(&3); }";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn hash_iteration_outside_determinism_crates_is_clean() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, v) in &m {} }";
        let d = run(
            src,
            "pgs-datagen",
            FileKind::Library,
            "crates/datagen/src/x.rs",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn pragma_suppresses_with_reason() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n\
                   // pgs-lint: allow(nondeterministic-iteration, drained into a sort below)\n\
                   for (k, v) in m {} }";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn entropy_rng_is_flagged_even_in_tests() {
        let src = "fn f() { let r = thread_rng(); }";
        let d = run(src, "pgs-graph", FileKind::Test, "tests/x.rs");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, UNSEEDED_RNG);
    }

    #[test]
    fn derived_seed_is_clean_raw_seed_is_not() {
        let good = "fn f(s: u64) { let r = StdRng::seed_from_u64(derive_seed(&[s, 1])); }";
        assert!(lib(good).is_empty());
        let bad = "fn f() { let r = StdRng::seed_from_u64(42); }";
        let d = lib(bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, UNSEEDED_RNG);
    }

    #[test]
    fn raw_seed_in_unit_tests_is_clean() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let r = StdRng::seed_from_u64(7); }\n}";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn unsafe_outside_whitelist_is_flagged() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        let d = lib(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, UNSAFE_CONFINEMENT);
    }

    #[test]
    fn whitelisted_unsafe_needs_safety_comment() {
        let no_comment = "fn f() { let x = unsafe { g() }; }";
        let d = run(
            no_comment,
            "pgs-graph",
            FileKind::Library,
            "crates/graph/src/pool.rs",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("SAFETY"));

        let with_comment =
            "fn f() {\n// SAFETY: g has no preconditions here\nlet x = unsafe { g() }; }";
        let d = run(
            with_comment,
            "pgs-graph",
            FileKind::Library,
            "crates/graph/src/pool.rs",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn safety_comment_above_multiline_statement_counts() {
        // The unsafe sits on a continuation line; the SAFETY block is above
        // the statement, not above the unsafe line itself.
        let src = "fn f() {\n// SAFETY: lifetime erased, job completes before return\nlet t: E =\n    unsafe { transmute(x) };\n}";
        let d = run(
            src,
            "pgs-graph",
            FileKind::Library,
            "crates/graph/src/pool.rs",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn wall_clock_is_flagged_outside_bench() {
        let src = "fn f() { let t = Instant::now(); }";
        let d = lib(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, WALL_CLOCK);
        // …but not in the bench harness.
        let d = run(
            src,
            "pgs-bench",
            FileKind::Library,
            "crates/bench/src/lib.rs",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn panics_flagged_in_library_not_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let d = lib(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, PANIC_IN_LIBRARY);
        assert!(run(src, "pgs", FileKind::Test, "tests/x.rs").is_empty());
        let expect = "fn f(x: Option<u32>) -> u32 { x.expect(\"set by caller\") }";
        assert_eq!(lib(expect).len(), 1);
    }

    #[test]
    fn unwrap_or_variants_are_not_panics() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn invalid_pragma_is_reported_and_not_suppressible() {
        let src =
            "// pgs-lint: allow(panic-in-library)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let d = lib(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == INVALID_PRAGMA));
        assert!(d.iter().any(|d| d.rule == PANIC_IN_LIBRARY));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() { let s = \"unsafe thread_rng Instant::now\"; // unsafe unwrap()\n }";
        assert!(lib(src).is_empty());
    }
}
