//! A minimal Rust lexer: just enough structure for lint rules to reason about
//! *code* tokens without being fooled by the contents of string literals,
//! character literals, or comments.
//!
//! The lexer is deliberately lossy — it does not classify keywords, fold
//! multi-character operators, or validate literals — but it is exact about the
//! three things the rule engine depends on:
//!
//! 1. **Comment extraction.**  Line comments (`//`, `///`, `//!`) and nested
//!    block comments are lifted out of the token stream into a side list with
//!    positions, so pragma parsing ([`crate::pragma`]) and `// SAFETY:`
//!    detection see comment text and nothing else.
//! 2. **String opacity.**  Plain, byte, and raw strings (any `#` depth) are
//!    single [`TokKind::Str`] tokens: the word `unsafe` inside a string can
//!    never trip a rule.
//! 3. **Lifetime vs. char disambiguation.**  `'a` in `&'a str` is a
//!    [`TokKind::Lifetime`], `'a'` is a [`TokKind::Char`], so generic code
//!    does not produce phantom unbalanced quotes.

/// Classification of one code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// `'a` style lifetime (or loop label).
    Lifetime,
    /// Numeric literal, including suffixes (`1024u64`, `0x7f`, `1.5e-3`).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// A single punctuation character (`.`, `(`, `::` arrives as two `:`).
    Punct,
}

/// One code token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text.  For [`TokKind::Punct`] this is the single character; for
    /// strings it is the full literal including quotes.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Whether any non-whitespace byte has been seen on the current line.
    line_has_code: bool,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) {
        let Some(b) = self.peek() else {
            return;
        };
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_code = false;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not continuation bytes, so columns line up
            // with what editors display.
            self.col += 1;
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into code tokens and comments.
///
/// The lexer never fails: unterminated literals simply swallow the rest of
/// the file, which is the behavior that keeps rules quiet rather than noisy
/// on malformed input (rustc will reject such a file anyway).
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        line_has_code: false,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let own_line = !c.line_has_code;
                let start = c.pos;
                while let Some(nb) = c.peek() {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment {
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                    own_line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let own_line = !c.line_has_code;
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                // Block comments participate in "line has code" only through
                // what follows them; the marker flag is left untouched so a
                // trailing `/* … */ code` line still counts its code tokens.
                out.comments.push(Comment {
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                    own_line,
                });
            }
            b'"' => {
                let text = lex_plain_string(&mut c, src);
                c.line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'r' if matches!(c.peek_at(1), Some(b'"') | Some(b'#')) && is_raw_string_ahead(&c) => {
                let text = lex_raw_string(&mut c, src);
                c.line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'b' if c.peek_at(1) == Some(b'"') => {
                c.bump(); // consume `b`; the quote is lexed as a plain string
                let text = lex_plain_string(&mut c, src);
                c.line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: format!("b{text}"),
                    line,
                    col,
                });
            }
            b'b' if c.peek_at(1) == Some(b'\'') => {
                c.bump();
                let text = lex_char(&mut c, src);
                c.line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: format!("b{text}"),
                    line,
                    col,
                });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'a'`, `'\n'`).
                let tok = if is_lifetime_ahead(&c) {
                    let start = c.pos;
                    c.bump(); // '
                    while c.peek().map(is_ident_continue).unwrap_or(false) {
                        c.bump();
                    }
                    Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                    }
                } else {
                    Tok {
                        kind: TokKind::Char,
                        text: lex_char(&mut c, src),
                        line,
                        col,
                    }
                };
                c.line_has_code = true;
                out.tokens.push(tok);
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().map(is_ident_continue).unwrap_or(false) {
                    c.bump();
                }
                c.line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = c.pos;
                c.bump();
                while let Some(nb) = c.peek() {
                    if nb.is_ascii_alphanumeric() || nb == b'_' {
                        c.bump();
                    } else if nb == b'.'
                        && c.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
                    {
                        // `1.5` continues the number; `0..n` does not.
                        c.bump();
                    } else {
                        break;
                    }
                }
                c.line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Number,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
            _ => {
                c.bump();
                c.line_has_code = true;
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// True when the cursor (sitting on `r`) starts a raw string like `r"…"` or
/// `r##"…"##` rather than a raw identifier (`r#ident`).
fn is_raw_string_ahead(c: &Cursor) -> bool {
    let mut off = 1;
    while c.peek_at(off) == Some(b'#') {
        off += 1;
    }
    c.peek_at(off) == Some(b'"')
}

fn lex_plain_string(c: &mut Cursor, src: &str) -> String {
    let start = c.pos;
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
    src[start..c.pos].to_string()
}

fn lex_raw_string(c: &mut Cursor, src: &str) -> String {
    let start = c.pos;
    c.bump(); // r
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    c.bump(); // opening quote
    'outer: while let Some(b) = c.peek() {
        c.bump();
        if b == b'"' {
            for i in 0..hashes {
                if c.peek_at(i) != Some(b'#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                c.bump();
            }
            break;
        }
    }
    src[start..c.pos].to_string()
}

fn lex_char(c: &mut Cursor, src: &str) -> String {
    let start = c.pos;
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'\'' => {
                c.bump();
                break;
            }
            // An unterminated char literal must not swallow the file.
            b'\n' => break,
            _ => {
                c.bump();
            }
        }
    }
    src[start..c.pos].to_string()
}

fn is_lifetime_ahead(c: &Cursor) -> bool {
    // `'` followed by an identifier is a lifetime unless the identifier is a
    // single character immediately closed by another `'` (a char literal).
    match c.peek_at(1) {
        Some(b) if is_ident_start(b) => {
            let mut off = 2;
            while c.peek_at(off).map(is_ident_continue).unwrap_or(false) {
                off += 1;
            }
            c.peek_at(off) != Some(b'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // unsafe in a line comment
            /* unsafe in a /* nested */ block */
            let s = "unsafe { thread_rng() }";
            let r = r#"unsafe "quoted" raw"#;
            let b = b"unsafe bytes";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unsafe" || i == "thread_rng"));
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unsafe in a line comment"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let a = '\''; let b = '\\'; let c = '\n'; let d = b'\0';";
        let lexed = lex(src);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec![r"'\''", r"'\\'", r"'\n'", r"b'\0'"]);
    }

    #[test]
    fn positions_are_one_based() {
        let src = "ab\n  cd";
        let lexed = lex(src);
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn own_line_detection() {
        let src = "let x = 1; // trailing\n// leading\nlet y = 2;";
        let lexed = lex(src);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let src = "let r#mod = 1;";
        let lexed = lex(src);
        // `r` + `#` + `mod` arrive as separate tokens; what matters is that
        // no string literal is hallucinated.
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Str));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..10 { let f = 1.5e-3; }";
        let lexed = lex(src);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e", "3"]);
    }
}
