//! # pgs-lint — workspace-native static analysis
//!
//! Enforces the determinism & safety contract the engine's correctness rests
//! on (DESIGN.md §8/§12/§14/§15): byte-identical answers across thread
//! counts, shard counts, and database insertion order.  That contract is what
//! makes a server-side query-result cache *exact* rather than approximate —
//! and it is exactly the kind of property a test matrix can miss one
//! violation of.  `pgs-lint` turns the conventions into machine-checkable
//! diagnostics:
//!
//! | rule id | invariant |
//! |---|---|
//! | `nondeterministic-iteration` | no hash-order iteration in query/index/probgraph code |
//! | `unseeded-rng` | all randomness flows through `derive_seed` |
//! | `unsafe-confinement` | `unsafe` only in the audited whitelist, each with `// SAFETY:` |
//! | `wall-clock-in-query-path` | no `Instant::now`/`SystemTime` outside the bench harness |
//! | `panic-in-library` | no `unwrap()`/`expect()` in non-test library code |
//! | `invalid-pragma` | every suppression carries a mandatory reason |
//!
//! Suppressions are per-line pragmas — `// pgs-lint: allow(rule-id, reason)`
//! — and the reason is not optional.  Run it as:
//!
//! ```text
//! cargo run -p pgs-lint -- --workspace [--json]
//! ```
//!
//! The crate is std-only (no dependencies, not even the vendored shims) so it
//! can never be contaminated by the code it checks, and it lints itself as
//! part of `--workspace`.

pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod workspace;

pub use rules::Diagnostic;
pub use workspace::{FileKind, SourceFile};

use std::path::{Path, PathBuf};

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Non-fatal resolution problems (unresolvable `mod`, unreadable files).
    pub warnings: Vec<String>,
    /// Number of files actually read and checked.
    pub files_checked: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints every file reachable from the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Report {
    let ws = workspace::resolve(root);
    let mut report = Report {
        warnings: ws
            .warnings
            .iter()
            .map(|w| format!("{}: {}", w.path.display(), w.message))
            .collect(),
        ..Report::default()
    };
    for file in &ws.files {
        match std::fs::read_to_string(&file.abs_path) {
            Ok(src) => {
                report.files_checked += 1;
                report.diagnostics.extend(lint_source(file, &src));
            }
            Err(e) => report
                .warnings
                .push(format!("{}: cannot read: {e}", file.abs_path.display())),
        }
    }
    sort_diagnostics(&mut report.diagnostics);
    report
}

/// Lints explicitly-listed files under an assumed identity — the strictest
/// context by default (library code of a determinism-critical crate), which
/// is what fixture tests want.
pub fn lint_paths(paths: &[PathBuf], crate_name: &str, kind: FileKind) -> Report {
    let mut report = Report::default();
    for path in paths {
        let file = SourceFile {
            rel_path: path.clone(),
            abs_path: path.clone(),
            crate_name: crate_name.to_string(),
            kind,
        };
        match std::fs::read_to_string(path) {
            Ok(src) => {
                report.files_checked += 1;
                report.diagnostics.extend(lint_source(&file, &src));
            }
            Err(e) => report
                .warnings
                .push(format!("{}: cannot read: {e}", path.display())),
        }
    }
    sort_diagnostics(&mut report.diagnostics);
    report
}

/// Lints one file's source text under the identity described by `file`.
pub fn lint_source(file: &SourceFile, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let pragmas = pragma::index(&lexed.comments, &lexed.tokens, rules::ALL_RULES);
    let test_regions = workspace::cfg_test_regions(src);
    rules::check_file(&rules::FileInput {
        file,
        lexed: &lexed,
        test_regions: &test_regions,
        pragmas: &pragmas,
    })
}

fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

/// Renders diagnostics in the canonical `file:line:col [rule-id] message`
/// form, one per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}:{}:{} [{}] {}\n",
            d.file, d.line, d.col, d.rule, d.message
        ));
    }
    out
}

/// Renders diagnostics as a JSON array (std-only, hence hand-rolled).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&d.file),
            d.line,
            d.col,
            json_str(d.rule),
            json_str(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn render_text_matches_canonical_format() {
        let d = Diagnostic {
            file: "crates/query/src/x.rs".into(),
            line: 3,
            col: 9,
            rule: rules::PANIC_IN_LIBRARY,
            message: "msg".into(),
        };
        assert_eq!(
            render_text(&[d]),
            "crates/query/src/x.rs:3:9 [panic-in-library] msg\n"
        );
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }
}
