//! `// pgs-lint: allow(rule-id, reason)` pragma parsing and attachment.
//!
//! A pragma suppresses one rule on one line:
//!
//! * written on its own line, it applies to the **next** line that contains
//!   code (consecutive pragma lines stack onto the same target);
//! * written as a trailing comment, it applies to its **own** line.
//!
//! The reason is not optional.  A pragma without a reason — or naming an
//! unknown rule — is itself a diagnostic (`invalid-pragma`), so suppressions
//! stay auditable: every allow in the tree says *why* the contract is safe to
//! relax at that point.

use crate::lexer::{Comment, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// The marker every pragma comment must contain.
pub const MARKER: &str = "pgs-lint:";

/// One successfully parsed pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub rule: String,
    pub reason: String,
    /// Line the pragma comment itself sits on.
    pub line: u32,
    pub col: u32,
    /// Line whose diagnostics it suppresses.
    pub target_line: u32,
}

/// A malformed pragma: still carries a position so the rule engine can report
/// it, plus a message explaining what is wrong.
#[derive(Debug, Clone)]
pub struct BadPragma {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// All pragmas of one file, indexed by the line they suppress.
#[derive(Debug, Default)]
pub struct PragmaIndex {
    by_target: BTreeMap<u32, Vec<Pragma>>,
    pub bad: Vec<BadPragma>,
}

impl PragmaIndex {
    /// True when `rule` is allowed on `line`.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.by_target
            .get(&line)
            .map(|ps| ps.iter().any(|p| p.rule == rule))
            .unwrap_or(false)
    }

    /// All parsed pragmas, in source order.
    pub fn iter(&self) -> impl Iterator<Item = &Pragma> {
        self.by_target.values().flatten()
    }
}

/// Extracts the pragma index of one lexed file.
///
/// `known_rules` drives unknown-rule detection; `tokens` supplies the code
/// lines that own-line pragmas attach to.
pub fn index(comments: &[Comment], tokens: &[Tok], known_rules: &[&str]) -> PragmaIndex {
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let mut out = PragmaIndex::default();
    for comment in comments {
        // A pragma must *start* the comment: strip exactly one `//` or `/*`
        // marker, then expect `pgs-lint:`.  Doc comments (`///`, `//!`) keep
        // a leading `/` or `!` after the strip, so prose *describing* the
        // pragma syntax can never accidentally declare one.
        let body = comment
            .text
            .strip_prefix("//")
            .or_else(|| comment.text.strip_prefix("/*"))
            .unwrap_or(&comment.text)
            .trim_start();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim_end_matches("*/").trim();
        match parse_allow(rest) {
            Ok((rule, reason)) => {
                if !known_rules.contains(&rule.as_str()) {
                    out.bad.push(BadPragma {
                        line: comment.line,
                        col: comment.col,
                        message: format!(
                            "pragma names unknown rule `{rule}` (known: {})",
                            known_rules.join(", ")
                        ),
                    });
                    continue;
                }
                let target_line = if comment.own_line {
                    // Attach to the next line carrying code.  Pragmas at end
                    // of file (no such line) keep their own line and simply
                    // never match anything.
                    code_lines
                        .range(comment.line + 1..)
                        .next()
                        .copied()
                        .unwrap_or(comment.line)
                } else {
                    comment.line
                };
                out.by_target.entry(target_line).or_default().push(Pragma {
                    rule,
                    reason,
                    line: comment.line,
                    col: comment.col,
                    target_line,
                });
            }
            Err(message) => out.bad.push(BadPragma {
                line: comment.line,
                col: comment.col,
                message,
            }),
        }
    }
    out
}

/// Parses `allow(rule-id, reason…)`; returns `(rule, reason)`.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let Some(inner) = rest.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(rule-id, reason)` after `{MARKER}`, found `{rest}`"
        ));
    };
    let inner = inner.trim_start();
    let Some(inner) = inner.strip_prefix('(') else {
        return Err("expected `(` after `allow`".into());
    };
    let Some(inner) = inner.strip_suffix(')') else {
        return Err("pragma is missing its closing `)`".into());
    };
    let Some((rule, reason)) = inner.split_once(',') else {
        return Err(
            "pragma has no reason — write `allow(rule-id, why this is safe)`; \
             the reason is mandatory"
                .into(),
        );
    };
    let rule = rule.trim().to_string();
    let reason = reason.trim().to_string();
    if rule.is_empty() {
        return Err("pragma has an empty rule id".into());
    }
    if reason.is_empty() {
        return Err("pragma has an empty reason — the reason is mandatory".into());
    }
    Ok((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const RULES: &[&str] = &["panic-in-library", "unseeded-rng"];

    fn idx(src: &str) -> PragmaIndex {
        let lexed = lex(src);
        index(&lexed.comments, &lexed.tokens, RULES)
    }

    #[test]
    fn own_line_pragma_targets_next_code_line() {
        let src = "\
// pgs-lint: allow(panic-in-library, lock poisoning is fatal by design)
let x = m.lock().unwrap();";
        let p = idx(src);
        assert!(p.allows("panic-in-library", 2));
        assert!(!p.allows("panic-in-library", 1));
        assert!(p.bad.is_empty());
    }

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let src =
            "let x = m.lock().unwrap(); // pgs-lint: allow(panic-in-library, poisoned = dead)";
        let p = idx(src);
        assert!(p.allows("panic-in-library", 1));
    }

    #[test]
    fn stacked_pragmas_share_a_target() {
        let src = "\
// pgs-lint: allow(panic-in-library, reason one)
// pgs-lint: allow(unseeded-rng, reason two)
let x = 1;";
        let p = idx(src);
        assert!(p.allows("panic-in-library", 3));
        assert!(p.allows("unseeded-rng", 3));
    }

    #[test]
    fn missing_reason_is_rejected() {
        let p = idx("// pgs-lint: allow(panic-in-library)\nlet x = 1;");
        assert_eq!(p.bad.len(), 1);
        assert!(p.bad[0].message.contains("reason"));
        assert!(!p.allows("panic-in-library", 2));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let p = idx("// pgs-lint: allow(panic-in-library,   )\nlet x = 1;");
        assert_eq!(p.bad.len(), 1);
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let p = idx("// pgs-lint: allow(no-such-rule, because)\nlet x = 1;");
        assert_eq!(p.bad.len(), 1);
        assert!(p.bad[0].message.contains("no-such-rule"));
    }

    #[test]
    fn pragma_inside_string_is_ignored() {
        let p = idx("let s = \"// pgs-lint: allow(panic-in-library)\";");
        assert!(p.bad.is_empty());
        assert_eq!(p.iter().count(), 0);
    }
}
