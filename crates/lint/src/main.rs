//! CLI for `pgs-lint`.
//!
//! ```text
//! pgs-lint --workspace [--root DIR] [--json]
//! pgs-lint [--assume-crate NAME] [--assume-kind KIND] [--json] FILE…
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O error.
//! Explicit files are linted under the *strictest* identity by default
//! (library code of `pgs-query`), which is what the fixture suite relies on.

use pgs_lint::{lint_paths, lint_workspace, render_json, render_text, workspace, FileKind};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pgs-lint: static analysis enforcing the determinism & safety contract

USAGE:
    pgs-lint --workspace [--root DIR] [--json]
    pgs-lint [--assume-crate NAME] [--assume-kind KIND] [--json] FILE...

OPTIONS:
    --workspace          lint every file reachable from the workspace roots
    --root DIR           workspace root (default: walk up from the cwd)
    --json               emit diagnostics as a JSON array instead of text
    --assume-crate NAME  crate identity for explicit FILEs (default: pgs-query)
    --assume-kind KIND   library|bin|test|bench|example (default: library)
    --help               print this help
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut use_workspace = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut assume_crate = String::from("pgs-query");
    let mut assume_kind = FileKind::Library;
    let mut paths: Vec<PathBuf> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => use_workspace = true,
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--assume-crate" => match args.next() {
                Some(name) => assume_crate = name,
                None => return usage_error("--assume-crate needs a crate name"),
            },
            "--assume-kind" => match args.next().as_deref() {
                Some("library") => assume_kind = FileKind::Library,
                Some("bin") => assume_kind = FileKind::Bin,
                Some("test") => assume_kind = FileKind::Test,
                Some("bench") => assume_kind = FileKind::Bench,
                Some("example") => assume_kind = FileKind::Example,
                _ => return usage_error("--assume-kind needs library|bin|test|bench|example"),
            },
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}`"));
            }
            file => paths.push(PathBuf::from(file)),
        }
    }

    let report = if use_workspace {
        if !paths.is_empty() {
            return usage_error("--workspace does not take file arguments");
        }
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("pgs-lint: cannot determine cwd: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = root.or_else(|| workspace::find_root(&cwd)) else {
            eprintln!("pgs-lint: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        };
        lint_workspace(&root)
    } else {
        if paths.is_empty() {
            return usage_error("nothing to lint: pass --workspace or FILEs");
        }
        lint_paths(&paths, &assume_crate, assume_kind)
    };

    for warning in &report.warnings {
        eprintln!("pgs-lint: warning: {warning}");
    }
    if report.files_checked == 0 {
        eprintln!("pgs-lint: no files checked");
        return ExitCode::from(2);
    }

    if json {
        print!("{}", render_json(&report.diagnostics));
    } else {
        print!("{}", render_text(&report.diagnostics));
        eprintln!(
            "pgs-lint: {} file(s) checked, {} diagnostic(s)",
            report.files_checked,
            report.diagnostics.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("pgs-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
