//! Fixture: a correctly-written pragma suppresses its diagnostic.
//! Expected: no diagnostics at all — exit code 0.

pub fn first(v: &[u32]) -> u32 {
    // pgs-lint: allow(panic-in-library, fixture demonstrates a valid suppression)
    *v.first().unwrap()
}

pub fn trailing(v: &[u32]) -> u32 {
    *v.first().unwrap() // pgs-lint: allow(panic-in-library, trailing form, also valid)
}
