//! Fixture: pragmas that fail the mandatory-reason contract.
//! Expected: [invalid-pragma] at lines 6 and 11, and because neither pragma
//! is valid, [panic-in-library] still fires at lines 7 and 12.

pub fn missing_reason(v: &[u32]) -> u32 {
    // pgs-lint: allow(panic-in-library)
    *v.first().unwrap()
}

pub fn unknown_rule(v: &[u32]) -> u32 {
    // pgs-lint: allow(no-such-rule, because the rule id has a typo)
    *v.first().unwrap()
}
