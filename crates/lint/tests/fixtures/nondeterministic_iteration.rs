//! Fixture: observes hash iteration order in a determinism-critical crate.
//! Expected: [nondeterministic-iteration] at lines 8 and 13.

use std::collections::HashMap;

pub fn order_leak(scores: &HashMap<u64, f64>) -> Vec<u64> {
    let mut out = Vec::new();
    for key in scores.keys() {
        out.push(*key);
    }
    let weights: HashMap<u64, f64> = HashMap::new();
    let mut total = 0.0;
    for (_, w) in &weights {
        total += w;
    }
    out.push(total as u64);
    out
}
