//! Fixture: a best-first top-k walk that stops on the wall clock.  Time-based
//! stopping would make the answer set depend on machine load, breaking the
//! byte-identical determinism contract the top-k path promises.
//! Expected: [wall-clock-in-query-path] at lines 9 and 13.

use std::time::Instant;

pub fn best_first_topk(upper_bounds: &[f64], k: usize) -> Vec<usize> {
    let deadline = Instant::now();
    let mut picked = Vec::new();
    for (i, _ub) in upper_bounds.iter().enumerate() {
        if picked.len() >= k || deadline.elapsed().as_millis() > 50 {
            let _lap = Instant::now();
            break;
        }
        picked.push(i);
    }
    picked
}
