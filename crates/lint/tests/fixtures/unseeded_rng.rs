//! Fixture: constructs RNGs outside the `derive_seed` tree.
//! Expected: [unseeded-rng] at lines 5 and 10.

pub fn entropy_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn raw_seed_rng() -> u64 {
    let mut rng = SmallRng::seed_from_u64(42);
    rng.next_u64()
}

pub fn derived_rng(path: &[u64]) -> u64 {
    // A seed routed through `derive_seed` is the sanctioned construction and
    // must NOT be flagged.
    let mut rng = SmallRng::seed_from_u64(derive_seed(path));
    rng.next_u64()
}
