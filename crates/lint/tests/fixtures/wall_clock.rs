//! Fixture: reads the wall clock in query-path code.
//! Expected: [wall-clock-in-query-path] at lines 7 and 12.

use std::time::Instant;

pub fn timed_query() -> u64 {
    let start = Instant::now();
    start.elapsed().as_nanos() as u64
}

pub fn stamp() -> u64 {
    let t = SystemTime::now();
    t.duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}
