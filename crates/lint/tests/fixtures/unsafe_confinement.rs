//! Fixture: `unsafe` outside the audited whitelist.
//! Expected: [unsafe-confinement] at line 5.

pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
