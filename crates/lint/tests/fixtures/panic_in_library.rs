//! Fixture: panics reachable from non-test library code.
//! Expected: [panic-in-library] at lines 5 and 9.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("fixture: deliberately panicky")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        // Inside a `#[cfg(test)]` region the rule must NOT fire.
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
