//! Golden tests for `pgs-lint`.
//!
//! Each fixture under `tests/fixtures/` deliberately violates exactly one
//! rule (plus `invalid_pragma.rs`, which violates two by design); the tests
//! pin the *exact* rule id and line of every diagnostic, so a rule drifting
//! by one line or one token is a test failure, not a silent behavior change.
//!
//! The fixtures are not reachable from any crate root, so the `--workspace`
//! self-run never sees them — which the self-clean test at the bottom
//! depends on.

use pgs_lint::{lint_paths, lint_workspace, rules, FileKind};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Lints one fixture under the strictest identity (library code of
/// `pgs-query`) and returns every `(rule, line)` pair, sorted.
fn rule_lines(name: &str) -> Vec<(String, u32)> {
    let report = lint_paths(&[fixture(name)], "pgs-query", FileKind::Library);
    assert!(
        report.warnings.is_empty(),
        "fixture {name} produced warnings: {:?}",
        report.warnings
    );
    assert_eq!(report.files_checked, 1);
    let mut out: Vec<(String, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    out.sort();
    out
}

fn expect(rule: &str, lines: &[u32]) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = lines.iter().map(|&l| (rule.to_string(), l)).collect();
    out.sort();
    out
}

#[test]
fn nondeterministic_iteration_fixture() {
    assert_eq!(
        rule_lines("nondeterministic_iteration.rs"),
        expect(rules::NONDETERMINISTIC_ITERATION, &[8, 13])
    );
}

#[test]
fn unseeded_rng_fixture() {
    assert_eq!(
        rule_lines("unseeded_rng.rs"),
        expect(rules::UNSEEDED_RNG, &[5, 10])
    );
}

#[test]
fn unsafe_confinement_fixture() {
    assert_eq!(
        rule_lines("unsafe_confinement.rs"),
        expect(rules::UNSAFE_CONFINEMENT, &[5])
    );
}

#[test]
fn wall_clock_fixture() {
    assert_eq!(
        rule_lines("wall_clock.rs"),
        expect(rules::WALL_CLOCK, &[7, 12])
    );
}

#[test]
fn topk_wall_clock_fixture() {
    // The top-k walk variant of the wall-clock rule: a load-dependent
    // deadline in the best-first loop is exactly the non-determinism the
    // rule exists to keep out of the query path.
    assert_eq!(
        rule_lines("topk_wall_clock.rs"),
        expect(rules::WALL_CLOCK, &[9, 13])
    );
}

#[test]
fn panic_in_library_fixture() {
    assert_eq!(
        rule_lines("panic_in_library.rs"),
        expect(rules::PANIC_IN_LIBRARY, &[5, 9])
    );
}

#[test]
fn invalid_pragma_fixture() {
    // A malformed pragma is itself a diagnostic AND fails to suppress the
    // diagnostic it was aimed at.
    let mut want = expect(rules::INVALID_PRAGMA, &[6, 11]);
    want.extend(expect(rules::PANIC_IN_LIBRARY, &[7, 12]));
    want.sort();
    assert_eq!(rule_lines("invalid_pragma.rs"), want);
}

#[test]
fn valid_pragmas_suppress_cleanly() {
    assert_eq!(rule_lines("suppressed_clean.rs"), Vec::new());
}

// ---------------------------------------------------------------------------
// Binary-level checks: exit codes and output formats.
// ---------------------------------------------------------------------------

fn run_bin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pgs-lint"))
        .args(args)
        .output()
        .expect("failed to spawn pgs-lint binary")
}

#[test]
fn binary_exits_nonzero_on_every_violating_fixture() {
    for (name, rule) in [
        (
            "nondeterministic_iteration.rs",
            "nondeterministic-iteration",
        ),
        ("unseeded_rng.rs", "unseeded-rng"),
        ("unsafe_confinement.rs", "unsafe-confinement"),
        ("wall_clock.rs", "wall-clock-in-query-path"),
        ("topk_wall_clock.rs", "wall-clock-in-query-path"),
        ("panic_in_library.rs", "panic-in-library"),
        ("invalid_pragma.rs", "invalid-pragma"),
    ] {
        let out = run_bin(&[fixture(name).to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {name} should exit 1; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "fixture {name} output should mention [{rule}]; got:\n{stdout}"
        );
    }
}

#[test]
fn binary_exits_zero_on_suppressed_fixture() {
    let out = run_bin(&[fixture("suppressed_clean.rs").to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty());
}

#[test]
fn binary_text_output_is_file_line_col_rule_message() {
    let path = fixture("unsafe_confinement.rs");
    let out = run_bin(&[path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().expect("one diagnostic line");
    // `<file>:5:5 [unsafe-confinement] …`
    let rest = line
        .strip_prefix(&format!("{}:5:5 [unsafe-confinement] ", path.display()))
        .unwrap_or_else(|| panic!("unexpected diagnostic shape: {line}"));
    assert!(!rest.is_empty(), "diagnostic must carry a message");
}

#[test]
fn binary_json_output_is_wellformed() {
    let out = run_bin(&["--json", fixture("panic_in_library.rs").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.trim_end().ends_with(']'));
    assert!(stdout.contains("\"rule\":\"panic-in-library\""));
    assert!(stdout.contains("\"line\":5"));
    assert!(stdout.contains("\"line\":9"));
}

#[test]
fn binary_usage_error_exits_two() {
    let out = run_bin(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

// ---------------------------------------------------------------------------
// Self-clean: the live workspace must produce zero diagnostics.
// ---------------------------------------------------------------------------

#[test]
fn live_workspace_is_clean() {
    let report = lint_workspace(&workspace_root());
    assert!(
        report.files_checked > 50,
        "workspace resolution collapsed: only {} files checked",
        report.files_checked
    );
    assert!(
        report.warnings.is_empty(),
        "workspace resolution warnings: {:#?}",
        report.warnings
    );
    assert!(
        report.is_clean(),
        "live workspace has diagnostics:\n{}",
        pgs_lint::render_text(&report.diagnostics)
    );
}

#[test]
fn binary_workspace_run_is_clean() {
    let root = workspace_root();
    let out = run_bin(&["--workspace", "--root", root.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "self-run found diagnostics:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
