//! Algorithm 2: the tightest lower bound `Lsim(q)` via quadratic-programming
//! relaxation and randomized rounding.
//!
//! Every indexed feature `f_j` that is a *super*-graph of at least one relaxed
//! query defines a set `s_j ⊆ U` (the relaxed queries contained in it) with the
//! pair weight `(LowerB(f_j), UpperB(f_j))`.  For any cover `C` of `U` the
//! value
//!
//! ```text
//! Lsim(C) = Σ_{j∈C} LowerB(f_j) − Σ_{i<j ∈ C} cross(f_i, f_j)
//! ```
//!
//! is a valid lower bound of `Pr(q ⊆sim g)` (Theorem 4 / Bonferroni), where
//! `cross` over-approximates the pairwise joint probability.  The paper uses
//! `UpperB(f_i)·UpperB(f_j)`; that product is only an upper bound of the joint
//! probability when the events are close to independent, so the default here is
//! the always-sound `min(UpperB(f_i), UpperB(f_j))` ([`CrossTermRule::SafeMin`]
//! in [`crate::prune`]) with the paper's product available behind an option.
//!
//! Finding the best cover is an integer quadratic program (Definition 11); we
//! relax the indicators to `[0, 1]`, solve the relaxation with projected
//! gradient ascent (the problem is a box-constrained concave maximisation with
//! a coverage penalty), and round with the paper's randomized scheme
//! (Theorem 5: after `2 ln |U|` rounds all elements are covered with
//! probability ≥ 1 − 1/|U|).  The final bound is the best of the rounded cover,
//! a greedy cover, and 0 — all of which are valid lower bounds.

use rand::Rng;

/// One candidate set of the `Lsim` instance.
#[derive(Debug, Clone, PartialEq)]
pub struct LsimSet {
    /// Relaxed-query indices contained in this feature (`rq_i ⊆iso f_j`).
    pub elements: Vec<usize>,
    /// `LowerB(f_j)`.
    pub lower: f64,
    /// `UpperB(f_j)`.
    pub upper: f64,
}

/// Options of the Lsim optimisation.
#[derive(Debug, Clone, Copy)]
pub struct QpOptions {
    /// Gradient-ascent iterations for the relaxed QP.
    pub iterations: usize,
    /// Gradient step size.
    pub step: f64,
    /// Coverage-constraint penalty coefficient.
    pub penalty: f64,
    /// Use the paper's product cross term instead of the safe minimum.
    pub paper_product_cross_term: bool,
}

impl Default for QpOptions {
    fn default() -> Self {
        QpOptions {
            iterations: 200,
            step: 0.08,
            penalty: 2.0,
            paper_product_cross_term: false,
        }
    }
}

/// Result of the Lsim computation.
#[derive(Debug, Clone, PartialEq)]
pub struct LsimSolution {
    /// The selected cover (set indices); empty when no cover exists.
    pub chosen: Vec<usize>,
    /// The lower bound value (0 when no cover exists).
    pub value: f64,
    /// The fractional optimum of the relaxed QP (an upper bound on the best
    /// achievable integral `Lsim`, reported for diagnostics).
    pub relaxed_value: f64,
}

/// Computes the tightest `Lsim(q)` for one candidate graph (Algorithm 2).
pub fn tightest_lsim<R: Rng + ?Sized>(
    universe_size: usize,
    sets: &[LsimSet],
    options: &QpOptions,
    rng: &mut R,
) -> LsimSolution {
    if universe_size == 0 {
        return LsimSolution {
            chosen: Vec::new(),
            value: 0.0,
            relaxed_value: 0.0,
        };
    }
    if sets.is_empty() || !is_coverable(universe_size, sets) {
        return LsimSolution {
            chosen: Vec::new(),
            value: 0.0,
            relaxed_value: 0.0,
        };
    }
    // --- continuous relaxation, solved by projected gradient ascent ---------
    let n = sets.len();
    let mut x = vec![0.5f64; n];
    let mut relaxed_value = objective(sets, &x, options);
    for _ in 0..options.iterations {
        let grad = gradient(universe_size, sets, &x, options);
        for i in 0..n {
            x[i] = (x[i] + options.step * grad[i]).clamp(0.0, 1.0);
        }
        relaxed_value = relaxed_value.max(objective(sets, &x, options));
    }

    // --- randomized rounding (Algorithm 2) -----------------------------------
    let rounds = ((2.0 * (universe_size.max(2) as f64).ln()).ceil() as usize).max(1);
    let mut best_cover: Option<Vec<usize>> = None;
    let mut picked: Vec<bool> = vec![false; n];
    for _ in 0..rounds {
        for (i, set) in sets.iter().enumerate() {
            let _ = set;
            if !picked[i] && rng.gen::<f64>() < x[i] {
                picked[i] = true;
            }
        }
        let chosen: Vec<usize> = (0..n).filter(|&i| picked[i]).collect();
        if covers(universe_size, sets, &chosen) {
            best_cover = Some(chosen);
            break;
        }
    }

    // --- fall back to / compare with a greedy cover --------------------------
    let greedy = greedy_cover(universe_size, sets);
    let mut best_value = 0.0;
    let mut best_chosen = Vec::new();
    for cover in [best_cover, greedy].into_iter().flatten() {
        let value = lsim_value(sets, &cover, options);
        if value > best_value {
            best_value = value;
            best_chosen = cover;
        }
    }
    LsimSolution {
        chosen: best_chosen,
        value: best_value,
        relaxed_value,
    }
}

/// The Lsim value of a specific cover: `Σ lower − Σ_{i<j} cross` clamped at 0.
pub fn lsim_value(sets: &[LsimSet], chosen: &[usize], options: &QpOptions) -> f64 {
    let mut total = 0.0;
    for &i in chosen {
        total += sets[i].lower;
    }
    for (a, &i) in chosen.iter().enumerate() {
        for &j in chosen.iter().skip(a + 1) {
            total -= cross_term(&sets[i], &sets[j], options);
        }
    }
    total.max(0.0)
}

fn cross_term(a: &LsimSet, b: &LsimSet, options: &QpOptions) -> f64 {
    if options.paper_product_cross_term {
        a.upper * b.upper
    } else {
        a.upper.min(b.upper)
    }
}

fn objective(sets: &[LsimSet], x: &[f64], options: &QpOptions) -> f64 {
    let mut total = 0.0;
    for (i, s) in sets.iter().enumerate() {
        total += x[i] * s.lower;
    }
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            total -= x[i] * x[j] * cross_term(&sets[i], &sets[j], options);
        }
    }
    total
}

/// Gradient of the penalised objective
/// `Σ x_i lower_i − Σ_{i<j} x_i x_j cross_ij − penalty · Σ_e max(0, 1 − Σ_{s∋e} x_s)`.
fn gradient(universe_size: usize, sets: &[LsimSet], x: &[f64], options: &QpOptions) -> Vec<f64> {
    let n = sets.len();
    let mut grad = vec![0.0; n];
    for i in 0..n {
        grad[i] += sets[i].lower;
        for j in 0..n {
            if j != i {
                grad[i] -= x[j] * cross_term(&sets[i], &sets[j], options);
            }
        }
    }
    // Coverage penalty: push up the variables of uncovered elements.
    for e in 0..universe_size {
        let coverage: f64 = sets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.elements.contains(&e))
            .map(|(i, _)| x[i])
            .sum();
        if coverage < 1.0 {
            for (i, s) in sets.iter().enumerate() {
                if s.elements.contains(&e) {
                    grad[i] += options.penalty * (1.0 - coverage);
                }
            }
        }
    }
    grad
}

fn is_coverable(universe_size: usize, sets: &[LsimSet]) -> bool {
    (0..universe_size).all(|e| sets.iter().any(|s| s.elements.contains(&e)))
}

fn covers(universe_size: usize, sets: &[LsimSet], chosen: &[usize]) -> bool {
    (0..universe_size).all(|e| chosen.iter().any(|&i| sets[i].elements.contains(&e)))
}

/// Greedy cover maximising `lower / newly covered` (a sensible heuristic for a
/// quality fallback; any cover is valid).
fn greedy_cover(universe_size: usize, sets: &[LsimSet]) -> Option<Vec<usize>> {
    let mut covered = vec![false; universe_size];
    let mut chosen = Vec::new();
    let mut remaining = universe_size;
    while remaining > 0 {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in sets.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let new_count = s
                .elements
                .iter()
                .filter(|&&e| e < universe_size && !covered[e])
                .count();
            if new_count == 0 {
                continue;
            }
            // Prefer high lower bound per newly covered element, penalising the
            // cross term against what is already chosen.
            let score = s.lower / new_count as f64;
            if best.map(|(_, b)| score > b).unwrap_or(true) {
                best = Some((i, score));
            }
        }
        let (i, _) = best?;
        chosen.push(i);
        for &e in &sets[i].elements {
            if e < universe_size && !covered[e] {
                covered[e] = true;
                remaining -= 1;
            }
        }
    }
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set(elements: &[usize], lower: f64, upper: f64) -> LsimSet {
        LsimSet {
            elements: elements.to_vec(),
            lower,
            upper,
        }
    }

    #[test]
    fn example_4_from_the_paper() {
        // Example 4: U = {rq1, rq2, rq3}; s1 = {rq1} with (0.28, 0.36),
        // s2 = {rq1, rq2, rq3} with (0.08, 0.15). Only s2 covers U on its own;
        // the paper assigns Lsim = 0.31 by also picking s1... With the safe
        // cross term the cover {s1, s2} scores 0.28 + 0.08 − min(0.36, 0.15) =
        // 0.21 and the cover {s2} scores 0.08; the optimiser must return a
        // valid cover with the best of those values.
        let sets = vec![set(&[0], 0.28, 0.36), set(&[0, 1, 2], 0.08, 0.15)];
        let mut rng = StdRng::seed_from_u64(1);
        let sol = tightest_lsim(3, &sets, &QpOptions::default(), &mut rng);
        assert!(covers(3, &sets, &sol.chosen), "must return a cover");
        assert!(sol.value >= 0.08 - 1e-12);
        assert!(sol.value <= 0.28 + 0.08);

        // With the paper's product cross term the combined cover scores
        // 0.28 + 0.08 − 0.36·0.15 = 0.306 ≈ the paper's 0.31.
        let paper_opts = QpOptions {
            paper_product_cross_term: true,
            ..QpOptions::default()
        };
        let sol_paper = tightest_lsim(3, &sets, &paper_opts, &mut rng);
        assert!(
            (sol_paper.value - 0.306).abs() < 0.02,
            "paper cross term should reproduce Example 4's 0.31, got {}",
            sol_paper.value
        );
    }

    #[test]
    fn uncoverable_instance_gives_zero() {
        let sets = vec![set(&[0], 0.5, 0.6)];
        let mut rng = StdRng::seed_from_u64(2);
        let sol = tightest_lsim(2, &sets, &QpOptions::default(), &mut rng);
        assert_eq!(sol.value, 0.0);
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn empty_universe_and_empty_sets() {
        let mut rng = StdRng::seed_from_u64(3);
        let sol = tightest_lsim(0, &[], &QpOptions::default(), &mut rng);
        assert_eq!(sol.value, 0.0);
        let sol = tightest_lsim(2, &[], &QpOptions::default(), &mut rng);
        assert_eq!(sol.value, 0.0);
    }

    #[test]
    fn single_strong_set_wins() {
        let sets = vec![
            set(&[0, 1], 0.9, 0.95),
            set(&[0], 0.1, 0.2),
            set(&[1], 0.1, 0.2),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        let sol = tightest_lsim(2, &sets, &QpOptions::default(), &mut rng);
        assert!(sol.value >= 0.9 - 1e-9, "value {}", sol.value);
        assert!(covers(2, &sets, &sol.chosen));
    }

    #[test]
    fn lsim_value_is_never_negative() {
        let sets = vec![
            set(&[0], 0.1, 0.9),
            set(&[1], 0.1, 0.9),
            set(&[2], 0.1, 0.9),
        ];
        let value = lsim_value(&sets, &[0, 1, 2], &QpOptions::default());
        assert!(value >= 0.0);
        // Raw sum would be 0.3 − 3·0.9 < 0; the clamp keeps the bound trivial
        // but valid.
        assert_eq!(value, 0.0);
    }

    #[test]
    fn cross_term_rules_differ() {
        let a = set(&[0], 0.3, 0.5);
        let b = set(&[1], 0.3, 0.5);
        let safe = lsim_value(&[a.clone(), b.clone()], &[0, 1], &QpOptions::default());
        let paper = lsim_value(
            &[a, b],
            &[0, 1],
            &QpOptions {
                paper_product_cross_term: true,
                ..QpOptions::default()
            },
        );
        assert!((safe - (0.6 - 0.5)).abs() < 1e-12);
        assert!((paper - (0.6 - 0.25)).abs() < 1e-12);
        assert!(paper > safe);
    }

    #[test]
    fn rounding_returns_a_feasible_cover_with_positive_value() {
        let sets = vec![
            set(&[0, 1], 0.4, 0.5),
            set(&[1, 2], 0.35, 0.45),
            set(&[2, 3], 0.3, 0.4),
            set(&[0, 3], 0.25, 0.35),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let sol = tightest_lsim(4, &sets, &QpOptions::default(), &mut rng);
        assert!(covers(4, &sets, &sol.chosen));
        assert!(sol.value > 0.0);
        assert!(sol.relaxed_value.is_finite());
        // The best pairwise cover {s0, s2} scores 0.4 + 0.3 − min(0.5, 0.4) = 0.3;
        // whatever the optimiser returns must be a valid cover and can't exceed
        // the best possible single/pairwise combination by construction.
        assert!(sol.value <= 0.4 + 0.35 + 0.3 + 0.25);
    }
}
