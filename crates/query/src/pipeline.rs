//! The full T-PS query pipeline (Section 1.2) and the experimental baselines.
//!
//! [`QueryEngine`] owns the database, the PMI and the configuration, and
//! answers threshold-based probabilistic subgraph similarity queries in the
//! paper's three phases, recording per-phase statistics (candidate counts and
//! wall-clock time) so that the benchmark harness can regenerate Figures 9–13.
//!
//! The pruning variants of Section 6 map onto [`PruningVariant`]:
//!
//! * `Structure` — structural pruning only, every survivor is verified;
//! * `SspBound` — probabilistic pruning with one arbitrary qualifying feature
//!   per relaxed query;
//! * `OptSspBound` — probabilistic pruning with the tightest bounds
//!   (Algorithms 1 and 2); this is the complete `PMI` algorithm.
//!
//! The `Exact` baseline ([`QueryEngine::exact_scan`]) evaluates the SSP of
//! every database graph directly.

use crate::prune::{bound_candidate, prune_candidate, CrossTermRule, PruneDecision, PruneOutcome};
use crate::structural::{structural_candidates_indexed, structural_candidates_sharded};
use crate::verify::{verify_ssp_adaptive, verify_ssp_exact, verify_ssp_with_stats, VerifyOptions};
use pgs_graph::model::Graph;
use pgs_graph::parallel::{
    derive_seed, par_map_chunked_costed, resolve_threads, CostHint, MAX_THREADS,
};
use pgs_graph::relax::relax_query_clamped;
use pgs_index::pmi::{graph_salt, Pmi, PmiBuildParams};
use pgs_index::shard::MAX_SHARDS;
use pgs_index::sindex::StructuralIndex;
use pgs_index::snapshot::SnapshotError;
use pgs_prob::model::ProbabilisticGraph;
use pgs_prob::montecarlo::MonteCarloConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::Path;
use std::time::Instant;

/// Phase tags mixed into per-candidate RNG seeds so the pruning and
/// verification streams of the same `(query, graph)` pair never coincide.
const SEED_PHASE_PRUNE: u64 = 0x7072_756e_6500_0001; // "prune"
const SEED_PHASE_VERIFY: u64 = 0x7665_7269_6679_0002; // "verify"
const SEED_PHASE_EXACT_FALLBACK: u64 = 0x6578_6163_7400_9e37; // "exact"

/// Which pruning stack a query run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruningVariant {
    /// Structural pruning only (the paper's `Structure` bars).
    Structure,
    /// Probabilistic pruning with arbitrary feature picks (`SSPBound`).
    SspBound,
    /// Probabilistic pruning with the tightest bounds (`OPT-SSPBound` — the
    /// full PMI algorithm).
    #[default]
    OptSspBound,
}

/// Precision knobs of the `Exact` baseline ([`QueryEngine::exact_scan`]).
///
/// These used to be magic constants buried in the scan loop; they control how
/// faithful the "exact" answer actually is and therefore belong in the
/// configuration.  The defaults reproduce the historical behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactScanConfig {
    /// Cap on *relevant* edges (the union of embedding edges) up to which the
    /// SSP is computed by exact enumeration.  Beyond it the scan falls back to
    /// high-accuracy sampling; raising the cap trades time for exactness.
    pub exact_edge_cap: usize,
    /// Monte-Carlo accuracy of the sampling fallback.  Much tighter than the
    /// pipeline's verification sampler — the baseline is the ground truth the
    /// experiments compare against.
    pub fallback_mc: MonteCarloConfig,
}

impl Default for ExactScanConfig {
    fn default() -> Self {
        ExactScanConfig {
            exact_edge_cap: 22,
            fallback_mc: MonteCarloConfig {
                tau: 0.05,
                xi: 0.01,
                max_samples: 50_000,
            },
        }
    }
}

impl ExactScanConfig {
    /// Validates the configuration the way ε is validated: a `NaN` or
    /// non-positive `τ`/`ξ` and a zero sample cap used to flow silently into
    /// the Monte-Carlo clamp (`MonteCarloConfig::num_samples` substitutes
    /// defaults), so a misconfigured "exact" baseline would quietly answer at
    /// a different precision than requested.  [`QueryEngine::exact_scan`]
    /// rejects such configurations with a typed error instead.
    pub fn validate(&self) -> Result<(), QueryError> {
        let mc = &self.fallback_mc;
        let bad_tau = mc.tau.is_nan() || mc.tau <= 0.0;
        let bad_xi = mc.xi.is_nan() || mc.xi <= 0.0;
        if bad_tau || bad_xi || mc.max_samples == 0 {
            return Err(QueryError::InvalidExactScanConfig {
                tau: mc.tau,
                xi: mc.xi,
                max_samples: mc.max_samples,
            });
        }
        Ok(())
    }
}

/// Engine-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// PMI build parameters (features + SIP bounds).
    pub pmi: PmiBuildParams,
    /// Verification sampler options.
    pub verify: VerifyOptions,
    /// Precision of the `Exact` baseline scan.
    pub exact: ExactScanConfig,
    /// Cross-term rule of the lower bound (see [`CrossTermRule`]).
    pub cross_term: CrossTermRule,
    /// RNG seed for query-time randomness.
    pub seed: u64,
    /// Worker threads for the query path (`0` = automatic, `1` = sequential).
    ///
    /// Work is dispatched on the process-wide persistent pool
    /// (`pgs_graph::pool`); every candidate draws from its own
    /// deterministically derived RNG, so the answers are byte-identical for
    /// every value of this knob — it only changes wall-clock time.  Explicit
    /// values beyond `pgs_graph::parallel::MAX_THREADS` are rejected with
    /// [`QueryError::InvalidThreads`] (see [`EngineConfig::validate`]).
    pub threads: usize,
    /// Number of PMI shards a fresh [`QueryEngine::build`] partitions the
    /// database into (`1` = the classic unsharded index).
    ///
    /// Shard assignment hashes each graph's *content salt*, and every
    /// per-candidate computation is already salt-seeded, so the answer sets,
    /// SSP estimates and `PhaseStats` counters are byte-identical for every
    /// `(shards, threads)` combination — sharding only changes the physical
    /// grouping (per-shard segments fan out on the pool, mutations and
    /// snapshot segments stay shard-local).  Values outside
    /// `1..=`[`MAX_SHARDS`] are rejected with
    /// [`QueryError::InvalidShards`].  Engines assembled around an existing
    /// index (`from_parts` / `with_index` / `open_index`) keep the index's
    /// own shard layout.
    pub shards: usize,
}

impl EngineConfig {
    /// Validates the engine-level knobs that are not covered by the
    /// per-subsystem validators ([`QueryParams::validate`],
    /// `VerifyOptions::validate`, [`ExactScanConfig::validate`]).
    ///
    /// Today that is the thread count: `resolve_threads` clamps explicit
    /// values to `MAX_THREADS` as a last line of defence, but an engine
    /// configured with `threads = 100_000` is a caller bug (it used to
    /// attempt one hundred thousand OS threads), so the query entry points
    /// reject it with a typed error instead of silently clamping.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.threads > MAX_THREADS {
            return Err(QueryError::InvalidThreads {
                threads: self.threads,
                max: MAX_THREADS,
            });
        }
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return Err(QueryError::InvalidShards {
                shards: self.shards,
                max: MAX_SHARDS,
            });
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pmi: PmiBuildParams::default(),
            verify: VerifyOptions::default(),
            exact: ExactScanConfig::default(),
            cross_term: CrossTermRule::SafeMin,
            seed: 0xC0FFEE,
            threads: default_query_threads(),
            shards: default_shards(),
        }
    }
}

/// Default for [`EngineConfig::threads`]: the `PGS_QUERY_THREADS` environment
/// variable when set (CI uses it to run the whole test suite at a pinned
/// thread count), otherwise `0` (automatic).
pub fn default_query_threads() -> usize {
    std::env::var("PGS_QUERY_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Default for [`EngineConfig::shards`]: the `PGS_SHARDS` environment
/// variable when set to a valid count in `1..=MAX_SHARDS` (CI uses it to run
/// the whole suite sharded), otherwise `1` (the classic unsharded index).
pub fn default_shards() -> usize {
    std::env::var("PGS_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| (1..=MAX_SHARDS).contains(&s))
        .unwrap_or(1)
}

/// Per-query parameters (the user-facing knobs of a T-PS query).
#[derive(Debug, Clone, Copy)]
pub struct QueryParams {
    /// Probability threshold `ε` (0 < ε ≤ 1).
    pub epsilon: f64,
    /// Subgraph distance threshold `δ`.
    pub delta: usize,
    /// Pruning stack to use.
    pub variant: PruningVariant,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            epsilon: 0.5,
            delta: 2,
            variant: PruningVariant::OptSspBound,
        }
    }
}

impl QueryParams {
    /// Validates the parameters, rejecting any ε outside `(0, 1]` — including
    /// `NaN`.
    ///
    /// Unvalidated, these values fail *silently*: every comparison against a
    /// `NaN` threshold is false, so `ssp >= ε` never fires and the answer set
    /// is empty; ε ≤ 0 accepts every structural candidate.  Both look like
    /// plausible query results, which is why the engine refuses them with a
    /// typed error instead.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.epsilon.is_nan() || !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(QueryError::InvalidEpsilon {
                epsilon: self.epsilon,
            });
        }
        Ok(())
    }
}

/// Ceiling on the top-k answer count: the engine's internal graph ids are
/// 32-bit, so no database can ever hold more than this many answers.
pub const MAX_TOPK: usize = u32::MAX as usize;

/// Per-query parameters of a ranked (top-k) query
/// ([`QueryEngine::query_topk`]).
#[derive(Debug, Clone, Copy)]
pub struct TopkParams {
    /// Number of answers requested (`1 ..= `[`MAX_TOPK`]).
    pub k: usize,
    /// Subgraph distance threshold `δ`.
    pub delta: usize,
    /// Pruning stack to use.  `Structure` skips the probabilistic bounds, so
    /// every structural candidate is verified with a trivial upper bound of
    /// one — the best-first ordering degenerates and only the running
    /// k-th-best cut prunes.
    pub variant: PruningVariant,
}

impl Default for TopkParams {
    fn default() -> Self {
        TopkParams {
            k: 10,
            delta: 2,
            variant: PruningVariant::OptSspBound,
        }
    }
}

impl TopkParams {
    /// Validates the parameters, rejecting `k = 0` (an empty ranking by
    /// construction) and `k > `[`MAX_TOPK`] with a typed error — both are
    /// caller bugs that would otherwise look like a plausible (empty or
    /// database-sized) result.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.k == 0 || self.k > MAX_TOPK {
            return Err(QueryError::InvalidK { k: self.k });
        }
        Ok(())
    }
}

/// One entry of a ranked answer list: a database graph and its SSP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedAnswer {
    /// Index into the database.
    pub graph: usize,
    /// The graph's (estimated or exact) subgraph similarity probability.
    pub ssp: f64,
}

/// The result of one top-k query ([`QueryEngine::query_topk`]).
#[derive(Debug, Clone, Default)]
pub struct TopkResult {
    /// Up to `k` answers, best first: descending SSP, ties broken by the
    /// graphs' content salts (then database index).  Graphs with SSP = 0
    /// never appear, so the list is shorter than `k` when fewer graphs match
    /// at all.
    pub ranked: Vec<RankedAnswer>,
    /// Per-phase statistics (including the top-k telemetry counters
    /// `samples_saved`, `early_rejects` and `topk_pruned`).
    pub stats: PhaseStats,
}

/// The result of a [`QueryEngine::query_topk_batch`] run.
#[derive(Debug, Clone, Default)]
pub struct TopkBatchResult {
    /// One [`TopkResult`] per input query, in input order; each is
    /// byte-identical to what [`QueryEngine::query_topk`] would have
    /// returned for that query alone.
    pub results: Vec<TopkResult>,
    /// Field-wise sum of the per-query statistics (CPU seconds, not
    /// wall-clock — see [`BatchResult::stats`]).
    pub stats: PhaseStats,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

/// A query was rejected before any work was done.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// The probability threshold ε is outside `(0, 1]` or `NaN`.  Silently
    /// evaluating it would return an empty (ε = NaN, ε > 1) or full (ε ≤ 0)
    /// answer set.
    InvalidEpsilon {
        /// The rejected value.
        epsilon: f64,
    },
    /// The query graph has no edges.  Silently evaluating it would return the
    /// full database (every graph trivially contains the empty query).
    EmptyQuery,
    /// The `Exact` baseline's precision knobs are unusable: `τ`/`ξ` is `NaN`
    /// or non-positive, or the sample cap is zero.  Silently evaluating would
    /// let the Monte-Carlo clamp substitute defaults, so the "exact" answer
    /// would be computed at a precision the caller never asked for.
    InvalidExactScanConfig {
        /// The configured relative error `τ`.
        tau: f64,
        /// The configured failure probability `ξ`.
        xi: f64,
        /// The configured sample cap.
        max_samples: usize,
    },
    /// The verification sampler's options are unusable: the embedding cap is
    /// zero (it used to be silently clamped to one VF2 embedding per relaxed
    /// query), or `τ`/`ξ` is `NaN` or non-positive (the Monte-Carlo clamp
    /// would substitute defaults).  Either way the engine would quietly
    /// verify at a precision nobody asked for.
    InvalidVerifyOptions {
        /// The configured embedding cap.
        max_embeddings: usize,
        /// The configured relative error `τ`.
        tau: f64,
        /// The configured failure probability `ξ`.
        xi: f64,
    },
    /// `EngineConfig::threads` exceeds the worker ceiling.  Taken literally it
    /// would ask the pool for an absurd number of OS threads; clamping it
    /// silently would hide a caller bug, so the engine refuses it instead.
    InvalidThreads {
        /// The configured thread count.
        threads: usize,
        /// The ceiling (`pgs_graph::parallel::MAX_THREADS`).
        max: usize,
    },
    /// `EngineConfig::shards` is zero (no shard could own anything) or
    /// exceeds the shard ceiling.  `Pmi::build_sharded` clamps as a last line
    /// of defence, but a nonsensical shard count is a caller bug — silently
    /// clamping it would hide that the engine ignored the configuration.
    InvalidShards {
        /// The configured shard count.
        shards: usize,
        /// The ceiling (`pgs_index::shard::MAX_SHARDS`).
        max: usize,
    },
    /// The requested top-k answer count is unusable: zero (an empty ranking
    /// by construction — almost certainly a caller bug) or beyond
    /// [`MAX_TOPK`] (the engine's internal graph ids are 32-bit, so a larger
    /// `k` could never be satisfied).
    InvalidK {
        /// The rejected value.
        k: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidEpsilon { epsilon } => write!(
                f,
                "invalid probability threshold ε = {epsilon}: must be a number in (0, 1]"
            ),
            QueryError::EmptyQuery => write!(f, "the query graph has no edges"),
            QueryError::InvalidExactScanConfig {
                tau,
                xi,
                max_samples,
            } => write!(
                f,
                "invalid exact-scan configuration: τ = {tau} and ξ = {xi} must be \
                 positive numbers and the sample cap ({max_samples}) non-zero"
            ),
            QueryError::InvalidVerifyOptions {
                max_embeddings,
                tau,
                xi,
            } => write!(
                f,
                "invalid verification options: τ = {tau} and ξ = {xi} must be \
                 positive numbers and the embedding cap ({max_embeddings}) non-zero"
            ),
            QueryError::InvalidThreads { threads, max } => write!(
                f,
                "invalid thread count {threads}: must be at most {max} (0 = automatic)"
            ),
            QueryError::InvalidShards { shards, max } => write!(
                f,
                "invalid shard count {shards}: must be between 1 and {max}"
            ),
            QueryError::InvalidK { k } => write!(
                f,
                "invalid top-k answer count {k}: must be between 1 and {MAX_TOPK}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// An index snapshot does not belong to the database it was paired with
/// ([`QueryEngine::from_parts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMismatch {
    /// The index has a different number of columns than the database has
    /// graphs.
    GraphCount {
        /// Columns in the index.
        index_columns: usize,
        /// Graphs in the database.
        database_graphs: usize,
    },
    /// The content salt of a column differs from the salt of the database
    /// graph at the same position: the graph was modified, replaced or
    /// reordered since the index was built.
    GraphSalt {
        /// First mismatching position.
        position: usize,
    },
    /// The index was built with different `PmiBuildParams` than the engine
    /// configuration asks for (fingerprint over feature selection, bounds and
    /// seed; `threads` is ignored).  Accepting it would break the
    /// "answers byte-identically to an engine that built the index itself"
    /// guarantee, and a later rebuild would silently switch bound regimes.
    BuildParams {
        /// Fingerprint stored in the index.
        index_fingerprint: u64,
        /// Fingerprint of the configuration's build parameters.
        config_fingerprint: u64,
    },
}

impl fmt::Display for IndexMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexMismatch::GraphCount {
                index_columns,
                database_graphs,
            } => write!(
                f,
                "index covers {index_columns} graphs but the database holds {database_graphs}"
            ),
            IndexMismatch::GraphSalt { position } => write!(
                f,
                "index column {position} was built from different graph contents \
                 (content salt mismatch)"
            ),
            IndexMismatch::BuildParams {
                index_fingerprint,
                config_fingerprint,
            } => write!(
                f,
                "index was built with different parameters (index fingerprint \
                 {index_fingerprint:#x}, configuration fingerprint {config_fingerprint:#x})"
            ),
        }
    }
}

impl std::error::Error for IndexMismatch {}

/// Failure of [`QueryEngine::with_index`]: either the snapshot could not be
/// read, or it does not match the database.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineLoadError {
    /// Reading/decoding the snapshot failed.
    Snapshot(SnapshotError),
    /// The snapshot decoded fine but belongs to different database contents.
    Mismatch(IndexMismatch),
}

impl fmt::Display for EngineLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineLoadError::Snapshot(e) => write!(f, "{e}"),
            EngineLoadError::Mismatch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineLoadError {}

impl From<SnapshotError> for EngineLoadError {
    fn from(e: SnapshotError) -> Self {
        EngineLoadError::Snapshot(e)
    }
}

impl From<IndexMismatch> for EngineLoadError {
    fn from(e: IndexMismatch) -> Self {
        EngineLoadError::Mismatch(e)
    }
}

/// Per-phase statistics of one query run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// `|SC_q|` — graphs surviving structural pruning.
    pub structural_candidates: usize,
    /// S-Index posting entries walked while generating the structural
    /// candidates (zero for the index-free `Exact` baseline and for the
    /// vacuous `δ ≥ |E(q)|` filter).
    pub posting_entries_scanned: usize,
    /// Graphs surviving the posting-list feature-count filter, i.e. graphs
    /// that received the exact subgraph-distance check in phase 1.
    pub filter_survivors: usize,
    /// Graphs discarded by Pruning rule 1.
    pub pruned_by_upper: usize,
    /// Graphs accepted by Pruning rule 2 without verification.
    pub accepted_by_lower: usize,
    /// Graphs sent to the verification sampler.
    pub verified: usize,
    /// Candidates answered by verification's exact short-circuit (trivial δ,
    /// no embeddings, or a relevant-edge set within `exact_cutoff`) — no
    /// Monte-Carlo trials were drawn for them.
    pub exact_verifications: usize,
    /// Monte-Carlo trials drawn across all sampled verifications.
    pub samples_drawn: usize,
    /// Monte-Carlo trials the bound-adaptive stopping rule saved versus the
    /// fixed `num_samples()` budget (zero when `VerifyOptions::adaptive` is
    /// off or every sampler ran to completion).  DESIGN.md §16.
    pub samples_saved: usize,
    /// Sampled candidates the stopping rule accepted before exhausting the
    /// budget (their confidence interval rose entirely above the threshold).
    pub early_accepts: usize,
    /// Sampled candidates the stopping rule rejected before exhausting the
    /// budget (interval entirely below the threshold; includes zero-sample
    /// rejections where the union weight already caps the SSP below it).
    pub early_rejects: usize,
    /// Top-k only: candidates skipped without drawing a single sample because
    /// their phase-2 upper bound fell below the running k-th-best lower
    /// bound (always zero for threshold queries).
    pub topk_pruned: usize,
    /// Graphs surviving probabilistic pruning (accepted + to-verify); the
    /// paper's "candidate size" for Figures 10–12.
    pub probabilistic_candidates: usize,
    /// Seconds spent in structural pruning.
    pub structural_seconds: f64,
    /// Seconds spent in probabilistic pruning.
    pub probabilistic_seconds: f64,
    /// Seconds spent in verification.
    pub verification_seconds: f64,
}

impl PhaseStats {
    /// Total query processing time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.structural_seconds + self.probabilistic_seconds + self.verification_seconds
    }

    /// Adds another query's statistics onto this one (counts and seconds are
    /// summed field-wise).  Used by [`QueryEngine::query_batch`] to aggregate
    /// per-phase totals over a workload.
    pub fn accumulate(&mut self, other: &PhaseStats) {
        self.structural_candidates += other.structural_candidates;
        self.posting_entries_scanned += other.posting_entries_scanned;
        self.filter_survivors += other.filter_survivors;
        self.pruned_by_upper += other.pruned_by_upper;
        self.accepted_by_lower += other.accepted_by_lower;
        self.verified += other.verified;
        self.exact_verifications += other.exact_verifications;
        self.samples_drawn += other.samples_drawn;
        self.samples_saved += other.samples_saved;
        self.early_accepts += other.early_accepts;
        self.early_rejects += other.early_rejects;
        self.topk_pruned += other.topk_pruned;
        self.probabilistic_candidates += other.probabilistic_candidates;
        self.structural_seconds += other.structural_seconds;
        self.probabilistic_seconds += other.probabilistic_seconds;
        self.verification_seconds += other.verification_seconds;
    }
}

/// The result of one T-PS query.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Indices (into the database) of the answer graphs, ascending.
    pub answers: Vec<usize>,
    /// Per-phase statistics.
    pub stats: PhaseStats,
}

/// The result of a [`QueryEngine::query_batch`] run.
#[derive(Debug, Clone, Default)]
pub struct BatchResult {
    /// One [`QueryResult`] per input query, in input order; each is
    /// byte-identical to what [`QueryEngine::query`] would have returned for
    /// that query alone.
    pub results: Vec<QueryResult>,
    /// Field-wise sum of the per-query statistics.  The seconds fields are
    /// *CPU* seconds accumulated across workers, not wall-clock time — divide
    /// `queries` by [`BatchResult::wall_seconds`] for throughput.
    pub stats: PhaseStats,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

impl BatchResult {
    /// Queries answered per wall-clock second.
    pub fn queries_per_second(&self) -> f64 {
        self.results.len() as f64 / self.wall_seconds.max(1e-12)
    }
}

/// The query engine: database + PMI + configuration.
///
/// The per-graph content salts that seed the per-candidate RNGs live in the
/// PMI (one per column); `build`, `from_parts` and the mutators keep the
/// database and the PMI columns aligned, so there is exactly one salt list to
/// keep consistent.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    db: Vec<ProbabilisticGraph>,
    skeletons: Vec<Graph>,
    pmi: Pmi,
    config: EngineConfig,
}

/// Reusable flat scratch for the shard fan-out of phases 2 and 3: one
/// counting-sort pass groups a candidate list into per-shard sublists inside
/// two flat buffers — no per-shard `Vec`s and no fresh nested allocation per
/// grouping.  Built lazily per query (only multi-shard queries pay for it)
/// and shared by both phases.
#[derive(Debug)]
struct ShardScratch {
    /// Per shard: grouping counts, then reused as the scatter cursors.
    counts: Vec<u32>,
    /// Row boundaries: shard `s`'s sublist is
    /// `items[offsets[s]..offsets[s + 1]]`.
    offsets: Vec<u32>,
    /// The grouped candidate ids, all shards back to back.
    items: Vec<usize>,
    /// `perm[i]` is where input item `i` landed in `items` — the O(n) map
    /// from grouped-order results back to input order.
    perm: Vec<u32>,
}

impl ShardScratch {
    fn new(shard_count: usize) -> ShardScratch {
        ShardScratch {
            counts: vec![0; shard_count],
            offsets: vec![0; shard_count + 1],
            items: Vec::new(),
            perm: Vec::new(),
        }
    }

    /// The grouped candidate ids of the current grouping, shard-contiguous.
    fn grouped(&self) -> &[usize] {
        &self.items
    }

    /// Inverse of the grouping: reorders results computed over
    /// [`Self::grouped`] back into the order of the list that was grouped.
    fn ungroup<T: Copy>(&self, grouped: &[T]) -> Vec<T> {
        debug_assert_eq!(grouped.len(), self.perm.len());
        self.perm.iter().map(|&p| grouped[p as usize]).collect()
    }
}

/// Per-candidate verification verdict of the threshold path's phase 3 —
/// the decision plus the work/telemetry counters folded into `PhaseStats`.
#[derive(Debug, Clone, Copy)]
struct CandidateVerdict {
    keep: bool,
    samples: usize,
    saved: usize,
    exact: bool,
    early: Option<bool>,
}

impl QueryEngine {
    /// Builds the engine (including the PMI, partitioned into
    /// [`EngineConfig::shards`] shards) over a database.  An out-of-range
    /// shard count is clamped here and rejected with a typed error at query
    /// time (mirroring how `threads` is handled).
    pub fn build(db: Vec<ProbabilisticGraph>, config: EngineConfig) -> QueryEngine {
        let pmi = Pmi::build_sharded(&db, &config.pmi, config.shards.clamp(1, MAX_SHARDS));
        let skeletons = db.iter().map(|g| g.skeleton().clone()).collect();
        QueryEngine {
            db,
            skeletons,
            pmi,
            config,
        }
    }

    /// Assembles an engine from a database and a pre-built PMI (typically one
    /// loaded from a snapshot), *without* rebuilding the index.
    ///
    /// The PMI's per-column content salts are checked against the database
    /// (the index must have exactly one column per graph, built from the same
    /// graph contents in the same order) and the index's build parameters are
    /// checked against `config.pmi` (fingerprint; `threads` excluded).  On
    /// success, queries answer byte-identically to an engine that built the
    /// index itself.
    pub fn from_parts(
        db: Vec<ProbabilisticGraph>,
        pmi: Pmi,
        config: EngineConfig,
    ) -> Result<QueryEngine, IndexMismatch> {
        let index_fingerprint = pgs_index::snapshot::params_fingerprint(pmi.build_params());
        let config_fingerprint = pgs_index::snapshot::params_fingerprint(&config.pmi);
        if index_fingerprint != config_fingerprint {
            return Err(IndexMismatch::BuildParams {
                index_fingerprint,
                config_fingerprint,
            });
        }
        if pmi.graph_count() != db.len() {
            return Err(IndexMismatch::GraphCount {
                index_columns: pmi.graph_count(),
                database_graphs: db.len(),
            });
        }
        if let Some(position) = db
            .iter()
            .map(graph_salt)
            .zip(pmi.graph_salts())
            .position(|(a, b)| a != *b)
        {
            return Err(IndexMismatch::GraphSalt { position });
        }
        let skeletons: Vec<Graph> = db.iter().map(|g| g.skeleton().clone()).collect();
        // An index decoded from a pre-S-Index (v1) snapshot carries no
        // summaries; re-derive them from the (salt-verified) skeletons so the
        // engine invariant — the PMI always has an S-Index — holds.
        let mut pmi = pmi;
        pmi.ensure_sindex(&skeletons);
        Ok(QueryEngine {
            db,
            skeletons,
            pmi,
            config,
        })
    }

    /// Assembles an engine from a database and an index snapshot on disk
    /// (the build-once/load-many path): `Pmi::load` + [`Self::from_parts`].
    pub fn with_index(
        db: Vec<ProbabilisticGraph>,
        index_path: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<QueryEngine, EngineLoadError> {
        let pmi = Pmi::load(index_path)?;
        Ok(QueryEngine::from_parts(db, pmi, config)?)
    }

    /// Like [`Self::with_index`] but *lazy*: `Pmi::open` reads only the
    /// snapshot head (O(shards + graphs), not O(bytes)), and each shard's
    /// columns, support lists and S-Index materialize from the file on first
    /// touch.  The salt/fingerprint pairing checks run eagerly against the
    /// head, so a mismatched snapshot is still rejected up front; v1/v2
    /// snapshots fall back to the eager load.  Answers are byte-identical to
    /// the eager engine's.
    pub fn open_index(
        db: Vec<ProbabilisticGraph>,
        index_path: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<QueryEngine, EngineLoadError> {
        let pmi = Pmi::open(index_path)?;
        Ok(QueryEngine::from_parts(db, pmi, config)?)
    }

    /// Inserts a graph, incrementally appending its PMI column (bounds of the
    /// existing features — no feature re-mining, see `Pmi::append_graph`) and
    /// returns its index.
    pub fn insert_graph(&mut self, pg: ProbabilisticGraph) -> usize {
        self.pmi.append_graph(&pg);
        self.skeletons.push(pg.skeleton().clone());
        self.db.push(pg);
        self.db.len() - 1
    }

    /// Removes the graph at `index`, dropping its PMI column and shifting
    /// every later graph down by one.  Returns the removed graph, or `None`
    /// when `index` is out of range.
    pub fn remove_graph(&mut self, index: usize) -> Option<ProbabilisticGraph> {
        if index >= self.db.len() {
            return None;
        }
        self.pmi.remove_graph(index);
        self.skeletons.remove(index);
        Some(self.db.remove(index))
    }

    /// The indexed database.
    pub fn db(&self) -> &[ProbabilisticGraph] {
        &self.db
    }

    /// Consumes the engine and returns the database it owned (without cloning
    /// the graphs) — the rebuild path of `DynamicDatabase::remine` uses this
    /// to avoid a transient second copy of a large database.
    pub fn into_db(self) -> Vec<ProbabilisticGraph> {
        self.db
    }

    /// The probabilistic matrix index.
    pub fn pmi(&self) -> &Pmi {
        &self.pmi
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Answers a T-PS query: all graphs `g` with `Pr(q ⊆sim g) ≥ ε`.
    ///
    /// Rejects invalid parameters up front (see [`QueryParams::validate`]);
    /// an unchecked ε = NaN would silently return an empty answer set.
    ///
    /// All three phases fan out on up to [`EngineConfig::threads`] persistent
    /// pool workers (tiny inputs stay inline, see the `pgs_graph::parallel`
    /// cost model); every candidate draws from a deterministically derived
    /// per-candidate RNG (`derive_seed([config.seed, hash(q), phase,
    /// hash(g)])`), so the answer set is byte-identical for every thread
    /// count and for every database insertion order.
    pub fn query(&self, q: &Graph, params: &QueryParams) -> Result<QueryResult, QueryError> {
        params.validate()?;
        self.config.validate()?;
        self.config.verify.validate()?;
        if q.edge_count() == 0 {
            return Err(QueryError::EmptyQuery);
        }
        Ok(self.query_with_threads(q, params, self.config.threads))
    }

    /// Answers a batch of T-PS queries in one pool dispatch.
    ///
    /// With enough queries to saturate the workers the batch is parallelised
    /// *across* queries (each query then runs its phases sequentially, which
    /// avoids nested dispatch); with fewer queries each query runs its phases
    /// in parallel as [`Self::query`] does.  Either way the per-candidate
    /// seeding makes every [`QueryResult`] identical to a standalone
    /// [`Self::query`] call.
    pub fn query_batch(
        &self,
        queries: &[Graph],
        params: &QueryParams,
    ) -> Result<BatchResult, QueryError> {
        params.validate()?;
        self.config.validate()?;
        self.config.verify.validate()?;
        if queries.iter().any(|q| q.edge_count() == 0) {
            return Err(QueryError::EmptyQuery);
        }
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t0 = Instant::now();
        let threads = resolve_threads(self.config.threads);
        let results: Vec<QueryResult> = if queries.len() >= threads && threads > 1 {
            par_map_chunked_costed(queries, threads, CostHint::HEAVY, |_, q| {
                self.query_with_threads(q, params, 1)
            })
        } else {
            queries
                .iter()
                .map(|q| self.query_with_threads(q, params, self.config.threads))
                .collect()
        };
        let mut stats = PhaseStats::default();
        for r in &results {
            stats.accumulate(&r.stats);
        }
        Ok(BatchResult {
            results,
            stats,
            wall_seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// Answers a ranked query: the `k` database graphs with the highest
    /// `Pr(q ⊆sim g)`, best first.
    ///
    /// Candidates are visited best-first by their phase-2 upper bounds; a
    /// deterministic running k-th-best lower bound (ties at the cut broken by
    /// the graphs' content salts) prunes candidates whose upper bound cannot
    /// reach the current top `k`, and the same moving threshold drives the
    /// bound-adaptive sampler so clear losers stop after a few chunks while
    /// potential winners run their full budget (DESIGN.md §16).  The ranked
    /// list is byte-identical for every thread count, shard count and
    /// database insertion order.
    pub fn query_topk(&self, q: &Graph, params: &TopkParams) -> Result<TopkResult, QueryError> {
        params.validate()?;
        self.config.validate()?;
        self.config.verify.validate()?;
        if q.edge_count() == 0 {
            return Err(QueryError::EmptyQuery);
        }
        Ok(self.query_topk_with_threads(q, params, self.config.threads))
    }

    /// Answers a batch of ranked queries in one pool dispatch, parallelised
    /// across queries when the batch saturates the workers (mirroring
    /// [`Self::query_batch`]); every [`TopkResult`] is identical to a
    /// standalone [`Self::query_topk`] call.
    pub fn query_topk_batch(
        &self,
        queries: &[Graph],
        params: &TopkParams,
    ) -> Result<TopkBatchResult, QueryError> {
        params.validate()?;
        self.config.validate()?;
        self.config.verify.validate()?;
        if queries.iter().any(|q| q.edge_count() == 0) {
            return Err(QueryError::EmptyQuery);
        }
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t0 = Instant::now();
        let threads = resolve_threads(self.config.threads);
        let results: Vec<TopkResult> = if queries.len() >= threads && threads > 1 {
            par_map_chunked_costed(queries, threads, CostHint::HEAVY, |_, q| {
                self.query_topk_with_threads(q, params, 1)
            })
        } else {
            queries
                .iter()
                .map(|q| self.query_topk_with_threads(q, params, self.config.threads))
                .collect()
        };
        let mut stats = PhaseStats::default();
        for r in &results {
            stats.accumulate(&r.stats);
        }
        Ok(TopkBatchResult {
            results,
            stats,
            wall_seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// The best-first top-k pipeline with an explicit thread count.
    ///
    /// Phase 1 is the threshold path's structural pruning; phase 2 computes
    /// the raw `(Usim, Lsim)` bound pair per candidate (no ε to prune
    /// against) and orders candidates by descending capped upper bound, ties
    /// broken by content salt then index; phase 3 walks that order
    /// sequentially, maintaining the k best verified lower bounds — exact
    /// verdicts contribute their SSP, sampled full-budget verdicts
    /// `max(Lsim, ssp − τ)` — and skips the whole tail once the next upper
    /// bound falls below the k-th best (every per-candidate computation uses
    /// its own content-seeded RNG, so the walk order, cuts and estimates are
    /// identical for every thread count, shard count and insertion order).
    fn query_topk_with_threads(
        &self,
        q: &Graph,
        params: &TopkParams,
        threads: usize,
    ) -> TopkResult {
        let salts = self.pmi.graph_salts();
        // Trivial relaxation (δ ≥ |E(q)|): SSP = 1 for every graph, so the
        // ranking is decided purely by the deterministic tie-break.
        if params.delta >= q.edge_count() {
            let n = self.db.len();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by_key(|&gi| (salts[gi], gi));
            order.truncate(params.k);
            return TopkResult {
                ranked: order
                    .into_iter()
                    .map(|gi| RankedAnswer {
                        graph: gi,
                        ssp: 1.0,
                    })
                    .collect(),
                stats: PhaseStats {
                    structural_candidates: n,
                    accepted_by_lower: n,
                    probabilistic_candidates: n,
                    ..PhaseStats::default()
                },
            };
        }
        let query_hash = hash_query(q);
        let mut stats = PhaseStats::default();

        // Phase 1: structural pruning, identical to the threshold path.
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t0 = Instant::now();
        let shard_count = self.pmi.shard_count();
        let (structural, filter_stats) = if shard_count == 1 {
            let sindex = self
                .pmi
                .sindex()
                // pgs-lint: allow(panic-in-library, engine invariant: build/from_parts always attach an S-Index to the PMI)
                .expect("engine invariant: the PMI always carries an S-Index");
            structural_candidates_indexed(sindex, &self.skeletons, q, params.delta, threads)
        } else {
            let shards: Vec<(&StructuralIndex, &[u32])> = (0..shard_count)
                .map(|s| (self.pmi.shard_sindex(s), self.pmi.shard_members(s)))
                .collect();
            structural_candidates_sharded(&shards, &self.skeletons, q, params.delta, threads)
        };
        stats.structural_seconds = t0.elapsed().as_secs_f64();
        stats.structural_candidates = structural.len();
        stats.posting_entries_scanned = filter_stats.posting_entries_scanned;
        stats.filter_survivors = filter_stats.filter_survivors;

        // Phase 2: raw bound pairs.  Same per-candidate RNG stream as the
        // threshold path's pruning, so the bounds are bit-identical to what
        // `prune_candidate` would have computed.
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t1 = Instant::now();
        let relaxed = relax_query_clamped(q, params.delta);
        let bounds: Vec<(f64, f64)> = match params.variant {
            PruningVariant::Structure => vec![(1.0, 0.0); structural.len()],
            PruningVariant::SspBound | PruningVariant::OptSspBound => {
                let optimal = params.variant == PruningVariant::OptSspBound;
                par_map_chunked_costed(&structural, threads, CostHint::MODERATE, |_, &gi| {
                    let mut rng = self.candidate_rng(query_hash, SEED_PHASE_PRUNE, gi);
                    bound_candidate(
                        &self.pmi,
                        gi,
                        &relaxed,
                        optimal,
                        self.config.cross_term,
                        &mut rng,
                    )
                })
            }
        };
        // Best-first order: descending capped upper bound, ties broken by
        // content salt (then index, which only matters for byte-identical
        // duplicate graphs) — the salt tie-break keeps the walk, and with it
        // the k-th boundary, invariant under database shuffles.
        let mut order: Vec<usize> = (0..structural.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            let ua = bounds[a].0.min(1.0);
            let ub = bounds[b].0.min(1.0);
            ub.total_cmp(&ua)
                .then_with(|| salts[structural[a]].cmp(&salts[structural[b]]))
                .then_with(|| structural[a].cmp(&structural[b]))
        });
        stats.probabilistic_seconds = t1.elapsed().as_secs_f64();
        stats.probabilistic_candidates = structural.len();

        // Phase 3: best-first verification under the moving k-th-best cut.
        // The walk is sequential over candidates (each adaptive sampler fans
        // its chunks out on up to `threads` workers) because every decision
        // threshold depends on the verdicts before it; determinism comes for
        // free since the walk order is fixed above.
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t2 = Instant::now();
        let tau = self.config.verify.mc.tau;
        // The k best verified lower bounds so far, best first, stored as the
        // bit patterns of non-negative f64s (monotone, so no float compares
        // in the hot insert; zero canonicalised to +0.0 bits).
        let mut lowers: Vec<u64> = Vec::new();
        let mut evaluated: Vec<(usize, f64)> = Vec::new();
        for (pos, &ci) in order.iter().enumerate() {
            let gi = structural[ci];
            let upper = bounds[ci].0.min(1.0);
            let kth_lower = if lowers.len() >= params.k {
                f64::from_bits(lowers[params.k - 1])
            } else {
                0.0
            };
            if evaluated.len() >= params.k && upper < kth_lower {
                // Order is descending in the upper bound: nothing after this
                // candidate can reach the current top k either.
                stats.topk_pruned += order.len() - pos;
                break;
            }
            // The k-th-best lower bound is the sampler's rejection threshold;
            // accepts never stop early because a ranked winner needs its
            // full-budget estimate.  With the adaptive layer disabled the
            // threshold drops to zero, which no interval can fall below —
            // the sampler then always runs to completion (the fixed-budget
            // baseline the benchmark compares against).
            let stop_threshold = if self.config.verify.adaptive {
                kth_lower
            } else {
                0.0
            };
            let mut rng = self.candidate_rng(query_hash, SEED_PHASE_VERIFY, gi);
            let verdict = verify_ssp_adaptive(
                &self.db[gi],
                q,
                params.delta,
                &relaxed,
                &self.config.verify,
                stop_threshold,
                false,
                threads,
                &mut rng,
            );
            stats.verified += 1;
            stats.samples_drawn += verdict.samples_drawn;
            stats.samples_saved += verdict.budget - verdict.samples_drawn;
            stats.exact_verifications += usize::from(verdict.exact);
            if verdict.early == Some(false) {
                // The interval fell below the k-th-best lower bound: the
                // candidate cannot enter the ranking.
                stats.early_rejects += 1;
                continue;
            }
            let lower = if verdict.exact {
                verdict.ssp
            } else {
                (verdict.ssp - tau).max(bounds[ci].1)
            };
            let bits = if lower <= 0.0 { 0u64 } else { lower.to_bits() };
            let at = lowers.partition_point(|&b| b > bits);
            lowers.insert(at, bits);
            evaluated.push((gi, verdict.ssp));
        }
        // Final ranking: descending SSP, ties broken by content salt then
        // index (the satellite regression pins this against database
        // shuffles); zero-probability graphs are not answers.
        evaluated.sort_unstable_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then_with(|| salts[a.0].cmp(&salts[b.0]))
                .then_with(|| a.0.cmp(&b.0))
        });
        let ranked: Vec<RankedAnswer> = evaluated
            .into_iter()
            .filter(|&(_, ssp)| ssp > 0.0)
            .take(params.k)
            .map(|(gi, ssp)| RankedAnswer { graph: gi, ssp })
            .collect();
        stats.verification_seconds = t2.elapsed().as_secs_f64();
        TopkResult { ranked, stats }
    }

    /// The three-phase pipeline with an explicit thread count (`0` = auto).
    fn query_with_threads(&self, q: &Graph, params: &QueryParams, threads: usize) -> QueryResult {
        // Trivial relaxation: when δ ≥ |E(q)| the relaxed query set collapses
        // to the empty pattern, which every possible world contains, so
        // SSP = 1 ≥ ε for every graph.  Answer directly instead of running
        // the pruning bounds and the sampler on an empty pattern (they would
        // eventually agree, after wasted work per candidate).
        if params.delta >= q.edge_count() {
            let n = self.db.len();
            return QueryResult {
                answers: (0..n).collect(),
                stats: PhaseStats {
                    structural_candidates: n,
                    accepted_by_lower: n,
                    probabilistic_candidates: n,
                    ..PhaseStats::default()
                },
            };
        }
        let query_hash = hash_query(q);
        let mut stats = PhaseStats::default();
        // With a single pool worker the shard regroup/permute machinery of
        // phases 2 and 3 cannot improve wall-clock — everything runs
        // sequentially anyway — so those phases fall back to the direct maps
        // (byte-identical results, see below).
        let workers = resolve_threads(threads);
        // Lazily-built flat fan-out scratch, shared by the phase-2 and
        // phase-3 shard groupings of this query.
        let mut shard_scratch: Option<ShardScratch> = None;

        // Phase 1: structural pruning via the S-Index — the query summary is
        // computed once, posting-list deficit accumulation touches only
        // graphs sharing a signature with the query, and the exact check
        // reuses the cached summaries.  Unsharded the exact checks fan out
        // over filter survivors; sharded each shard's index generates and
        // checks its own members in one pool task and the global-id lists
        // merge ascending — the outputs are byte-identical either way.
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t0 = Instant::now();
        let shard_count = self.pmi.shard_count();
        let (structural, filter_stats) = if shard_count == 1 {
            let sindex = self
                .pmi
                .sindex()
                // pgs-lint: allow(panic-in-library, engine invariant: build/from_parts always attach an S-Index to the PMI)
                .expect("engine invariant: the PMI always carries an S-Index");
            structural_candidates_indexed(sindex, &self.skeletons, q, params.delta, threads)
        } else {
            let shards: Vec<(&StructuralIndex, &[u32])> = (0..shard_count)
                .map(|s| (self.pmi.shard_sindex(s), self.pmi.shard_members(s)))
                .collect();
            structural_candidates_sharded(&shards, &self.skeletons, q, params.delta, threads)
        };
        stats.structural_seconds = t0.elapsed().as_secs_f64();
        stats.structural_candidates = structural.len();
        stats.posting_entries_scanned = filter_stats.posting_entries_scanned;
        stats.filter_survivors = filter_stats.filter_survivors;

        // Phase 2: probabilistic pruning (parallel over candidates).  The
        // relaxed query set is computed exactly once and shared with the
        // verification phase below.
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t1 = Instant::now();
        let relaxed = relax_query_clamped(q, params.delta);
        let outcome = match params.variant {
            PruningVariant::Structure => PruneOutcome {
                accepted: Vec::new(),
                candidates: structural.clone(),
                pruned: Vec::new(),
            },
            PruningVariant::SspBound | PruningVariant::OptSspBound => {
                let optimal = params.variant == PruningVariant::OptSspBound;
                let prune_one = |gi: usize| {
                    let mut rng = self.candidate_rng(query_hash, SEED_PHASE_PRUNE, gi);
                    prune_candidate(
                        &self.pmi,
                        gi,
                        &relaxed,
                        params.epsilon,
                        optimal,
                        self.config.cross_term,
                        &mut rng,
                    )
                };
                // Sharded: candidates are regrouped shard-contiguously so a
                // worker's PMI column reads mostly stay within one segment,
                // but the pool still chunks per *candidate* (not per shard) —
                // an uneven shard split cannot serialize the phase.  Every
                // candidate's RNG is derived from its content salt either
                // way, so the decisions — permuted back into the merged
                // candidate order — are byte-identical.
                let decisions: Vec<PruneDecision> = if shard_count > 1 && workers > 1 {
                    let scratch =
                        shard_scratch.get_or_insert_with(|| ShardScratch::new(shard_count));
                    let active = self.group_by_shard(&structural, scratch);
                    if active.len() <= 1 {
                        // Every candidate lives in one shard: the regroup and
                        // permute-back would be pure overhead, so map directly.
                        par_map_chunked_costed(
                            &structural,
                            threads,
                            CostHint::MODERATE,
                            |_, &gi| prune_one(gi),
                        )
                    } else {
                        let scratch: &ShardScratch = scratch;
                        let grouped = par_map_chunked_costed(
                            scratch.grouped(),
                            threads,
                            CostHint::MODERATE,
                            |_, &gi| prune_one(gi),
                        );
                        scratch.ungroup(&grouped)
                    }
                } else {
                    par_map_chunked_costed(&structural, threads, CostHint::MODERATE, |_, &gi| {
                        prune_one(gi)
                    })
                };
                PruneOutcome::from_decisions(&structural, &decisions)
            }
        };
        stats.probabilistic_seconds = t1.elapsed().as_secs_f64();
        stats.pruned_by_upper = outcome.pruned.len();
        stats.accepted_by_lower = outcome.accepted.len();
        stats.probabilistic_candidates = outcome.surviving();

        // Phase 3: verification.  With more candidates than workers the
        // parallelism goes *across* candidates (each sampler runs its chunks
        // sequentially); with few surviving candidates it goes *within* each
        // candidate's sample loop instead (the chunked Karp–Luby trials).
        // Either way every candidate's trials come from the same fixed chunk
        // layout and derived seeds, so the split is purely a wall-clock
        // decision — the answers are byte-identical for every thread count.
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t2 = Instant::now();
        let mut answers = outcome.accepted.clone();
        stats.verified = outcome.candidates.len();
        let verify_one = |gi: usize, within: usize| {
            let mut rng = self.candidate_rng(query_hash, SEED_PHASE_VERIFY, gi);
            if self.config.verify.adaptive {
                // Bound-adaptive sampling (DESIGN.md §16): the stopping rule
                // checks the running Hoeffding interval against ε at the
                // deterministic chunk boundaries and stops as soon as the
                // decision is resolved.  The decision stays within the
                // (τ, ξ) band of the fixed-budget estimate.
                let verdict = verify_ssp_adaptive(
                    &self.db[gi],
                    q,
                    params.delta,
                    &relaxed,
                    &self.config.verify,
                    params.epsilon,
                    true,
                    within,
                    &mut rng,
                );
                CandidateVerdict {
                    keep: verdict.meets,
                    samples: verdict.samples_drawn,
                    saved: verdict.budget - verdict.samples_drawn,
                    exact: verdict.exact,
                    early: verdict.early,
                }
            } else {
                let verdict = verify_ssp_with_stats(
                    &self.db[gi],
                    q,
                    params.delta,
                    &relaxed,
                    &self.config.verify,
                    within,
                    &mut rng,
                );
                CandidateVerdict {
                    keep: verdict.ssp >= params.epsilon,
                    samples: verdict.samples_drawn,
                    saved: 0,
                    exact: verdict.exact,
                    early: None,
                }
            }
        };
        // The sampler's trials come from a fixed chunk layout and derived
        // seeds, so all three dispatch shapes below yield byte-identical
        // verdicts — the choice is purely a wall-clock decision.
        let verdicts: Vec<CandidateVerdict> = if shard_count > 1
            && workers > 1
            && outcome.candidates.len() >= workers
        {
            // Sharded with enough candidates: verify in shard-contiguous
            // order (segment locality) but chunked per candidate.  When a
            // single shard holds every candidate the regroup is skipped.
            let scratch = shard_scratch.get_or_insert_with(|| ShardScratch::new(shard_count));
            let active = self.group_by_shard(&outcome.candidates, scratch);
            if active.len() <= 1 {
                par_map_chunked_costed(&outcome.candidates, threads, CostHint::HEAVY, |_, &gi| {
                    verify_one(gi, 1)
                })
            } else {
                let scratch: &ShardScratch = scratch;
                let grouped = par_map_chunked_costed(
                    scratch.grouped(),
                    threads,
                    CostHint::HEAVY,
                    |_, &gi| verify_one(gi, 1),
                );
                scratch.ungroup(&grouped)
            }
        } else {
            let (across, within) = if outcome.candidates.len() >= workers {
                (workers, 1)
            } else {
                (1, workers)
            };
            par_map_chunked_costed(&outcome.candidates, across, CostHint::HEAVY, |_, &gi| {
                verify_one(gi, within)
            })
        };
        for (&gi, v) in outcome.candidates.iter().zip(&verdicts) {
            if v.keep {
                answers.push(gi);
            }
            stats.samples_drawn += v.samples;
            stats.samples_saved += v.saved;
            stats.exact_verifications += usize::from(v.exact);
            match v.early {
                Some(true) => stats.early_accepts += 1,
                Some(false) => stats.early_rejects += 1,
                None => {}
            }
        }
        stats.verification_seconds = t2.elapsed().as_secs_f64();
        answers.sort_unstable();
        QueryResult { answers, stats }
    }

    /// The RNG for one `(query, phase, candidate)` triple.  Seeded from the
    /// graph's content hash — not its database index — so shuffling the
    /// database permutes the answers without changing them.  The salt comes
    /// from the PMI column, which `build`/`from_parts`/the mutators keep
    /// aligned with the database.
    fn candidate_rng(&self, query_hash: u64, phase: u64, graph_idx: usize) -> StdRng {
        StdRng::seed_from_u64(derive_seed(&[
            self.config.seed,
            query_hash,
            phase,
            self.pmi.graph_salts()[graph_idx],
        ]))
    }

    /// Counting-sorts a global candidate list into per-shard sublists inside
    /// `scratch`'s flat buffers, preserving the input's relative order within
    /// each shard (the shard fan-out unit of phases 2 and 3).  Returns the
    /// non-empty shard ids, ascending.  No per-shard `Vec`s: one reused
    /// offsets table and one reused items buffer carry every grouping.
    fn group_by_shard(&self, list: &[usize], scratch: &mut ShardScratch) -> Vec<u32> {
        let shard_count = scratch.counts.len();
        scratch.counts.fill(0);
        for &gi in list {
            scratch.counts[self.pmi.shard_of_graph(gi)] += 1;
        }
        let mut running = 0u32;
        scratch.offsets[0] = 0;
        for s in 0..shard_count {
            running += scratch.counts[s];
            scratch.offsets[s + 1] = running;
        }
        // Fill cursors from the offsets, then scatter (stable within a shard),
        // recording each input item's grouped position for `ungroup`.
        scratch
            .counts
            .copy_from_slice(&scratch.offsets[..shard_count]);
        scratch.items.clear();
        scratch.items.resize(list.len(), 0);
        scratch.perm.clear();
        scratch.perm.reserve(list.len());
        for &gi in list {
            let s = self.pmi.shard_of_graph(gi);
            let pos = scratch.counts[s];
            scratch.items[pos as usize] = gi;
            scratch.perm.push(pos);
            scratch.counts[s] += 1;
        }
        (0..shard_count as u32)
            .filter(|&s| scratch.offsets[s as usize + 1] > scratch.offsets[s as usize])
            .collect()
    }

    /// The `Exact` baseline: evaluates the SSP of every database graph with the
    /// exact evaluator (falling back to high-accuracy sampling when the exact
    /// enumeration is too large), without any index.
    ///
    /// Like [`Self::query`], the scan runs on up to [`EngineConfig::threads`]
    /// workers and each graph's sampling fallback gets its own content-seeded
    /// RNG, so the answers do not drift with the iteration order either.
    /// Precision (the exact-enumeration edge cap and the fallback sampler's
    /// accuracy) comes from [`EngineConfig::exact`].
    pub fn exact_scan(&self, q: &Graph, params: &QueryParams) -> Result<QueryResult, QueryError> {
        params.validate()?;
        self.config.validate()?;
        self.config.exact.validate()?;
        // The sampling fallback inherits everything but the Monte-Carlo knobs
        // from the verification options, so those must be usable too.
        self.config.verify.validate()?;
        if q.edge_count() == 0 {
            return Err(QueryError::EmptyQuery);
        }
        let query_hash = hash_query(q);
        // pgs-lint: allow(wall-clock-in-query-path, phase timers feed PhaseStats reporting only, never control flow)
        let t0 = Instant::now();
        // Shared by every graph that falls back to sampling; computed once.
        let relaxed = relax_query_clamped(q, params.delta);
        let scan_one = |gi: usize, pg: &ProbabilisticGraph| match verify_ssp_exact(
            pg,
            q,
            params.delta,
            self.config.exact.exact_edge_cap,
        ) {
            Ok(v) => (v >= params.epsilon, 0, true),
            Err(_) => {
                let precise = VerifyOptions {
                    mc: self.config.exact.fallback_mc,
                    ..self.config.verify
                };
                let mut rng = self.candidate_rng(query_hash, SEED_PHASE_EXACT_FALLBACK, gi);
                let outcome =
                    verify_ssp_with_stats(pg, q, params.delta, &relaxed, &precise, 1, &mut rng);
                (
                    outcome.ssp >= params.epsilon,
                    outcome.samples_drawn,
                    outcome.exact,
                )
            }
        };
        // Sharded, the scan fans out per shard (each pool task walks its own
        // members) and the verdicts scatter back to global order; every
        // graph's fallback RNG is content-seeded, so the answers match the
        // flat scan bit for bit.
        let shard_count = self.pmi.shard_count();
        let verdicts: Vec<(bool, usize, bool)> = if shard_count > 1 {
            let members: Vec<&[u32]> = (0..shard_count)
                .map(|s| self.pmi.shard_members(s))
                .collect();
            let per_shard = par_map_chunked_costed(
                &members,
                self.config.threads,
                CostHint::HEAVY,
                |_, shard| {
                    shard
                        .iter()
                        .map(|&g| scan_one(g as usize, &self.db[g as usize]))
                        .collect::<Vec<_>>()
                },
            );
            let mut out = vec![(false, 0usize, false); self.db.len()];
            for (shard, results) in members.iter().zip(&per_shard) {
                for (&g, &r) in shard.iter().zip(results) {
                    out[g as usize] = r;
                }
            }
            out
        } else {
            par_map_chunked_costed(&self.db, self.config.threads, CostHint::HEAVY, |gi, pg| {
                scan_one(gi, pg)
            })
        };
        let mut answers: Vec<usize> = Vec::new();
        let mut samples_drawn = 0usize;
        let mut exact_verifications = 0usize;
        for (gi, &(keep, samples, exact)) in verdicts.iter().enumerate() {
            if keep {
                answers.push(gi);
            }
            samples_drawn += samples;
            exact_verifications += usize::from(exact);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        Ok(QueryResult {
            answers,
            stats: PhaseStats {
                structural_candidates: self.db.len(),
                probabilistic_candidates: self.db.len(),
                verified: self.db.len(),
                exact_verifications,
                samples_drawn,
                // The scan does no pruning: both pruning timers are exactly
                // zero by definition, and every graph counts as a candidate.
                structural_seconds: 0.0,
                probabilistic_seconds: 0.0,
                verification_seconds: elapsed,
                ..PhaseStats::default()
            },
        })
    }
}

/// A deterministic 64-bit hash of a query graph (seeding per-query RNGs).
fn hash_query(q: &Graph) -> u64 {
    q.structural_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_datagen::ppi::{generate_ppi_dataset, PpiDatasetConfig};
    use pgs_datagen::queries::{generate_query_workload, QueryWorkloadConfig};
    use pgs_index::feature::FeatureSelectionParams;
    use pgs_index::sip_bounds::BoundsConfig;

    fn small_engine() -> (QueryEngine, Vec<pgs_datagen::queries::WorkloadQuery>) {
        let dataset = generate_ppi_dataset(&PpiDatasetConfig {
            graph_count: 16,
            vertices_per_graph: 10,
            edges_per_graph: 14,
            vertex_label_count: 6,
            organism_count: 2,
            seed: 77,
            ..PpiDatasetConfig::default()
        });
        let queries = generate_query_workload(
            &dataset,
            &QueryWorkloadConfig {
                query_size: 4,
                count: 4,
                seed: 5,
            },
        );
        let config = EngineConfig {
            pmi: PmiBuildParams {
                features: FeatureSelectionParams {
                    alpha: 0.0,
                    beta: 0.2,
                    gamma: 0.0,
                    max_l: 3,
                    max_features: 24,
                    max_embeddings: 12,
                },
                bounds: BoundsConfig::default(),
                threads: 2,
                seed: 3,
            },
            // The test graphs have at most ~18 edges, so verification can stay
            // exact; the pipeline/exact-scan comparisons below are then free of
            // sampling noise.
            verify: VerifyOptions {
                exact_cutoff: 18,
                ..VerifyOptions::default()
            },
            ..EngineConfig::default()
        };
        (QueryEngine::build(dataset.graphs, config), queries)
    }

    #[test]
    fn pmi_query_agrees_with_exact_scan() {
        let (engine, queries) = small_engine();
        for wq in &queries {
            let params = QueryParams {
                epsilon: 0.4,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            };
            let fast = engine.query(&wq.graph, &params).unwrap();
            let exact = engine.exact_scan(&wq.graph, &params).unwrap();
            assert_eq!(
                fast.answers,
                exact.answers,
                "PMI pipeline and exact scan disagree for query {}",
                wq.graph.name()
            );
        }
    }

    #[test]
    fn pruning_variants_agree_on_answers_but_differ_in_candidates() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let mk = |variant| QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant,
        };
        let structure = engine.query(q, &mk(PruningVariant::Structure)).unwrap();
        let ssp = engine.query(q, &mk(PruningVariant::SspBound)).unwrap();
        let opt = engine.query(q, &mk(PruningVariant::OptSspBound)).unwrap();
        assert_eq!(structure.answers, opt.answers);
        assert_eq!(ssp.answers, opt.answers);
        // The probabilistic filters can only shrink the candidate set.
        assert!(opt.stats.probabilistic_candidates <= structure.stats.probabilistic_candidates);
        assert!(ssp.stats.probabilistic_candidates <= structure.stats.probabilistic_candidates);
        // Structure does no probabilistic pruning at all.
        assert_eq!(structure.stats.pruned_by_upper, 0);
        assert_eq!(
            structure.stats.probabilistic_candidates,
            structure.stats.structural_candidates
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (engine, queries) = small_engine();
        let result = engine
            .query(&queries[0].graph, &QueryParams::default())
            .unwrap();
        let s = result.stats;
        assert_eq!(
            s.structural_candidates,
            s.pruned_by_upper + s.accepted_by_lower + s.verified
        );
        assert_eq!(s.probabilistic_candidates, s.accepted_by_lower + s.verified);
        assert!(s.total_seconds() >= s.verification_seconds);
        assert!(result.answers.windows(2).all(|w| w[0] < w[1]));
        // Answers accepted by the lower bound are included.
        assert!(result.answers.len() >= s.accepted_by_lower);
    }

    #[test]
    fn higher_epsilon_returns_fewer_answers() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let low = engine
            .query(
                q,
                &QueryParams {
                    epsilon: 0.1,
                    delta: 1,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        let high = engine
            .query(
                q,
                &QueryParams {
                    epsilon: 0.9,
                    delta: 1,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        assert!(high.answers.len() <= low.answers.len());
        for a in &high.answers {
            assert!(low.answers.contains(a), "answers must be nested across ε");
        }
    }

    #[test]
    fn larger_delta_returns_more_answers() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let d1 = engine
            .query(
                q,
                &QueryParams {
                    epsilon: 0.5,
                    delta: 0,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        let d2 = engine
            .query(
                q,
                &QueryParams {
                    epsilon: 0.5,
                    delta: 2,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        assert!(d1.answers.len() <= d2.answers.len());
        for a in &d1.answers {
            assert!(d2.answers.contains(a), "answers must be nested across δ");
        }
    }

    #[test]
    fn engine_accessors() {
        let (engine, _) = small_engine();
        assert_eq!(engine.db().len(), 16);
        assert_eq!(engine.pmi().graph_count(), 16);
        assert!(engine.config().verify.max_embeddings > 0);
    }

    #[test]
    fn query_answers_are_thread_count_invariant() {
        let (base, queries) = small_engine();
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        let mut config = *base.config();
        config.threads = 1;
        let sequential = QueryEngine::build(base.db().to_vec(), config);
        for threads in [0usize, 2, 4] {
            let mut config = *base.config();
            config.threads = threads;
            let parallel = QueryEngine::build(base.db().to_vec(), config);
            for wq in &queries {
                let a = sequential.query(&wq.graph, &params).unwrap();
                let b = parallel.query(&wq.graph, &params).unwrap();
                assert_eq!(a.answers, b.answers, "threads = {threads}");
                assert_eq!(a.stats.pruned_by_upper, b.stats.pruned_by_upper);
                assert_eq!(a.stats.accepted_by_lower, b.stats.accepted_by_lower);
                assert_eq!(a.stats.verified, b.stats.verified);
            }
        }
    }

    #[test]
    fn sharded_engines_answer_byte_identically() {
        let (base, queries) = small_engine();
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        let mut reference = *base.config();
        reference.shards = 1;
        reference.threads = 1;
        let one = QueryEngine::build(base.db().to_vec(), reference);
        for shards in [3usize, 8] {
            for threads in [1usize, 0] {
                let mut config = *base.config();
                config.shards = shards;
                config.threads = threads;
                let engine = QueryEngine::build(base.db().to_vec(), config);
                assert_eq!(engine.pmi().shard_count(), shards);
                for wq in &queries {
                    let a = one.query(&wq.graph, &params).unwrap();
                    let b = engine.query(&wq.graph, &params).unwrap();
                    assert_eq!(a.answers, b.answers, "shards={shards} threads={threads}");
                    // Every counter (not the timers) is shard-invariant.
                    assert_eq!(a.stats.structural_candidates, b.stats.structural_candidates);
                    assert_eq!(
                        a.stats.posting_entries_scanned,
                        b.stats.posting_entries_scanned
                    );
                    assert_eq!(a.stats.filter_survivors, b.stats.filter_survivors);
                    assert_eq!(a.stats.pruned_by_upper, b.stats.pruned_by_upper);
                    assert_eq!(a.stats.accepted_by_lower, b.stats.accepted_by_lower);
                    assert_eq!(a.stats.verified, b.stats.verified);
                    assert_eq!(a.stats.exact_verifications, b.stats.exact_verifications);
                    assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
                    assert_eq!(
                        a.stats.probabilistic_candidates,
                        b.stats.probabilistic_candidates
                    );
                    // The index-free baseline fans out per shard too.
                    let ea = one.exact_scan(&wq.graph, &params).unwrap();
                    let eb = engine.exact_scan(&wq.graph, &params).unwrap();
                    assert_eq!(ea.answers, eb.answers);
                    assert_eq!(ea.stats.samples_drawn, eb.stats.samples_drawn);
                }
            }
        }
    }

    #[test]
    fn invalid_shard_counts_are_a_typed_error() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let params = QueryParams::default();
        for shards in [0usize, MAX_SHARDS + 1, usize::MAX] {
            let mut config = *engine.config();
            config.shards = shards;
            let broken = QueryEngine::build(engine.db().to_vec(), config);
            for result in [
                broken.query(q, &params).map(|r| r.answers),
                broken.exact_scan(q, &params).map(|r| r.answers),
                broken
                    .query_batch(std::slice::from_ref(q), &params)
                    .map(|b| b.results[0].answers.clone()),
            ] {
                match result {
                    Err(QueryError::InvalidShards { shards: s, max }) => {
                        assert_eq!(s, shards);
                        assert_eq!(max, MAX_SHARDS);
                    }
                    other => panic!("shards = {shards}: got {other:?}"),
                }
            }
        }
        // The full valid range is accepted.
        for shards in [1usize, MAX_SHARDS] {
            let mut config = *engine.config();
            config.shards = shards;
            let ok = QueryEngine::build(engine.db().to_vec(), config);
            assert!(ok.query(q, &params).is_ok());
        }
        assert!(QueryError::InvalidShards {
            shards: 0,
            max: MAX_SHARDS
        }
        .to_string()
        .contains("between 1 and"));
    }

    #[test]
    fn open_index_answers_lazily_and_identically() {
        let (base, queries) = small_engine();
        let mut config = *base.config();
        config.shards = 3;
        let engine = QueryEngine::build(base.db().to_vec(), config);
        let path = std::env::temp_dir().join(format!(
            "pgs-pipeline-open-index-{}.pmi",
            std::process::id()
        ));
        engine.pmi().save(&path).unwrap();
        let lazy = QueryEngine::open_index(engine.db().to_vec(), &path, config).unwrap();
        // The pairing checks ran against the head only — no segment is
        // materialized until the first query touches it.
        assert_eq!(lazy.pmi().materialized_shards(), 0);
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        for wq in &queries {
            assert_eq!(
                lazy.query(&wq.graph, &params).unwrap().answers,
                engine.query(&wq.graph, &params).unwrap().answers
            );
        }
        // A swapped database is rejected before any lazy work happens.
        let mut swapped = engine.db().to_vec();
        swapped.swap(0, 1);
        let err = QueryEngine::open_index(swapped, &path, config).unwrap_err();
        assert!(matches!(
            err,
            EngineLoadError::Mismatch(IndexMismatch::GraphSalt { .. })
        ));
        std::fs::remove_file(&path).ok();
        // A missing file surfaces as a snapshot error.
        let err = QueryEngine::open_index(engine.db().to_vec(), &path, config).unwrap_err();
        assert!(matches!(err, EngineLoadError::Snapshot(_)));
    }

    #[test]
    fn query_batch_matches_individual_queries() {
        let (engine, queries) = small_engine();
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        let graphs: Vec<Graph> = queries.iter().map(|wq| wq.graph.clone()).collect();
        let batch = engine.query_batch(&graphs, &params).unwrap();
        assert_eq!(batch.results.len(), graphs.len());
        assert!(batch.wall_seconds >= 0.0);
        assert!(batch.queries_per_second() > 0.0);
        let mut expected_stats = PhaseStats::default();
        for (q, br) in graphs.iter().zip(&batch.results) {
            let solo = engine.query(q, &params).unwrap();
            assert_eq!(br.answers, solo.answers);
            expected_stats.accumulate(&br.stats);
        }
        assert_eq!(
            batch.stats.structural_candidates,
            expected_stats.structural_candidates
        );
        assert_eq!(batch.stats.verified, expected_stats.verified);
    }

    #[test]
    fn empty_batch_is_empty() {
        let (engine, _) = small_engine();
        let batch = engine.query_batch(&[], &QueryParams::default()).unwrap();
        assert!(batch.results.is_empty());
        assert_eq!(batch.stats, PhaseStats::default());
    }

    #[test]
    fn invalid_epsilon_is_a_typed_error_not_a_silent_answer_set() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        for epsilon in [f64::NAN, 0.0, -0.5, 1.5, f64::INFINITY] {
            let params = QueryParams {
                epsilon,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            };
            for result in [
                engine.query(q, &params).map(|r| r.answers),
                engine.exact_scan(q, &params).map(|r| r.answers),
                engine
                    .query_batch(std::slice::from_ref(q), &params)
                    .map(|b| b.results[0].answers.clone()),
            ] {
                match result {
                    Err(QueryError::InvalidEpsilon { epsilon: e }) => {
                        assert!(e.is_nan() == epsilon.is_nan() && (e.is_nan() || e == epsilon));
                    }
                    Err(other) => panic!("ε = {epsilon}: unexpected error {other:?}"),
                    Ok(answers) => panic!("ε = {epsilon} silently answered {answers:?}"),
                }
            }
        }
        assert!(QueryError::InvalidEpsilon { epsilon: f64::NAN }
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn from_parts_accepts_a_matching_index_and_answers_identically() {
        let (engine, queries) = small_engine();
        let pmi = engine.pmi().clone();
        let rebuilt = QueryEngine::from_parts(engine.db().to_vec(), pmi, *engine.config()).unwrap();
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        for wq in &queries {
            assert_eq!(
                rebuilt.query(&wq.graph, &params).unwrap().answers,
                engine.query(&wq.graph, &params).unwrap().answers
            );
        }
    }

    #[test]
    fn from_parts_rejects_mismatched_databases() {
        let (engine, _) = small_engine();
        let pmi = engine.pmi().clone();
        // Wrong count.
        let err = QueryEngine::from_parts(engine.db()[..4].to_vec(), pmi.clone(), *engine.config())
            .unwrap_err();
        assert!(matches!(err, IndexMismatch::GraphCount { .. }));
        // Same count, different order → salt mismatch at the first swap.
        let mut swapped = engine.db().to_vec();
        swapped.swap(0, 1);
        let err = QueryEngine::from_parts(swapped, pmi, *engine.config()).unwrap_err();
        assert_eq!(err, IndexMismatch::GraphSalt { position: 0 });
        assert!(err.to_string().contains("column 0"));
    }

    #[test]
    fn from_parts_rejects_mismatched_build_params() {
        let (engine, _) = small_engine();
        let pmi = engine.pmi().clone();
        let mut other = *engine.config();
        other.pmi.seed ^= 1;
        let err = QueryEngine::from_parts(engine.db().to_vec(), pmi, other).unwrap_err();
        assert!(matches!(err, IndexMismatch::BuildParams { .. }));
        assert!(err.to_string().contains("different parameters"));
        // `threads` is excluded from the fingerprint: a different worker count
        // must still accept the index.
        let mut threads_only = *engine.config();
        threads_only.pmi.threads += 3;
        assert!(
            QueryEngine::from_parts(engine.db().to_vec(), engine.pmi().clone(), threads_only)
                .is_ok()
        );
    }

    #[test]
    fn empty_query_is_a_typed_error_at_engine_level() {
        let (engine, _) = small_engine();
        let empty = Graph::new();
        let params = QueryParams::default();
        assert_eq!(
            engine.query(&empty, &params).unwrap_err(),
            QueryError::EmptyQuery
        );
        assert_eq!(
            engine.exact_scan(&empty, &params).unwrap_err(),
            QueryError::EmptyQuery
        );
        assert_eq!(
            engine.query_batch(&[empty], &params).unwrap_err(),
            QueryError::EmptyQuery
        );
    }

    #[test]
    fn with_index_loads_a_snapshot_from_disk() {
        let (engine, queries) = small_engine();
        let path = std::env::temp_dir().join(format!(
            "pgs-pipeline-with-index-{}.pmi",
            std::process::id()
        ));
        engine.pmi().save(&path).unwrap();
        let loaded =
            QueryEngine::with_index(engine.db().to_vec(), &path, *engine.config()).unwrap();
        std::fs::remove_file(&path).ok();
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        for wq in &queries {
            assert_eq!(
                loaded.query(&wq.graph, &params).unwrap().answers,
                engine.query(&wq.graph, &params).unwrap().answers
            );
        }
        // A missing file surfaces as a snapshot error.
        let err =
            QueryEngine::with_index(engine.db().to_vec(), &path, *engine.config()).unwrap_err();
        assert!(matches!(err, EngineLoadError::Snapshot(_)));
    }

    #[test]
    fn insert_and_remove_keep_engine_and_index_aligned() {
        let (engine, queries) = small_engine();
        let mut mutated = engine.clone();
        let extra = engine.db()[3].clone();
        let idx = mutated.insert_graph(extra);
        assert_eq!(idx, engine.db().len());
        assert_eq!(mutated.pmi().graph_count(), engine.db().len() + 1);
        let removed = mutated.remove_graph(idx).expect("index in range");
        assert_eq!(removed.name(), engine.db()[3].name());
        assert_eq!(mutated.pmi().graph_count(), engine.db().len());
        assert!(mutated.remove_graph(999).is_none());
        // After insert+remove of the same graph, answers match the original.
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        for wq in &queries {
            assert_eq!(
                mutated.query(&wq.graph, &params).unwrap().answers,
                engine.query(&wq.graph, &params).unwrap().answers
            );
        }
        assert_eq!(mutated.pmi().churn(), 2);
    }

    #[test]
    fn trivial_relaxation_returns_the_full_database_without_sampling() {
        // δ ≥ |E(q)|: the relaxed query collapses to the empty pattern, which
        // every possible world contains — SSP = 1 for every graph, so every
        // graph is an answer at any valid ε, accepted without verification.
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let n = engine.db().len();
        for delta in [q.edge_count(), q.edge_count() + 1, q.edge_count() + 10] {
            for variant in [
                PruningVariant::Structure,
                PruningVariant::SspBound,
                PruningVariant::OptSspBound,
            ] {
                for epsilon in [0.05, 0.5, 1.0] {
                    let params = QueryParams {
                        epsilon,
                        delta,
                        variant,
                    };
                    let result = engine.query(q, &params).unwrap();
                    assert_eq!(result.answers, (0..n).collect::<Vec<_>>());
                    let s = result.stats;
                    assert_eq!(s.structural_candidates, n);
                    assert_eq!(s.accepted_by_lower, n);
                    assert_eq!(s.verified, 0, "the sampler must not run");
                    assert_eq!(s.posting_entries_scanned, 0);
                    // The exact scan agrees on the answer set.
                    let exact = engine.exact_scan(q, &params).unwrap();
                    assert_eq!(result.answers, exact.answers);
                }
            }
        }
        // One edge below the trivial threshold the pipeline runs normally.
        let params = QueryParams {
            epsilon: 0.5,
            delta: q.edge_count() - 1,
            variant: PruningVariant::OptSspBound,
        };
        let result = engine.query(q, &params).unwrap();
        assert_eq!(
            result.stats.structural_candidates,
            result.stats.pruned_by_upper + result.stats.accepted_by_lower + result.stats.verified
        );
    }

    #[test]
    fn invalid_exact_scan_config_is_a_typed_error() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let params = QueryParams {
            epsilon: 0.5,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        let bad_configs = [
            (f64::NAN, 0.01, 1000),
            (0.0, 0.01, 1000),
            (-0.5, 0.01, 1000),
            (0.05, f64::NAN, 1000),
            (0.05, 0.0, 1000),
            (0.05, 0.01, 0),
        ];
        for (tau, xi, max_samples) in bad_configs {
            let mut config = *engine.config();
            config.exact.fallback_mc = MonteCarloConfig {
                tau,
                xi,
                max_samples,
            };
            let broken = QueryEngine::build(engine.db().to_vec(), config);
            match broken.exact_scan(q, &params) {
                Err(QueryError::InvalidExactScanConfig {
                    tau: t,
                    xi: x,
                    max_samples: m,
                }) => {
                    assert!(t.is_nan() == tau.is_nan() && (t.is_nan() || t == tau));
                    assert!(x.is_nan() == xi.is_nan() && (x.is_nan() || x == xi));
                    assert_eq!(m, max_samples);
                }
                other => panic!("τ={tau} ξ={xi} cap={max_samples}: got {other:?}"),
            }
            // The pipeline itself never consults the exact-scan knobs.
            assert!(broken.query(q, &params).is_ok());
        }
        assert!(ExactScanConfig::default().validate().is_ok());
        assert!(QueryError::InvalidExactScanConfig {
            tau: f64::NAN,
            xi: 0.0,
            max_samples: 0
        }
        .to_string()
        .contains("sample cap"));
    }

    #[test]
    fn invalid_verify_options_are_a_typed_error() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let params = QueryParams::default();
        let bad = [
            (0usize, 0.1, 0.05),
            (256, f64::NAN, 0.05),
            (256, 0.0, 0.05),
            (256, 0.1, -0.5),
        ];
        for (max_embeddings, tau, xi) in bad {
            let mut config = *engine.config();
            config.verify.max_embeddings = max_embeddings;
            config.verify.mc.tau = tau;
            config.verify.mc.xi = xi;
            let broken = QueryEngine::build(engine.db().to_vec(), config);
            for result in [
                broken.query(q, &params).map(|r| r.answers),
                broken.exact_scan(q, &params).map(|r| r.answers),
                broken
                    .query_batch(std::slice::from_ref(q), &params)
                    .map(|b| b.results[0].answers.clone()),
            ] {
                match result {
                    Err(QueryError::InvalidVerifyOptions {
                        max_embeddings: m,
                        tau: t,
                        xi: x,
                    }) => {
                        assert_eq!(m, max_embeddings);
                        assert!(t.is_nan() == tau.is_nan() && (t.is_nan() || t == tau));
                        assert!(x.is_nan() == xi.is_nan() && (x.is_nan() || x == xi));
                    }
                    other => panic!("cap={max_embeddings} τ={tau} ξ={xi}: got {other:?}"),
                }
            }
        }
        assert!(QueryError::InvalidVerifyOptions {
            max_embeddings: 0,
            tau: 0.1,
            xi: 0.05
        }
        .to_string()
        .contains("embedding cap"));
    }

    #[test]
    fn absurd_thread_counts_are_a_typed_error_not_an_os_thread_bomb() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let params = QueryParams::default();
        for threads in [MAX_THREADS + 1, 100_000, usize::MAX] {
            let mut config = *engine.config();
            config.threads = threads;
            let broken = QueryEngine::build(engine.db().to_vec(), config);
            for result in [
                broken.query(q, &params).map(|r| r.answers),
                broken.exact_scan(q, &params).map(|r| r.answers),
                broken
                    .query_batch(std::slice::from_ref(q), &params)
                    .map(|b| b.results[0].answers.clone()),
            ] {
                match result {
                    Err(QueryError::InvalidThreads { threads: t, max }) => {
                        assert_eq!(t, threads);
                        assert_eq!(max, MAX_THREADS);
                    }
                    other => panic!("threads = {threads}: got {other:?}"),
                }
            }
        }
        // The ceiling itself (and everything below) is accepted.
        let mut config = *engine.config();
        config.threads = MAX_THREADS;
        let capped = QueryEngine::build(engine.db().to_vec(), config);
        assert!(capped.query(q, &params).is_ok());
        assert!(QueryError::InvalidThreads {
            threads: 100_000,
            max: MAX_THREADS
        }
        .to_string()
        .contains("at most"));
    }

    #[test]
    fn verification_counters_split_exact_and_sampled_work() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        // The small_engine config keeps verification exact (cutoff 18 covers
        // every candidate): all verified candidates are exact shortcuts.
        let exact_run = engine.query(q, &params).unwrap();
        assert_eq!(
            exact_run.stats.exact_verifications,
            exact_run.stats.verified
        );
        assert_eq!(exact_run.stats.samples_drawn, 0);
        // Forcing the sampling path flips the counters.  The fixed-budget
        // path is pinned explicitly: under the adaptive layer a candidate
        // whose union weight already caps its SSP below ε legitimately draws
        // zero samples (see `adaptive_counters_report_early_stops`).
        let mut config = *engine.config();
        config.verify.exact_cutoff = 0;
        config.verify.adaptive = false;
        let sampling = QueryEngine::build(engine.db().to_vec(), config);
        let sampled_run = sampling.query(q, &params).unwrap();
        if sampled_run.stats.verified > 0 {
            assert!(sampled_run.stats.samples_drawn > 0);
            assert!(sampled_run.stats.exact_verifications <= sampled_run.stats.verified);
        }
        // Counters aggregate across a batch.
        let batch = sampling
            .query_batch(std::slice::from_ref(q), &params)
            .unwrap();
        assert_eq!(batch.stats.samples_drawn, sampled_run.stats.samples_drawn);
        assert_eq!(
            batch.stats.exact_verifications,
            sampled_run.stats.exact_verifications
        );
    }

    #[test]
    fn forced_sampling_answers_are_thread_count_invariant() {
        // The determinism suite covers the default configuration; this pins
        // the intra-candidate chunked sampler specifically (exact_cutoff = 0
        // sends every verified candidate through the UnionSampler, and the
        // tiny candidate sets make the pipeline pick within-candidate
        // parallelism for threads > 1).
        let (base, queries) = small_engine();
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        let mut config = *base.config();
        config.verify.exact_cutoff = 0;
        config.threads = 1;
        let sequential = QueryEngine::build(base.db().to_vec(), config);
        for threads in [0usize, 2, 4] {
            let mut config = *base.config();
            config.verify.exact_cutoff = 0;
            config.threads = threads;
            let parallel = QueryEngine::build(base.db().to_vec(), config);
            for wq in &queries {
                let a = sequential.query(&wq.graph, &params).unwrap();
                let b = parallel.query(&wq.graph, &params).unwrap();
                assert_eq!(a.answers, b.answers, "threads = {threads}");
                assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
                assert_eq!(a.stats.exact_verifications, b.stats.exact_verifications);
            }
        }
    }

    #[test]
    fn structural_phase_reports_posting_list_work() {
        let (engine, queries) = small_engine();
        let params = QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        let result = engine.query(&queries[0].graph, &params).unwrap();
        let s = result.stats;
        assert!(s.posting_entries_scanned > 0, "δ < |E(q)| walks postings");
        assert!(s.filter_survivors >= s.structural_candidates);
        assert!(s.filter_survivors <= engine.db().len());
    }

    #[test]
    fn exact_scan_stats_are_documented_zeros() {
        let (engine, queries) = small_engine();
        let result = engine
            .exact_scan(&queries[0].graph, &QueryParams::default())
            .unwrap();
        let s = result.stats;
        assert_eq!(s.structural_candidates, engine.db().len());
        assert_eq!(s.probabilistic_candidates, engine.db().len());
        assert_eq!(s.verified, engine.db().len());
        assert_eq!(s.structural_seconds, 0.0);
        assert_eq!(s.probabilistic_seconds, 0.0);
        assert_eq!(s.pruned_by_upper, 0);
        assert_eq!(s.accepted_by_lower, 0);
        assert!(s.verification_seconds >= 0.0);
        // Every test graph fits under the exact edge cap, so the whole scan
        // is exact and no Monte-Carlo trial is drawn.
        assert_eq!(s.exact_verifications, engine.db().len());
        assert_eq!(s.samples_drawn, 0);
        // Shrinking both exact caps forces the sampling fallback, which must
        // now be reflected in the counters.
        let mut config = *engine.config();
        config.exact.exact_edge_cap = 0;
        config.verify.exact_cutoff = 0;
        let forced = QueryEngine::build(engine.db().to_vec(), config);
        let s = forced
            .exact_scan(&queries[0].graph, &QueryParams::default())
            .unwrap()
            .stats;
        assert!(s.samples_drawn > 0, "fallback trials must be counted");
        assert!(s.exact_verifications < engine.db().len());
    }

    #[test]
    fn invalid_k_is_a_typed_error() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        for k in [0usize, MAX_TOPK + 1, usize::MAX] {
            let params = TopkParams {
                k,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            };
            for result in [
                engine.query_topk(q, &params).map(|r| r.ranked.len()),
                engine
                    .query_topk_batch(std::slice::from_ref(q), &params)
                    .map(|b| b.results.len()),
            ] {
                match result {
                    Err(QueryError::InvalidK { k: got }) => assert_eq!(got, k),
                    other => panic!("k = {k}: got {other:?}"),
                }
            }
        }
        // The full valid range is accepted (MAX_TOPK just truncates to the
        // database size).
        for k in [1usize, MAX_TOPK] {
            let params = TopkParams {
                k,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            };
            assert!(engine.query_topk(q, &params).is_ok());
        }
        assert!(QueryError::InvalidK { k: 0 }
            .to_string()
            .contains("between 1 and"));
    }

    #[test]
    fn query_topk_matches_the_exact_ssp_ranking() {
        // small_engine keeps verification exact (cutoff 18), so the ranking
        // must reproduce the exact SSP order with the salt tie-break.
        let (engine, queries) = small_engine();
        let salts = engine.pmi().graph_salts().to_vec();
        let n = engine.db().len();
        for wq in &queries {
            let full = engine
                .query_topk(
                    &wq.graph,
                    &TopkParams {
                        k: n,
                        delta: 1,
                        variant: PruningVariant::OptSspBound,
                    },
                )
                .unwrap();
            // The answer set is exactly the graphs with positive exact SSP.
            let exact: Vec<f64> = engine
                .db()
                .iter()
                .map(|pg| verify_ssp_exact(pg, &wq.graph, 1, 22).unwrap())
                .collect();
            let mut positives: Vec<usize> = (0..n).filter(|&gi| exact[gi] > 1e-12).collect();
            positives.sort_unstable();
            let mut got: Vec<usize> = full.ranked.iter().map(|r| r.graph).collect();
            got.sort_unstable();
            assert_eq!(got, positives, "query {}", wq.graph.name());
            // Reported SSPs match the exact values and the list is ordered
            // by (ssp desc, salt asc, index asc).
            for r in &full.ranked {
                assert!(
                    (r.ssp - exact[r.graph]).abs() < 1e-9,
                    "graph {}: reported {} vs exact {}",
                    r.graph,
                    r.ssp,
                    exact[r.graph]
                );
            }
            for w in full.ranked.windows(2) {
                let key = |r: &RankedAnswer| (std::cmp::Reverse(r.ssp.to_bits()), salts[r.graph]);
                assert!(key(&w[0]) <= key(&w[1]), "ranking out of order");
            }
            // Smaller k returns the exact prefix (pruning never drops a
            // better-ranked answer).
            for k in [1usize, 3, 7] {
                let small = engine
                    .query_topk(
                        &wq.graph,
                        &TopkParams {
                            k,
                            delta: 1,
                            variant: PruningVariant::OptSspBound,
                        },
                    )
                    .unwrap();
                let want: Vec<(usize, u64)> = full
                    .ranked
                    .iter()
                    .take(k)
                    .map(|r| (r.graph, r.ssp.to_bits()))
                    .collect();
                let got: Vec<(usize, u64)> = small
                    .ranked
                    .iter()
                    .map(|r| (r.graph, r.ssp.to_bits()))
                    .collect();
                assert_eq!(got, want, "k = {k}");
            }
        }
    }

    #[test]
    fn topk_is_thread_shard_and_batch_invariant() {
        let (base, queries) = small_engine();
        let params = TopkParams {
            k: 5,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        let mut reference = *base.config();
        reference.threads = 1;
        reference.shards = 1;
        let one = QueryEngine::build(base.db().to_vec(), reference);
        let fingerprint = |r: &TopkResult| -> Vec<(usize, u64)> {
            r.ranked
                .iter()
                .map(|a| (a.graph, a.ssp.to_bits()))
                .collect()
        };
        for (threads, shards) in [(2usize, 1usize), (0, 1), (1, 8), (0, 8), (4, 3)] {
            let mut config = *base.config();
            config.threads = threads;
            config.shards = shards;
            let engine = QueryEngine::build(base.db().to_vec(), config);
            for wq in &queries {
                let a = one.query_topk(&wq.graph, &params).unwrap();
                let b = engine.query_topk(&wq.graph, &params).unwrap();
                assert_eq!(
                    fingerprint(&a),
                    fingerprint(&b),
                    "threads={threads} shards={shards}"
                );
                assert_eq!(a.stats.verified, b.stats.verified);
                assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
                assert_eq!(a.stats.samples_saved, b.stats.samples_saved);
                assert_eq!(a.stats.topk_pruned, b.stats.topk_pruned);
                assert_eq!(a.stats.early_rejects, b.stats.early_rejects);
            }
        }
        // The batch path answers byte-identically to standalone calls.
        let graphs: Vec<Graph> = queries.iter().map(|wq| wq.graph.clone()).collect();
        let batch = one.query_topk_batch(&graphs, &params).unwrap();
        assert_eq!(batch.results.len(), graphs.len());
        assert!(batch.wall_seconds >= 0.0);
        let mut expected_stats = PhaseStats::default();
        for (q, br) in graphs.iter().zip(&batch.results) {
            let solo = one.query_topk(q, &params).unwrap();
            assert_eq!(fingerprint(br), fingerprint(&solo));
            expected_stats.accumulate(&br.stats);
        }
        assert_eq!(batch.stats.verified, expected_stats.verified);
        assert_eq!(batch.stats.samples_drawn, expected_stats.samples_drawn);
        // Empty batch mirrors `empty_batch_is_empty`.
        let empty = one.query_topk_batch(&[], &params).unwrap();
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats, PhaseStats::default());
        // Empty queries are rejected up front.
        assert_eq!(
            one.query_topk(&Graph::new(), &params).unwrap_err(),
            QueryError::EmptyQuery
        );
        assert_eq!(
            one.query_topk_batch(&[Graph::new()], &params).unwrap_err(),
            QueryError::EmptyQuery
        );
    }

    #[test]
    fn trivial_relaxation_topk_ranks_by_salt() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let salts = engine.pmi().graph_salts().to_vec();
        let n = engine.db().len();
        for k in [1usize, 5, n, n + 10] {
            let result = engine
                .query_topk(
                    q,
                    &TopkParams {
                        k,
                        delta: q.edge_count(),
                        variant: PruningVariant::OptSspBound,
                    },
                )
                .unwrap();
            assert_eq!(result.ranked.len(), k.min(n));
            assert!(result.ranked.iter().all(|r| r.ssp == 1.0));
            for w in result.ranked.windows(2) {
                assert!(
                    (salts[w[0].graph], w[0].graph) < (salts[w[1].graph], w[1].graph),
                    "trivial ranking must follow the salt order"
                );
            }
            assert_eq!(result.stats.verified, 0, "the sampler must not run");
        }
    }

    #[test]
    fn adaptive_counters_report_early_stops() {
        // Forced sampling (exact_cutoff 0) with the adaptive layer pinned on:
        // a loose ε lets clear winners accept early, a strict ε lets clear
        // losers reject early (including zero-sample rejects where the union
        // weight already caps the SSP), and the saved/drawn counters always
        // reconcile against the fixed budget.
        let (base, queries) = small_engine();
        let mut config = *base.config();
        config.verify.exact_cutoff = 0;
        config.verify.adaptive = true;
        let engine = QueryEngine::build(base.db().to_vec(), config);
        let budget = config.verify.mc.num_samples();
        let mut early_accepts = 0usize;
        let mut early_rejects = 0usize;
        let mut full_budget_runs = 0usize;
        for epsilon in [0.05, 0.4, 0.95] {
            let params = QueryParams {
                epsilon,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            };
            for wq in &queries {
                let s = engine.query(&wq.graph, &params).unwrap().stats;
                let sampled = s.verified - s.exact_verifications;
                assert_eq!(
                    s.samples_drawn + s.samples_saved,
                    sampled * budget,
                    "ε={epsilon}: drawn + saved must reconcile with the budget"
                );
                assert!(s.early_accepts + s.early_rejects <= sampled);
                early_accepts += s.early_accepts;
                early_rejects += s.early_rejects;
                full_budget_runs += sampled - s.early_accepts - s.early_rejects;
            }
        }
        assert!(early_accepts > 0, "no early accept across the ε sweep");
        assert!(early_rejects > 0, "no early reject across the ε sweep");
        assert!(full_budget_runs > 0, "no sampler ran to completion");
        // The fixed-budget path never saves a sample and never stops early.
        let mut fixed_config = *base.config();
        fixed_config.verify.exact_cutoff = 0;
        fixed_config.verify.adaptive = false;
        let fixed = QueryEngine::build(base.db().to_vec(), fixed_config);
        for wq in &queries {
            let s = fixed
                .query(
                    &wq.graph,
                    &QueryParams {
                        epsilon: 0.4,
                        delta: 1,
                        variant: PruningVariant::OptSspBound,
                    },
                )
                .unwrap()
                .stats;
            assert_eq!(s.samples_saved, 0);
            assert_eq!(s.early_accepts, 0);
            assert_eq!(s.early_rejects, 0);
            assert_eq!(
                s.samples_drawn,
                (s.verified - s.exact_verifications) * budget
            );
        }
    }
}
