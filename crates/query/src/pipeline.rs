//! The full T-PS query pipeline (Section 1.2) and the experimental baselines.
//!
//! [`QueryEngine`] owns the database, the PMI and the configuration, and
//! answers threshold-based probabilistic subgraph similarity queries in the
//! paper's three phases, recording per-phase statistics (candidate counts and
//! wall-clock time) so that the benchmark harness can regenerate Figures 9–13.
//!
//! The pruning variants of Section 6 map onto [`PruningVariant`]:
//!
//! * `Structure` — structural pruning only, every survivor is verified;
//! * `SspBound` — probabilistic pruning with one arbitrary qualifying feature
//!   per relaxed query;
//! * `OptSspBound` — probabilistic pruning with the tightest bounds
//!   (Algorithms 1 and 2); this is the complete `PMI` algorithm.
//!
//! The `Exact` baseline ([`QueryEngine::exact_scan`]) evaluates the SSP of
//! every database graph directly.

use crate::prune::{probabilistic_prune, CrossTermRule, PruneOutcome};
use crate::structural::structural_candidates;
use crate::verify::{verify_ssp_exact, verify_ssp_sampled, VerifyOptions};
use pgs_graph::model::Graph;
use pgs_graph::relax::relax_query;
use pgs_index::pmi::{Pmi, PmiBuildParams};
use pgs_prob::model::ProbabilisticGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Which pruning stack a query run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruningVariant {
    /// Structural pruning only (the paper's `Structure` bars).
    Structure,
    /// Probabilistic pruning with arbitrary feature picks (`SSPBound`).
    SspBound,
    /// Probabilistic pruning with the tightest bounds (`OPT-SSPBound` — the
    /// full PMI algorithm).
    #[default]
    OptSspBound,
}

/// Engine-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// PMI build parameters (features + SIP bounds).
    pub pmi: PmiBuildParams,
    /// Verification sampler options.
    pub verify: VerifyOptions,
    /// Cross-term rule of the lower bound (see [`CrossTermRule`]).
    pub cross_term: CrossTermRule,
    /// RNG seed for query-time randomness.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pmi: PmiBuildParams::default(),
            verify: VerifyOptions::default(),
            cross_term: CrossTermRule::SafeMin,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-query parameters (the user-facing knobs of a T-PS query).
#[derive(Debug, Clone, Copy)]
pub struct QueryParams {
    /// Probability threshold `ε` (0 < ε ≤ 1).
    pub epsilon: f64,
    /// Subgraph distance threshold `δ`.
    pub delta: usize,
    /// Pruning stack to use.
    pub variant: PruningVariant,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            epsilon: 0.5,
            delta: 2,
            variant: PruningVariant::OptSspBound,
        }
    }
}

/// Per-phase statistics of one query run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// `|SC_q|` — graphs surviving structural pruning.
    pub structural_candidates: usize,
    /// Graphs discarded by Pruning rule 1.
    pub pruned_by_upper: usize,
    /// Graphs accepted by Pruning rule 2 without verification.
    pub accepted_by_lower: usize,
    /// Graphs sent to the verification sampler.
    pub verified: usize,
    /// Graphs surviving probabilistic pruning (accepted + to-verify); the
    /// paper's "candidate size" for Figures 10–12.
    pub probabilistic_candidates: usize,
    /// Seconds spent in structural pruning.
    pub structural_seconds: f64,
    /// Seconds spent in probabilistic pruning.
    pub probabilistic_seconds: f64,
    /// Seconds spent in verification.
    pub verification_seconds: f64,
}

impl PhaseStats {
    /// Total query processing time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.structural_seconds + self.probabilistic_seconds + self.verification_seconds
    }
}

/// The result of one T-PS query.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Indices (into the database) of the answer graphs, ascending.
    pub answers: Vec<usize>,
    /// Per-phase statistics.
    pub stats: PhaseStats,
}

/// The query engine: database + PMI + configuration.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    db: Vec<ProbabilisticGraph>,
    skeletons: Vec<Graph>,
    pmi: Pmi,
    config: EngineConfig,
}

impl QueryEngine {
    /// Builds the engine (including the PMI) over a database.
    pub fn build(db: Vec<ProbabilisticGraph>, config: EngineConfig) -> QueryEngine {
        let pmi = Pmi::build(&db, &config.pmi);
        let skeletons = db.iter().map(|g| g.skeleton().clone()).collect();
        QueryEngine {
            db,
            skeletons,
            pmi,
            config,
        }
    }

    /// The indexed database.
    pub fn db(&self) -> &[ProbabilisticGraph] {
        &self.db
    }

    /// The probabilistic matrix index.
    pub fn pmi(&self) -> &Pmi {
        &self.pmi
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Answers a T-PS query: all graphs `g` with `Pr(q ⊆sim g) ≥ ε`.
    pub fn query(&self, q: &Graph, params: &QueryParams) -> QueryResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ hash_query(q));
        let mut stats = PhaseStats::default();

        // Phase 1: structural pruning.
        let t0 = Instant::now();
        let structural = structural_candidates(&self.skeletons, q, params.delta);
        stats.structural_seconds = t0.elapsed().as_secs_f64();
        stats.structural_candidates = structural.len();

        // Phase 2: probabilistic pruning.
        let t1 = Instant::now();
        let relaxed = relax_query(q, params.delta.min(q.edge_count()));
        let outcome = match params.variant {
            PruningVariant::Structure => PruneOutcome {
                accepted: Vec::new(),
                candidates: structural.clone(),
                pruned: Vec::new(),
            },
            PruningVariant::SspBound | PruningVariant::OptSspBound => {
                let optimal = params.variant == PruningVariant::OptSspBound;
                let (outcome, _) = probabilistic_prune(
                    &self.pmi,
                    &structural,
                    &relaxed,
                    params.epsilon,
                    optimal,
                    self.config.cross_term,
                    &mut rng,
                );
                outcome
            }
        };
        stats.probabilistic_seconds = t1.elapsed().as_secs_f64();
        stats.pruned_by_upper = outcome.pruned.len();
        stats.accepted_by_lower = outcome.accepted.len();
        stats.probabilistic_candidates = outcome.surviving();

        // Phase 3: verification.
        let t2 = Instant::now();
        let mut answers = outcome.accepted.clone();
        stats.verified = outcome.candidates.len();
        for &gi in &outcome.candidates {
            let ssp =
                verify_ssp_sampled(&self.db[gi], q, params.delta, &self.config.verify, &mut rng);
            if ssp >= params.epsilon {
                answers.push(gi);
            }
        }
        stats.verification_seconds = t2.elapsed().as_secs_f64();
        answers.sort_unstable();
        QueryResult { answers, stats }
    }

    /// The `Exact` baseline: evaluates the SSP of every database graph with the
    /// exact evaluator (falling back to high-accuracy sampling when the exact
    /// enumeration is too large), without any index.
    pub fn exact_scan(&self, q: &Graph, params: &QueryParams) -> QueryResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ hash_query(q) ^ 0x9E37);
        let t0 = Instant::now();
        let mut answers = Vec::new();
        for (gi, pg) in self.db.iter().enumerate() {
            let ssp = match verify_ssp_exact(pg, q, params.delta, 22) {
                Ok(v) => v,
                Err(_) => {
                    let precise = VerifyOptions {
                        mc: pgs_prob::montecarlo::MonteCarloConfig {
                            tau: 0.05,
                            xi: 0.01,
                            max_samples: 50_000,
                        },
                        ..self.config.verify
                    };
                    verify_ssp_sampled(pg, q, params.delta, &precise, &mut rng)
                }
            };
            if ssp >= params.epsilon {
                answers.push(gi);
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        QueryResult {
            answers,
            stats: PhaseStats {
                structural_candidates: self.db.len(),
                probabilistic_candidates: self.db.len(),
                verified: self.db.len(),
                verification_seconds: elapsed,
                ..PhaseStats::default()
            },
        }
    }
}

/// A deterministic 64-bit hash of a query graph (seeding per-query RNGs).
fn hash_query(q: &Graph) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(q.vertex_count() as u64);
    mix(q.edge_count() as u64);
    for v in q.vertices() {
        mix(q.vertex_label(v).0 as u64);
    }
    for (_, e) in q.edge_entries() {
        mix(e.u.0 as u64);
        mix(e.v.0 as u64);
        mix(e.label.0 as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_datagen::ppi::{generate_ppi_dataset, PpiDatasetConfig};
    use pgs_datagen::queries::{generate_query_workload, QueryWorkloadConfig};
    use pgs_index::feature::FeatureSelectionParams;
    use pgs_index::sip_bounds::BoundsConfig;

    fn small_engine() -> (QueryEngine, Vec<pgs_datagen::queries::WorkloadQuery>) {
        let dataset = generate_ppi_dataset(&PpiDatasetConfig {
            graph_count: 16,
            vertices_per_graph: 10,
            edges_per_graph: 14,
            vertex_label_count: 6,
            organism_count: 2,
            seed: 77,
            ..PpiDatasetConfig::default()
        });
        let queries = generate_query_workload(
            &dataset,
            &QueryWorkloadConfig {
                query_size: 4,
                count: 4,
                seed: 5,
            },
        );
        let config = EngineConfig {
            pmi: PmiBuildParams {
                features: FeatureSelectionParams {
                    alpha: 0.0,
                    beta: 0.2,
                    gamma: 0.0,
                    max_l: 3,
                    max_features: 24,
                    max_embeddings: 12,
                },
                bounds: BoundsConfig::default(),
                threads: 2,
                seed: 3,
            },
            // The test graphs have at most ~18 edges, so verification can stay
            // exact; the pipeline/exact-scan comparisons below are then free of
            // sampling noise.
            verify: VerifyOptions {
                exact_cutoff: 18,
                ..VerifyOptions::default()
            },
            ..EngineConfig::default()
        };
        (QueryEngine::build(dataset.graphs, config), queries)
    }

    #[test]
    fn pmi_query_agrees_with_exact_scan() {
        let (engine, queries) = small_engine();
        for wq in &queries {
            let params = QueryParams {
                epsilon: 0.4,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            };
            let fast = engine.query(&wq.graph, &params);
            let exact = engine.exact_scan(&wq.graph, &params);
            assert_eq!(
                fast.answers,
                exact.answers,
                "PMI pipeline and exact scan disagree for query {}",
                wq.graph.name()
            );
        }
    }

    #[test]
    fn pruning_variants_agree_on_answers_but_differ_in_candidates() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let mk = |variant| QueryParams {
            epsilon: 0.4,
            delta: 1,
            variant,
        };
        let structure = engine.query(q, &mk(PruningVariant::Structure));
        let ssp = engine.query(q, &mk(PruningVariant::SspBound));
        let opt = engine.query(q, &mk(PruningVariant::OptSspBound));
        assert_eq!(structure.answers, opt.answers);
        assert_eq!(ssp.answers, opt.answers);
        // The probabilistic filters can only shrink the candidate set.
        assert!(opt.stats.probabilistic_candidates <= structure.stats.probabilistic_candidates);
        assert!(ssp.stats.probabilistic_candidates <= structure.stats.probabilistic_candidates);
        // Structure does no probabilistic pruning at all.
        assert_eq!(structure.stats.pruned_by_upper, 0);
        assert_eq!(
            structure.stats.probabilistic_candidates,
            structure.stats.structural_candidates
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (engine, queries) = small_engine();
        let result = engine.query(&queries[0].graph, &QueryParams::default());
        let s = result.stats;
        assert_eq!(
            s.structural_candidates,
            s.pruned_by_upper + s.accepted_by_lower + s.verified
        );
        assert_eq!(s.probabilistic_candidates, s.accepted_by_lower + s.verified);
        assert!(s.total_seconds() >= s.verification_seconds);
        assert!(result.answers.windows(2).all(|w| w[0] < w[1]));
        // Answers accepted by the lower bound are included.
        assert!(result.answers.len() >= s.accepted_by_lower);
    }

    #[test]
    fn higher_epsilon_returns_fewer_answers() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let low = engine.query(
            q,
            &QueryParams {
                epsilon: 0.1,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            },
        );
        let high = engine.query(
            q,
            &QueryParams {
                epsilon: 0.9,
                delta: 1,
                variant: PruningVariant::OptSspBound,
            },
        );
        assert!(high.answers.len() <= low.answers.len());
        for a in &high.answers {
            assert!(low.answers.contains(a), "answers must be nested across ε");
        }
    }

    #[test]
    fn larger_delta_returns_more_answers() {
        let (engine, queries) = small_engine();
        let q = &queries[0].graph;
        let d1 = engine.query(
            q,
            &QueryParams {
                epsilon: 0.5,
                delta: 0,
                variant: PruningVariant::OptSspBound,
            },
        );
        let d2 = engine.query(
            q,
            &QueryParams {
                epsilon: 0.5,
                delta: 2,
                variant: PruningVariant::OptSspBound,
            },
        );
        assert!(d1.answers.len() <= d2.answers.len());
        for a in &d1.answers {
            assert!(d2.answers.contains(a), "answers must be nested across δ");
        }
    }

    #[test]
    fn engine_accessors() {
        let (engine, _) = small_engine();
        assert_eq!(engine.db().len(), 16);
        assert_eq!(engine.pmi().graph_count(), 16);
        assert!(engine.config().verify.max_embeddings > 0);
    }
}
