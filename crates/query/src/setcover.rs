//! Algorithm 1: the tightest upper bound `Usim(q)` as a weighted set cover.
//!
//! Every indexed feature `f_j` that is a subgraph of at least one relaxed query
//! defines a set `s_j ⊆ U = {rq_1, .., rq_a}` (the relaxed queries it is a
//! subgraph of) with weight `UpperB(f_j)`.  A cover `C` of `U` yields the valid
//! upper bound `Σ_{s_j ∈ C} UpperB(f_j)` of `Pr(q ⊆sim g)` (Theorem 3 applied
//! per covered element), so the *tightest* such bound is the minimum weight set
//! cover — NP-complete, approximated here with the classical greedy algorithm
//! (cost/coverage ratio), which is within `ln |U|` of the optimum.

/// A solved set cover instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SetCoverSolution {
    /// Indices (into the input set list) of the chosen sets, in pick order.
    pub chosen: Vec<usize>,
    /// Total weight of the chosen sets (the paper's `Usim(q)`).
    pub total_weight: f64,
    /// True if every universe element is covered.
    pub covered_all: bool,
}

/// Greedy weighted set cover (Algorithm 1).
///
/// * `universe_size` — `a = |U|`; elements are `0..a`.
/// * `sets` — `(elements, weight)` pairs; elements outside the universe are
///   ignored, weights must be non-negative.
///
/// Returns the greedy cover; if some element is not covered by any set the
/// solution has `covered_all == false` and covers as much as possible.
pub fn greedy_weighted_set_cover(
    universe_size: usize,
    sets: &[(Vec<usize>, f64)],
) -> SetCoverSolution {
    let mut covered = vec![false; universe_size];
    let mut num_covered = 0usize;
    let mut chosen = Vec::new();
    let mut total_weight = 0.0;
    let mut used = vec![false; sets.len()];

    while num_covered < universe_size {
        // Pick the set minimising weight / newly-covered (the paper's
        // γ(s) = w(s)·|s − A| written as a ratio; both orderings coincide for
        // the greedy argmin on uncovered counts — we use the standard
        // cost-effectiveness ratio).
        let mut best: Option<(usize, f64, usize)> = None; // (set index, ratio, new count)
        for (si, (elements, weight)) in sets.iter().enumerate() {
            if used[si] {
                continue;
            }
            let new_count = elements
                .iter()
                .filter(|&&e| e < universe_size && !covered[e])
                .count();
            if new_count == 0 {
                continue;
            }
            let ratio = weight.max(0.0) / new_count as f64;
            let better = match best {
                None => true,
                Some((_, best_ratio, best_new)) => {
                    ratio < best_ratio - 1e-15
                        || ((ratio - best_ratio).abs() <= 1e-15 && new_count > best_new)
                }
            };
            if better {
                best = Some((si, ratio, new_count));
            }
        }
        match best {
            None => break, // nothing can cover the remaining elements
            Some((si, _, _)) => {
                used[si] = true;
                chosen.push(si);
                total_weight += sets[si].1.max(0.0);
                for &e in &sets[si].0 {
                    if e < universe_size && !covered[e] {
                        covered[e] = true;
                        num_covered += 1;
                    }
                }
            }
        }
    }

    SetCoverSolution {
        chosen,
        total_weight,
        covered_all: num_covered == universe_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_from_the_paper() {
        // Figure 5 / Example 3: U = {rq1, rq2, rq3}; s1 = {rq1, rq2} w=0.4,
        // s2 = {rq2, rq3} w=0.1, s3 = {rq1, rq3} w=0.5.  The candidate covers
        // are {s1,s2}=0.5, {s1,s3}=0.9, {s2,s3}=0.6; the tightest Usim is 0.5.
        let sets = vec![(vec![0, 1], 0.4), (vec![1, 2], 0.1), (vec![0, 2], 0.5)];
        let sol = greedy_weighted_set_cover(3, &sets);
        assert!(sol.covered_all);
        assert!(
            (sol.total_weight - 0.5).abs() < 1e-12,
            "Usim = {}",
            sol.total_weight
        );
        let mut chosen = sol.chosen.clone();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 1]);
    }

    #[test]
    fn single_set_covering_everything() {
        let sets = vec![(vec![0, 1, 2], 0.7), (vec![0], 0.3)];
        let sol = greedy_weighted_set_cover(3, &sets);
        assert!(sol.covered_all);
        // Ratio 0.7/3 ≈ 0.233 beats 0.3/1: the big set alone is chosen.
        assert_eq!(sol.chosen, vec![0]);
        assert!((sol.total_weight - 0.7).abs() < 1e-12);
    }

    #[test]
    fn uncoverable_elements_are_reported() {
        let sets = vec![(vec![0], 0.2)];
        let sol = greedy_weighted_set_cover(2, &sets);
        assert!(!sol.covered_all);
        assert_eq!(sol.chosen, vec![0]);
        assert!((sol.total_weight - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_universe_is_trivially_covered() {
        let sol = greedy_weighted_set_cover(0, &[(vec![0], 0.5)]);
        assert!(sol.covered_all);
        assert!(sol.chosen.is_empty());
        assert_eq!(sol.total_weight, 0.0);
    }

    #[test]
    fn empty_set_list() {
        let sol = greedy_weighted_set_cover(2, &[]);
        assert!(!sol.covered_all);
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn out_of_range_elements_are_ignored() {
        let sets = vec![(vec![0, 7, 9], 0.3), (vec![1], 0.2)];
        let sol = greedy_weighted_set_cover(2, &sets);
        assert!(sol.covered_all);
        assert!((sol.total_weight - 0.5).abs() < 1e-12);
    }

    #[test]
    fn greedy_is_within_ln_factor_on_adversarial_instance() {
        // Classic bad case for greedy: optimal = 2 big sets, greedy may pick the
        // small cheap ones. Whatever it picks must cover and must not exceed
        // OPT * ln(n) (here n = 6, OPT = 2.0, bound ≈ 3.58).
        let sets = vec![
            (vec![0, 1, 2], 1.0),
            (vec![3, 4, 5], 1.0),
            (vec![0, 3], 0.4),
            (vec![1, 4], 0.4),
            (vec![2, 5], 0.4),
        ];
        let sol = greedy_weighted_set_cover(6, &sets);
        assert!(sol.covered_all);
        assert!(sol.total_weight <= 2.0 * (6.0f64).ln() + 1e-9);
    }

    #[test]
    fn zero_weight_sets_are_free() {
        let sets = vec![(vec![0, 1], 0.0), (vec![2], 0.9)];
        let sol = greedy_weighted_set_cover(3, &sets);
        assert!(sol.covered_all);
        assert!((sol.total_weight - 0.9).abs() < 1e-12);
    }
}
