//! Probabilistic pruning (Section 3): the PMI-based upper/lower bounds of the
//! subgraph similarity probability and the two pruning rules.
//!
//! For a candidate graph `g` (column of the PMI) and the relaxed query set
//! `U = {rq_1, .., rq_a}`:
//!
//! * **Pruning rule 1** (Theorem 3) — any family of indexed features covering
//!   `U` from below (`f_j ⊆iso rq_i`) yields the upper bound
//!   `Usim(q) = Σ UpperB(f_j)`; if `Usim(q) < ε` the graph is pruned.
//! * **Pruning rule 2** (Theorem 4) — any family of features covering `U` from
//!   above (`rq_i ⊆iso f_j`) yields the lower bound
//!   `Lsim(q) = Σ LowerB(f_j) − Σ cross(f_i, f_j)`; if `Lsim(q) ≥ ε` the graph
//!   is a guaranteed answer.
//!
//! The *tightest* bounds use the greedy set cover of Algorithm 1 and the
//! QP/rounding of Algorithm 2 (the paper's `OPT-SSPBound`); the untightened
//! variant picks one arbitrary qualifying feature per relaxed query (the
//! paper's `SSPBound`), which is what Section 6 benchmarks against.

use crate::qp::{tightest_lsim, LsimSet, QpOptions};
use crate::setcover::greedy_weighted_set_cover;
use pgs_graph::model::Graph;
use pgs_graph::vf2::contains_subgraph;
use pgs_index::pmi::Pmi;
use rand::Rng;

/// How the pairwise cross term of the lower bound is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrossTermRule {
    /// `min(UpperB_i, UpperB_j)` — always a valid upper bound of the joint
    /// probability, hence the resulting `Lsim` is always a true lower bound.
    #[default]
    SafeMin,
    /// `UpperB_i · UpperB_j` — the formula printed in the paper (Theorem 4);
    /// tighter, but only valid when the feature events are (close to)
    /// independent.
    PaperProduct,
}

/// The per-graph set-cover instance extracted from the PMI (the paper's `D_g`
/// re-indexed by relaxed query).
#[derive(Debug, Clone, Default)]
pub struct BoundInstance {
    /// Number of relaxed queries (`a = |U|`).
    pub universe: usize,
    /// For Usim: `(feature id, relaxed queries containing the feature, UpperB)`.
    pub subgraph_sets: Vec<(usize, Vec<usize>, f64)>,
    /// For Lsim: `(feature id, relaxed queries contained in the feature,
    /// LowerB, UpperB)`.
    pub supergraph_sets: Vec<(usize, Vec<usize>, f64, f64)>,
}

impl BoundInstance {
    /// Builds the instance for PMI column `graph_idx` and relaxed query set `relaxed`.
    pub fn build(pmi: &Pmi, graph_idx: usize, relaxed: &[Graph]) -> BoundInstance {
        let mut instance = BoundInstance {
            universe: relaxed.len(),
            ..BoundInstance::default()
        };
        for feature in pmi.features() {
            // Figure 4's convention: a feature that is not a subgraph of the
            // skeleton has the entry ⟨0⟩, i.e. `UpperB = LowerB = 0`.  Such
            // zero-weight sets make the upper-bound cover maximally tight
            // (any relaxed query containing an absent feature has probability
            // zero), while they are useless for the lower bound and skipped.
            let bounds = pmi
                .bounds(graph_idx, feature.id)
                .unwrap_or(pgs_index::sip_bounds::SipBounds::ABSENT);
            let present = pmi.bounds(graph_idx, feature.id).is_some();
            let mut contained_in: Vec<usize> = Vec::new(); // f ⊆iso rq
            let mut contains: Vec<usize> = Vec::new(); // rq ⊆iso f
            for (ri, rq) in relaxed.iter().enumerate() {
                if feature.graph.edge_count() <= rq.edge_count()
                    && contains_subgraph(&feature.graph, rq)
                {
                    contained_in.push(ri);
                }
                if present
                    && rq.edge_count() <= feature.graph.edge_count()
                    && contains_subgraph(rq, &feature.graph)
                {
                    contains.push(ri);
                }
            }
            if !contained_in.is_empty() {
                instance
                    .subgraph_sets
                    .push((feature.id, contained_in, bounds.upper));
            }
            if !contains.is_empty() {
                instance
                    .supergraph_sets
                    .push((feature.id, contains, bounds.lower, bounds.upper));
            }
        }
        instance
    }

    /// The tightest `Usim(q)` (Algorithm 1).  Relaxed queries not covered by
    /// any feature fall back to the trivial per-element bound of 1.0.
    pub fn usim_optimal(&self) -> f64 {
        let mut sets: Vec<(Vec<usize>, f64)> = self
            .subgraph_sets
            .iter()
            .map(|(_, elems, upper)| (elems.clone(), *upper))
            .collect();
        // Trivial fallback sets guarantee coverage.
        let covered: Vec<bool> = coverage(self.universe, sets.iter().map(|(e, _)| e.as_slice()));
        for (i, c) in covered.iter().enumerate() {
            if !c {
                sets.push((vec![i], 1.0));
            }
        }
        let solution = greedy_weighted_set_cover(self.universe, &sets);
        solution.total_weight
    }

    /// The untightened `Usim(q)`: one arbitrary qualifying feature per relaxed
    /// query (the `SSPBound` baseline).
    pub fn usim_random<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut total = 0.0;
        for element in 0..self.universe {
            let candidates: Vec<f64> = self
                .subgraph_sets
                .iter()
                .filter(|(_, elems, _)| elems.contains(&element))
                .map(|(_, _, upper)| *upper)
                .collect();
            total += if candidates.is_empty() {
                1.0
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            };
        }
        total
    }

    /// The tightest `Lsim(q)` (Algorithm 2).
    pub fn lsim_optimal<R: Rng + ?Sized>(&self, cross: CrossTermRule, rng: &mut R) -> f64 {
        let sets: Vec<LsimSet> = self
            .supergraph_sets
            .iter()
            .map(|(_, elems, lower, upper)| LsimSet {
                elements: elems.clone(),
                lower: *lower,
                upper: *upper,
            })
            .collect();
        let options = QpOptions {
            paper_product_cross_term: cross == CrossTermRule::PaperProduct,
            ..QpOptions::default()
        };
        tightest_lsim(self.universe, &sets, &options, rng).value
    }

    /// The untightened `Lsim(q)`: one arbitrary qualifying feature per relaxed
    /// query; zero when some relaxed query has none.
    pub fn lsim_random<R: Rng + ?Sized>(&self, cross: CrossTermRule, rng: &mut R) -> f64 {
        let mut chosen: Vec<usize> = Vec::new();
        for element in 0..self.universe {
            let candidates: Vec<usize> = self
                .supergraph_sets
                .iter()
                .enumerate()
                .filter(|(_, (_, elems, _, _))| elems.contains(&element))
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                return 0.0;
            }
            let pick = candidates[rng.gen_range(0..candidates.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        let options = QpOptions {
            paper_product_cross_term: cross == CrossTermRule::PaperProduct,
            ..QpOptions::default()
        };
        let sets: Vec<LsimSet> = self
            .supergraph_sets
            .iter()
            .map(|(_, elems, lower, upper)| LsimSet {
                elements: elems.clone(),
                lower: *lower,
                upper: *upper,
            })
            .collect();
        crate::qp::lsim_value(&sets, &chosen, &options)
    }
}

fn coverage<'a>(universe: usize, sets: impl Iterator<Item = &'a [usize]>) -> Vec<bool> {
    let mut covered = vec![false; universe];
    for set in sets {
        for &e in set {
            if e < universe {
                covered[e] = true;
            }
        }
    }
    covered
}

/// Decision taken for one candidate graph during probabilistic pruning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneDecision {
    /// `Usim(q) < ε`: the graph cannot be an answer (Pruning rule 1).
    Pruned {
        /// The computed upper bound.
        usim: f64,
    },
    /// `Lsim(q) ≥ ε`: the graph is an answer without verification (rule 2).
    Accepted {
        /// The computed lower bound.
        lsim: f64,
    },
    /// Neither rule fired; the graph goes to verification.
    Candidate {
        /// The computed upper bound.
        usim: f64,
        /// The computed lower bound.
        lsim: f64,
    },
}

/// Outcome of probabilistic pruning over a whole candidate set.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Graphs accepted by Pruning rule 2 (guaranteed answers).
    pub accepted: Vec<usize>,
    /// Graphs that still need verification.
    pub candidates: Vec<usize>,
    /// Graphs discarded by Pruning rule 1.
    pub pruned: Vec<usize>,
}

impl PruneOutcome {
    /// Number of graphs that survived rule 1 (the paper's "candidate size"
    /// metric for the probabilistic pruning figures).
    pub fn surviving(&self) -> usize {
        self.accepted.len() + self.candidates.len()
    }
}

impl PruneOutcome {
    /// Partitions `candidate_graphs` according to per-candidate `decisions`
    /// (parallel slices of equal length).  Because each decision is pushed in
    /// candidate order, the three index lists stay sorted whenever the input
    /// candidate list is sorted — the parallel executor relies on this to
    /// produce thread-count-independent outcomes.
    pub fn from_decisions(candidate_graphs: &[usize], decisions: &[PruneDecision]) -> PruneOutcome {
        debug_assert_eq!(candidate_graphs.len(), decisions.len());
        let mut outcome = PruneOutcome::default();
        for (&gi, decision) in candidate_graphs.iter().zip(decisions) {
            match decision {
                PruneDecision::Pruned { .. } => outcome.pruned.push(gi),
                PruneDecision::Accepted { .. } => outcome.accepted.push(gi),
                PruneDecision::Candidate { .. } => outcome.candidates.push(gi),
            }
        }
        outcome
    }
}

/// Evaluates both pruning rules for a single candidate graph: builds the
/// set-cover instance from the PMI column and computes `Usim`/`Lsim`.
///
/// This is the unit of work the parallel executor fans out — each candidate
/// gets its own deterministically seeded RNG, so the decision depends only on
/// `(pmi, graph_idx, relaxed, epsilon, rng seed)` and never on how many other
/// candidates were evaluated before it.
pub fn prune_candidate<R: Rng + ?Sized>(
    pmi: &Pmi,
    graph_idx: usize,
    relaxed: &[Graph],
    epsilon: f64,
    optimal: bool,
    cross: CrossTermRule,
    rng: &mut R,
) -> PruneDecision {
    let (usim, lsim) = bound_candidate(pmi, graph_idx, relaxed, optimal, cross, rng);
    if usim < epsilon {
        PruneDecision::Pruned { usim }
    } else if lsim >= epsilon {
        PruneDecision::Accepted { lsim }
    } else {
        PruneDecision::Candidate { usim, lsim }
    }
}

/// Computes the `(Usim, Lsim)` bound pair for a single candidate without
/// applying either pruning rule — the ranked top-k path orders candidates by
/// `Usim` and seeds its running k-th-best cut with `Lsim`, so it needs the
/// raw bounds rather than an ε-decision.
///
/// [`prune_candidate`] is this function plus the two rules; both draw from
/// `rng` in the same order (`usim_random` before `lsim_*`), so for a fixed
/// seeded RNG the bounds here are bit-identical to what the threshold path
/// computes.
pub fn bound_candidate<R: Rng + ?Sized>(
    pmi: &Pmi,
    graph_idx: usize,
    relaxed: &[Graph],
    optimal: bool,
    cross: CrossTermRule,
    rng: &mut R,
) -> (f64, f64) {
    let instance = BoundInstance::build(pmi, graph_idx, relaxed);
    let usim = if optimal {
        instance.usim_optimal()
    } else {
        instance.usim_random(rng)
    };
    let lsim = if optimal {
        instance.lsim_optimal(cross, rng)
    } else {
        instance.lsim_random(cross, rng)
    };
    (usim, lsim)
}

/// Applies probabilistic pruning to `candidate_graphs` (indices into the PMI
/// columns / database) sequentially, threading one shared RNG through every
/// candidate.
///
/// `optimal` selects between the tightest bounds (Algorithms 1 and 2,
/// `OPT-SSPBound`) and the untightened single-feature bounds (`SSPBound`).
/// Note the shared RNG makes the *randomised* bound variants depend on the
/// candidate iteration order; the query pipeline instead seeds a fresh RNG per
/// candidate (see `QueryEngine`), which is both order-independent and
/// parallelisable.
#[allow(clippy::too_many_arguments)]
pub fn probabilistic_prune<R: Rng + ?Sized>(
    pmi: &Pmi,
    candidate_graphs: &[usize],
    relaxed: &[Graph],
    epsilon: f64,
    optimal: bool,
    cross: CrossTermRule,
    rng: &mut R,
) -> (PruneOutcome, Vec<PruneDecision>) {
    let decisions: Vec<PruneDecision> = candidate_graphs
        .iter()
        .map(|&gi| prune_candidate(pmi, gi, relaxed, epsilon, optimal, cross, rng))
        .collect();
    let outcome = PruneOutcome::from_decisions(candidate_graphs, &decisions);
    (outcome, decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_graph::relax::relax_query;
    use pgs_index::feature::FeatureSelectionParams;
    use pgs_index::pmi::PmiBuildParams;
    use pgs_index::sip_bounds::BoundsConfig;
    use pgs_prob::exact::exact_ssp;
    use pgs_prob::jpt::JointProbTable;
    use pgs_prob::model::ProbabilisticGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn database() -> Vec<ProbabilisticGraph> {
        // Three graphs built from a-b / b-c edges with different shapes so the
        // pruning outcome differs per graph.
        let mk = |edges: &[(u32, u32)], labels: &[u32], probs: &[f64], name: &str| {
            let mut b = GraphBuilder::new().name(name).vertices(labels);
            for &(u, v) in edges {
                b = b.edge(u, v, 9);
            }
            let g = b.build();
            let tables: Vec<JointProbTable> = pgs_prob::neighbor::partition_with_triangles(&g, 3)
                .iter()
                .map(|grp| {
                    let ep: Vec<(EdgeId, f64)> =
                        grp.iter().map(|&e| (e, probs[e.index()])).collect();
                    JointProbTable::from_max_rule(&ep).unwrap()
                })
                .collect();
            ProbabilisticGraph::new(g, tables, true).unwrap()
        };
        vec![
            // Contains the whole query with high probabilities.
            mk(
                &[(0, 1), (1, 2), (0, 2), (2, 3)],
                &[0, 1, 2, 1],
                &[0.9, 0.9, 0.9, 0.8],
                "high",
            ),
            // Contains the whole query with low probabilities.
            mk(
                &[(0, 1), (1, 2), (0, 2)],
                &[0, 1, 2],
                &[0.15, 0.1, 0.12],
                "low",
            ),
            // Contains only part of the query.
            mk(&[(0, 1), (1, 2)], &[0, 1, 0], &[0.8, 0.7], "partial"),
        ]
    }

    fn query() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    fn build_pmi(db: &[ProbabilisticGraph]) -> Pmi {
        Pmi::build(
            db,
            &PmiBuildParams {
                features: FeatureSelectionParams {
                    alpha: 0.0,
                    beta: 0.3,
                    gamma: 0.0,
                    max_l: 3,
                    max_features: 16,
                    max_embeddings: 16,
                },
                bounds: BoundsConfig::default(),
                threads: 1,
                seed: 5,
            },
        )
    }

    #[test]
    fn bounds_bracket_the_exact_ssp() {
        let db = database();
        let pmi = build_pmi(&db);
        let q = query();
        let delta = 1usize;
        let relaxed = relax_query(&q, delta);
        let mut rng = StdRng::seed_from_u64(3);
        for (gi, pg) in db.iter().enumerate() {
            let instance = BoundInstance::build(&pmi, gi, &relaxed);
            let usim = instance.usim_optimal();
            let lsim = instance.lsim_optimal(CrossTermRule::SafeMin, &mut rng);
            let exact = exact_ssp(pg, &q, delta, 22).unwrap();
            assert!(
                lsim <= exact + 1e-9,
                "graph {gi}: Lsim {lsim} exceeds exact SSP {exact}"
            );
            assert!(
                usim + 1e-9 >= exact,
                "graph {gi}: Usim {usim} undercuts exact SSP {exact}"
            );
        }
    }

    #[test]
    fn optimal_bounds_are_tighter_than_random_bounds() {
        let db = database();
        let pmi = build_pmi(&db);
        let q = query();
        let relaxed = relax_query(&q, 1);
        let mut rng = StdRng::seed_from_u64(11);
        for gi in 0..db.len() {
            let instance = BoundInstance::build(&pmi, gi, &relaxed);
            let opt_u = instance.usim_optimal();
            let opt_l = instance.lsim_optimal(CrossTermRule::SafeMin, &mut rng);
            // Average the random upper-bound variant over a few draws; the
            // greedy cover must not be worse than an average arbitrary pick.
            let mut rand_u = 0.0;
            let draws = 8;
            for _ in 0..draws {
                rand_u += instance.usim_random(&mut rng);
            }
            rand_u /= draws as f64;
            assert!(
                opt_u <= rand_u + 1e-9,
                "graph {gi}: OPT Usim {opt_u} worse than random {rand_u}"
            );
            let rand_l = instance.lsim_random(CrossTermRule::SafeMin, &mut rng);
            assert!(opt_l >= 0.0 && rand_l >= 0.0);
            assert!(opt_l <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn pruning_rules_partition_the_candidates() {
        let db = database();
        let pmi = build_pmi(&db);
        let q = query();
        let relaxed = relax_query(&q, 1);
        let mut rng = StdRng::seed_from_u64(17);
        let all: Vec<usize> = (0..db.len()).collect();
        let (outcome, decisions) = probabilistic_prune(
            &pmi,
            &all,
            &relaxed,
            0.5,
            true,
            CrossTermRule::SafeMin,
            &mut rng,
        );
        assert_eq!(decisions.len(), 3);
        assert_eq!(
            outcome.accepted.len() + outcome.candidates.len() + outcome.pruned.len(),
            3
        );
        // No graph may be both pruned and an actual answer: cross-check against
        // the exact SSP.
        for &gi in &outcome.pruned {
            let exact = exact_ssp(&db[gi], &q, 1, 22).unwrap();
            assert!(exact < 0.5, "graph {gi} wrongly pruned (exact SSP {exact})");
        }
        for &gi in &outcome.accepted {
            let exact = exact_ssp(&db[gi], &q, 1, 22).unwrap();
            assert!(
                exact >= 0.5 - 1e-9,
                "graph {gi} wrongly accepted (exact SSP {exact})"
            );
        }
    }

    #[test]
    fn high_threshold_prunes_low_probability_graphs() {
        let db = database();
        let pmi = build_pmi(&db);
        let q = query();
        let relaxed = relax_query(&q, 1);
        let mut rng = StdRng::seed_from_u64(23);
        let all: Vec<usize> = (0..db.len()).collect();
        let (strict, _) = probabilistic_prune(
            &pmi,
            &all,
            &relaxed,
            0.95,
            true,
            CrossTermRule::SafeMin,
            &mut rng,
        );
        let (lax, _) = probabilistic_prune(
            &pmi,
            &all,
            &relaxed,
            0.05,
            true,
            CrossTermRule::SafeMin,
            &mut rng,
        );
        assert!(
            strict.surviving() <= lax.surviving(),
            "higher ε must not keep more graphs"
        );
    }

    #[test]
    fn empty_candidate_list() {
        let db = database();
        let pmi = build_pmi(&db);
        let relaxed = relax_query(&query(), 1);
        let mut rng = StdRng::seed_from_u64(29);
        let (outcome, decisions) = probabilistic_prune(
            &pmi,
            &[],
            &relaxed,
            0.5,
            true,
            CrossTermRule::SafeMin,
            &mut rng,
        );
        assert!(decisions.is_empty());
        assert_eq!(outcome.surviving(), 0);
        assert!(outcome.pruned.is_empty());
    }

    #[test]
    fn instance_sets_reference_valid_features() {
        let db = database();
        let pmi = build_pmi(&db);
        let relaxed = relax_query(&query(), 1);
        let instance = BoundInstance::build(&pmi, 0, &relaxed);
        assert_eq!(instance.universe, relaxed.len());
        for (fid, elems, upper) in &instance.subgraph_sets {
            assert!(*fid < pmi.features().len());
            assert!((0.0..=1.0).contains(upper));
            for &e in elems {
                assert!(e < relaxed.len());
                // Feature really is a subgraph of the relaxed query.
                assert!(contains_subgraph(&pmi.features()[*fid].graph, &relaxed[e]));
            }
        }
        for (fid, elems, lower, upper) in &instance.supergraph_sets {
            assert!(*fid < pmi.features().len());
            assert!(lower <= upper);
            for &e in elems {
                assert!(contains_subgraph(&relaxed[e], &pmi.features()[*fid].graph));
            }
        }
    }
}
