//! Structural pruning (the pipeline's first phase).
//!
//! Theorem 1: if the query is not subgraph-similar to the deterministic
//! skeleton `gc`, the subgraph similarity probability is zero, so the graph can
//! be discarded without touching any probability.  The paper delegates this
//! phase to Grafil \[38\], a multi-filter feature-count framework; the same idea
//! is implemented here in two stages:
//!
//! 1. **Feature-count filter** — for every edge signature (edge label +
//!    endpoint labels) the data graph must contain at least
//!    `count_q(sig) − δ` occurrences; a graph whose total signature deficit
//!    exceeds `δ` cannot be within subgraph distance `δ` (each deleted edge
//!    removes at most one occurrence).  This is Grafil's edge-feature filter.
//! 2. **Exact check** — surviving graphs are confirmed with the subgraph
//!    distance of Definition 8 (`pgs_graph::mcs::subgraph_similar`), so the
//!    phase returns exactly `SC_q = {g | dis(q, gc) ≤ δ}` as assumed by
//!    Section 1.2.
//!
//! Two implementations of stage 1 exist:
//!
//! * [`structural_candidates_indexed`] — the production path.  The query's
//!   summary is computed **once**, the deficit filter runs over the S-Index
//!   posting lists (`pgs_index::sindex`), touching only graphs that share at
//!   least one edge signature with the query, and the exact check reuses the
//!   cached per-graph summaries.  Sublinear in the database size for
//!   selective queries.
//! * [`structural_candidates`] / [`structural_candidates_threaded`] — the
//!   brute-force reference: a full scan with the per-graph filter.  The query
//!   histogram is still computed once per query (it used to be rebuilt inside
//!   the per-candidate closure — the bug this module's rewrite fixed), but
//!   every skeleton is visited.  Kept for index-free callers, the
//!   equivalence property tests and the `bench-structural` baseline.
//!
//! Both return the same index set, bit for bit, for every input — the
//! determinism suite and a randomized property test pin this.

use pgs_graph::mcs::{subgraph_similar, SimilarityTester};
use pgs_graph::model::Graph;
use pgs_graph::parallel::{par_map_chunked_costed, CostHint};
use pgs_graph::summary::StructuralSummary;
use pgs_index::sindex::StructuralIndex;

/// Work counters of one indexed structural phase run
/// (surfaced as `PhaseStats` fields).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructuralFilterStats {
    /// Posting entries walked during deficit accumulation.
    pub posting_entries_scanned: usize,
    /// Graphs surviving the feature-count filter (= graphs handed to the
    /// exact subgraph-distance check).
    pub filter_survivors: usize,
}

/// Returns the indices of the skeleton graphs that are deterministically
/// subgraph-similar to `q` under distance threshold `delta` (the set `SC_q`),
/// by brute-force scan.
pub fn structural_candidates(skeletons: &[Graph], q: &Graph, delta: usize) -> Vec<usize> {
    structural_candidates_threaded(skeletons, q, delta, 1)
}

/// [`structural_candidates`] evaluated with up to `threads` pool workers
/// (`0` = automatic).  Every skeleton is tested independently, so the returned
/// index list is identical for every thread count (ascending order).
pub fn structural_candidates_threaded(
    skeletons: &[Graph],
    q: &Graph,
    delta: usize,
    threads: usize,
) -> Vec<usize> {
    // Computed once per query and shared by every worker — not once per
    // candidate skeleton.
    let q_summary = StructuralSummary::of(q);
    // A filter probe is cheap but the exact subgraph-distance check behind it
    // is tens of microseconds: moderate items, parallel from ~20 skeletons.
    let keep = par_map_chunked_costed(skeletons, threads, CostHint::MODERATE, |_, g| {
        passes_feature_count_filter_summarized(&q_summary, g, delta)
            && subgraph_similar(q, g, delta)
    });
    keep.iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

/// `SC_q` via the S-Index: posting-list deficit accumulation generates the
/// filter survivors without touching unrelated graphs, then the exact check
/// confirms them — through one [`SimilarityTester`], so the query summary
/// *and* the edge-deleted sub-patterns are derived once per query instead of
/// once per candidate.  Returns the candidate list
/// (ascending, identical to [`structural_candidates`]) plus the phase's work
/// counters.
///
/// `index` must summarise exactly `skeletons` (the engine keeps the two
/// aligned through builds and incremental mutations).
pub fn structural_candidates_indexed(
    index: &StructuralIndex,
    skeletons: &[Graph],
    q: &Graph,
    delta: usize,
    threads: usize,
) -> (Vec<usize>, StructuralFilterStats) {
    debug_assert_eq!(index.graph_count(), skeletons.len());
    let tester = SimilarityTester::new(q, delta);
    let outcome = index.filter_candidates(tester.query_summary().view(), delta);
    let stats = StructuralFilterStats {
        posting_entries_scanned: outcome.posting_entries_scanned,
        filter_survivors: outcome.candidates.len(),
    };
    let keep = par_map_chunked_costed(
        &outcome.candidates,
        threads,
        CostHint::MODERATE,
        |_, &gi| tester.matches(&skeletons[gi], index.summary(gi)),
    );
    let candidates = outcome
        .candidates
        .iter()
        .zip(&keep)
        .filter_map(|(&gi, &k)| k.then_some(gi))
        .collect();
    (candidates, stats)
}

/// `SC_q` over a *sharded* S-Index: each shard's posting lists generate and
/// exact-check its own members (through the one shared [`SimilarityTester`]),
/// the shards fan out on the worker pool, and the per-shard global-id lists
/// are merged ascending.  Postings partition exactly across shards, so the
/// merged candidate list *and* both work counters are identical to running
/// [`structural_candidates_indexed`] on the equivalent global index — the
/// shard fan-out is invisible in every output.
///
/// `shards` pairs each shard's index with its member list (global graph ids,
/// ascending); `skeletons` stays globally indexed.
pub fn structural_candidates_sharded(
    shards: &[(&StructuralIndex, &[u32])],
    skeletons: &[Graph],
    q: &Graph,
    delta: usize,
    threads: usize,
) -> (Vec<usize>, StructuralFilterStats) {
    let tester = SimilarityTester::new(q, delta);
    if pgs_graph::parallel::resolve_threads(threads) <= 1 {
        // Single worker: fuse the per-shard scans into ONE global deficit
        // accumulation (`StructuralIndex::accumulate_mass_into`) — a graph's
        // postings live entirely in its owning shard, so mapping local ids
        // through the member lists on the fly accumulates exactly the
        // per-shard masses into one database-wide array, with one touched
        // list and one sort instead of one per shard plus a survivor
        // re-sort.  Same entries scanned, same survivors, no fan-out to pay
        // for.
        let view = tester.query_summary().view();
        let m = view.edge_count();
        let mut stats = StructuralFilterStats::default();
        let mut survivors: Vec<(u32, u32, u32)> = Vec::new();
        if m <= delta {
            // Vacuous filter (mirrors `filter_into`): every graph survives
            // and no posting list is walked.
            for (s, &(index, members)) in shards.iter().enumerate() {
                debug_assert_eq!(index.graph_count(), members.len());
                stats.filter_survivors += members.len();
                survivors.extend(
                    members
                        .iter()
                        .enumerate()
                        .map(|(li, &g)| (g, s as u32, li as u32)),
                );
            }
        } else {
            let mut mass = vec![0u32; skeletons.len()];
            let mut touched: Vec<(u32, u32, u32)> = Vec::new();
            for (s, &(index, members)) in shards.iter().enumerate() {
                debug_assert_eq!(index.graph_count(), members.len());
                stats.posting_entries_scanned +=
                    index.accumulate_mass_into(view, s as u32, members, &mut mass, &mut touched);
            }
            let need = (m - delta) as u32;
            survivors.extend(
                touched
                    .into_iter()
                    .filter(|&(g, ..)| mass[g as usize] >= need),
            );
            stats.filter_survivors = survivors.len();
        }
        // Global ids are unique across shards, so sorting the triples sorts
        // by global id; the exact checks then scan the skeletons ascending.
        survivors.sort_unstable();
        let mut candidates = Vec::new();
        for &(gi, s, li) in &survivors {
            if tester.matches(
                &skeletons[gi as usize],
                shards[s as usize].0.summary(li as usize),
            ) {
                candidates.push(gi as usize);
            }
        }
        return (candidates, stats);
    }
    // One worker per shard: the inner exact checks run sequentially inside
    // it (threads = 1) so the pool is not oversubscribed.
    let per_shard =
        par_map_chunked_costed(shards, threads, CostHint::HEAVY, |_, &(index, members)| {
            debug_assert_eq!(index.graph_count(), members.len());
            let outcome = index.filter_candidates(tester.query_summary().view(), delta);
            let survivors = outcome.candidates.len();
            let kept: Vec<usize> = outcome
                .candidates
                .into_iter()
                .filter(|&li| {
                    let gi = members[li] as usize;
                    tester.matches(&skeletons[gi], index.summary(li))
                })
                .map(|li| members[li] as usize)
                .collect();
            (kept, outcome.posting_entries_scanned, survivors)
        });
    let mut stats = StructuralFilterStats::default();
    let mut candidates = Vec::new();
    for (kept, scanned, survivors) in per_shard {
        stats.posting_entries_scanned += scanned;
        stats.filter_survivors += survivors;
        candidates.extend(kept);
    }
    candidates.sort_unstable();
    (candidates, stats)
}

/// Grafil-style edge-signature count filter: a necessary condition for
/// `dis(q, g) ≤ delta`.
pub fn passes_feature_count_filter(q: &Graph, g: &Graph, delta: usize) -> bool {
    passes_feature_count_filter_summarized(&StructuralSummary::of(q), g, delta)
}

/// [`passes_feature_count_filter`] against a precomputed query summary, so a
/// scan over many graphs builds the query histogram exactly once.  Only the
/// data graph's edge-signature histogram is needed — building its full
/// summary (vertex labels, degree sort) here would make the scan pay for
/// state it never reads.
pub fn passes_feature_count_filter_summarized(
    q_summary: &StructuralSummary,
    g: &Graph,
    delta: usize,
) -> bool {
    if q_summary.edge_count() <= delta {
        return true;
    }
    // Every edge deletion removes exactly one edge-signature occurrence from
    // the query, so if `q` minus at most `delta` edges embeds in `g`, the total
    // per-signature deficit `Σ max(0, count_q(sig) − count_g(sig))` cannot
    // exceed `delta`.
    let gh = g.edge_signature_histogram();
    let mut deficit = 0usize;
    for &(sig, qc) in q_summary.edge_signatures() {
        deficit += (qc as usize).saturating_sub(gh.get(&sig).copied().unwrap_or(0));
        if deficit > delta {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::GraphBuilder;

    fn query() -> Graph {
        // Triangle a-b-c (Figure 1's q).
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    fn database() -> Vec<Graph> {
        vec![
            // 0: graph 001 — triangle a, b, d: shares only the a-b edge (dis = 2).
            GraphBuilder::new()
                .vertices(&[0, 1, 3])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .build(),
            // 1: graph 002 — contains a-b and b-c edges (dis = 1).
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 2])
                .edge(0, 1, 9)
                .edge(0, 2, 9)
                .edge(1, 2, 9)
                .edge(2, 3, 9)
                .edge(2, 4, 9)
                .build(),
            // 2: exact super-graph of the query (dis = 0).
            GraphBuilder::new()
                .vertices(&[0, 1, 2, 5])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .edge(2, 3, 9)
                .build(),
            // 3: completely unrelated labels (dis = 3).
            GraphBuilder::new()
                .vertices(&[7, 8, 9])
                .edge(0, 1, 1)
                .edge(1, 2, 1)
                .build(),
        ]
    }

    #[test]
    fn candidates_match_the_exact_distance_semantics() {
        let db = database();
        let q = query();
        assert_eq!(structural_candidates(&db, &q, 0), vec![2]);
        assert_eq!(structural_candidates(&db, &q, 1), vec![1, 2]);
        assert_eq!(structural_candidates(&db, &q, 2), vec![0, 1, 2]);
        assert_eq!(structural_candidates(&db, &q, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn indexed_candidates_match_the_bruteforce_scan() {
        let db = database();
        let index = StructuralIndex::build(&db);
        let q = query();
        for delta in 0..=4 {
            let brute = structural_candidates(&db, &q, delta);
            for threads in [1usize, 0, 3] {
                let (indexed, stats) =
                    structural_candidates_indexed(&index, &db, &q, delta, threads);
                assert_eq!(indexed, brute, "delta = {delta}, threads = {threads}");
                assert!(stats.filter_survivors >= indexed.len());
            }
        }
        // The unrelated graph 3 is never even touched for a selective query.
        let (_, stats) = structural_candidates_indexed(&index, &db, &q, 0, 1);
        assert_eq!(stats.filter_survivors, 1);
        assert!(stats.posting_entries_scanned > 0);
    }

    #[test]
    fn sharded_candidates_and_stats_match_the_global_index() {
        let db = database();
        let q = query();
        let global = StructuralIndex::build(&db);
        // A hand-rolled 3-shard partition (membership does not matter for
        // equivalence — any partition must give identical output).
        let members: [&[u32]; 3] = [&[1, 3], &[0], &[2]];
        let shard_dbs: Vec<Vec<Graph>> = members
            .iter()
            .map(|m| m.iter().map(|&g| db[g as usize].clone()).collect())
            .collect();
        let indexes: Vec<StructuralIndex> = shard_dbs
            .iter()
            .map(|d| StructuralIndex::build(d))
            .collect();
        let shards: Vec<(&StructuralIndex, &[u32])> = indexes.iter().zip(members).collect();
        for delta in 0..=4 {
            let (want, want_stats) = structural_candidates_indexed(&global, &db, &q, delta, 1);
            for threads in [1usize, 0, 3] {
                let (got, got_stats) =
                    structural_candidates_sharded(&shards, &db, &q, delta, threads);
                assert_eq!(got, want, "delta = {delta}, threads = {threads}");
                assert_eq!(
                    got_stats, want_stats,
                    "delta = {delta}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn filter_agrees_with_exact_check_as_a_necessary_condition() {
        // The count filter may keep extra graphs but must never drop a graph
        // that the exact check accepts.
        let db = database();
        let q = query();
        for delta in 0..=3 {
            for g in &db {
                if subgraph_similar(&q, g, delta) {
                    assert!(
                        passes_feature_count_filter(&q, g, delta),
                        "filter dropped a true candidate at delta={delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn filter_rejects_obviously_missing_structure() {
        let q = query();
        let unrelated = &database()[3];
        assert!(!passes_feature_count_filter(&q, unrelated, 1));
    }

    #[test]
    fn tiny_delta_larger_than_query_accepts_everything() {
        let db = database();
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build();
        let candidates = structural_candidates(&db, &q, 1);
        assert_eq!(candidates.len(), db.len());
        let index = StructuralIndex::build(&db);
        let (indexed, stats) = structural_candidates_indexed(&index, &db, &q, 1, 1);
        assert_eq!(indexed.len(), db.len());
        // The vacuous filter never walks a posting list.
        assert_eq!(stats.posting_entries_scanned, 0);
    }

    #[test]
    fn empty_database_gives_no_candidates() {
        assert!(structural_candidates(&[], &query(), 1).is_empty());
        let index = StructuralIndex::build(&[]);
        assert!(structural_candidates_indexed(&index, &[], &query(), 1, 1)
            .0
            .is_empty());
    }

    #[test]
    fn threaded_candidates_match_sequential_for_every_thread_count() {
        let db = database();
        let q = query();
        for delta in 0..=3 {
            let sequential = structural_candidates(&db, &q, delta);
            for threads in [0, 2, 3, 7] {
                assert_eq!(
                    structural_candidates_threaded(&db, &q, delta, threads),
                    sequential,
                    "threads = {threads}, delta = {delta}"
                );
            }
        }
    }
}
