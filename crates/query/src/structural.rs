//! Structural pruning (the pipeline's first phase).
//!
//! Theorem 1: if the query is not subgraph-similar to the deterministic
//! skeleton `gc`, the subgraph similarity probability is zero, so the graph can
//! be discarded without touching any probability.  The paper delegates this
//! phase to Grafil \[38\], a multi-filter feature-count framework; the same idea
//! is implemented here in two stages:
//!
//! 1. **Feature-count filter** — for every edge signature (edge label +
//!    endpoint labels) the data graph must contain at least
//!    `count_q(sig) − δ` occurrences; a graph whose total signature deficit
//!    exceeds `δ` cannot be within subgraph distance `δ` (each deleted edge
//!    removes at most one occurrence).  This is Grafil's edge-feature filter.
//! 2. **Exact check** — surviving graphs are confirmed with the subgraph
//!    distance of Definition 8 (`pgs_graph::mcs::subgraph_similar`), so the
//!    phase returns exactly `SC_q = {g | dis(q, gc) ≤ δ}` as assumed by
//!    Section 1.2.

use pgs_graph::mcs::subgraph_similar;
use pgs_graph::model::Graph;
use pgs_graph::parallel::par_map_chunked;

/// Returns the indices of the skeleton graphs that are deterministically
/// subgraph-similar to `q` under distance threshold `delta` (the set `SC_q`).
pub fn structural_candidates(skeletons: &[Graph], q: &Graph, delta: usize) -> Vec<usize> {
    structural_candidates_threaded(skeletons, q, delta, 1)
}

/// [`structural_candidates`] evaluated with up to `threads` scoped workers
/// (`0` = automatic).  Every skeleton is tested independently, so the returned
/// index list is identical for every thread count (ascending order).
pub fn structural_candidates_threaded(
    skeletons: &[Graph],
    q: &Graph,
    delta: usize,
    threads: usize,
) -> Vec<usize> {
    let keep = par_map_chunked(skeletons, threads, |_, g| {
        passes_feature_count_filter(q, g, delta) && subgraph_similar(q, g, delta)
    });
    keep.iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i))
        .collect()
}

/// Grafil-style edge-signature count filter: a necessary condition for
/// `dis(q, g) ≤ delta`.
pub fn passes_feature_count_filter(q: &Graph, g: &Graph, delta: usize) -> bool {
    if q.edge_count() <= delta {
        return true;
    }
    // Every edge deletion removes exactly one edge-signature occurrence from
    // the query, so if `q` minus at most `delta` edges embeds in `g`, the total
    // per-signature deficit `Σ max(0, count_q(sig) − count_g(sig))` cannot
    // exceed `delta`.
    let qh = q.edge_signature_histogram();
    let gh = g.edge_signature_histogram();
    let mut deficit = 0usize;
    for (sig, qc) in qh {
        let gc = gh.get(&sig).copied().unwrap_or(0);
        deficit += qc.saturating_sub(gc);
        if deficit > delta {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::GraphBuilder;

    fn query() -> Graph {
        // Triangle a-b-c (Figure 1's q).
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    fn database() -> Vec<Graph> {
        vec![
            // 0: graph 001 — triangle a, b, d: shares only the a-b edge (dis = 2).
            GraphBuilder::new()
                .vertices(&[0, 1, 3])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .build(),
            // 1: graph 002 — contains a-b and b-c edges (dis = 1).
            GraphBuilder::new()
                .vertices(&[0, 0, 1, 1, 2])
                .edge(0, 1, 9)
                .edge(0, 2, 9)
                .edge(1, 2, 9)
                .edge(2, 3, 9)
                .edge(2, 4, 9)
                .build(),
            // 2: exact super-graph of the query (dis = 0).
            GraphBuilder::new()
                .vertices(&[0, 1, 2, 5])
                .edge(0, 1, 9)
                .edge(1, 2, 9)
                .edge(0, 2, 9)
                .edge(2, 3, 9)
                .build(),
            // 3: completely unrelated labels (dis = 3).
            GraphBuilder::new()
                .vertices(&[7, 8, 9])
                .edge(0, 1, 1)
                .edge(1, 2, 1)
                .build(),
        ]
    }

    #[test]
    fn candidates_match_the_exact_distance_semantics() {
        let db = database();
        let q = query();
        assert_eq!(structural_candidates(&db, &q, 0), vec![2]);
        assert_eq!(structural_candidates(&db, &q, 1), vec![1, 2]);
        assert_eq!(structural_candidates(&db, &q, 2), vec![0, 1, 2]);
        assert_eq!(structural_candidates(&db, &q, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn filter_agrees_with_exact_check_as_a_necessary_condition() {
        // The count filter may keep extra graphs but must never drop a graph
        // that the exact check accepts.
        let db = database();
        let q = query();
        for delta in 0..=3 {
            for g in &db {
                if subgraph_similar(&q, g, delta) {
                    assert!(
                        passes_feature_count_filter(&q, g, delta),
                        "filter dropped a true candidate at delta={delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn filter_rejects_obviously_missing_structure() {
        let q = query();
        let unrelated = &database()[3];
        assert!(!passes_feature_count_filter(&q, unrelated, 1));
    }

    #[test]
    fn tiny_delta_larger_than_query_accepts_everything() {
        let db = database();
        let q = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build();
        let candidates = structural_candidates(&db, &q, 1);
        assert_eq!(candidates.len(), db.len());
    }

    #[test]
    fn empty_database_gives_no_candidates() {
        assert!(structural_candidates(&[], &query(), 1).is_empty());
    }

    #[test]
    fn threaded_candidates_match_sequential_for_every_thread_count() {
        let db = database();
        let q = query();
        for delta in 0..=3 {
            let sequential = structural_candidates(&db, &q, delta);
            for threads in [0, 2, 3, 7] {
                assert_eq!(
                    structural_candidates_threaded(&db, &q, delta, threads),
                    sequential,
                    "threads = {threads}, delta = {delta}"
                );
            }
        }
    }
}
